//! Vendored offline stand-in for `criterion`.
//!
//! Keeps the workspace's `cargo bench` targets compiling and running without
//! the real statistics engine: each benchmark runs `sample_size` iterations
//! and reports the mean/min/max wall-clock time. The structural API mirrors
//! criterion 0.5 (`benchmark_group`, `bench_function`, `iter`,
//! `criterion_group!`, `criterion_main!`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times `routine` and prints a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` `sample_size` times, timing each call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let output = routine();
            self.samples.push(start.elapsed());
            drop(black_box(output));
        }
    }
}

/// Opaque value sink that prevents the optimizer from deleting the
/// computation that produced `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        let mut runs = 0;
        group.sample_size(4);
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4);
    }
}
