//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no route to crates.io, so this crate provides
//! the subset of serde the workspace relies on: a [`Serialize`] /
//! [`Deserialize`] trait pair plus `#[derive(Serialize, Deserialize)]`
//! (re-exported from the local `serde_derive`). Unlike upstream serde there
//! is no serializer abstraction — values encode straight into a compact
//! binary format (LEB128 varints for integers and lengths, zigzag for signed
//! integers, little-endian bit patterns for floats). The `bincode` vendored
//! crate is a thin façade over these traits.
//!
//! The format is self-consistent but **not** wire-compatible with upstream
//! serde+bincode; every peer must be built from this tree.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// Error produced when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The input ended before the value was complete.
    #[must_use]
    pub fn eof() -> Self {
        Self::custom("unexpected end of input")
    }

    /// An enum tag did not match any variant of `ty`.
    #[must_use]
    pub fn unknown_variant(ty: &str, tag: u32) -> Self {
        Self::custom(format!("unknown variant tag {tag} for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias for decode operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A value that can encode itself into the compact binary format.
pub trait Serialize {
    /// Appends the encoding of `self` to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// A value that can decode itself from the compact binary format.
pub trait Deserialize: Sized {
    /// Reads one value from the front of `input`, advancing it.
    fn deserialize(input: &mut &[u8]) -> Result<Self>;
}

// ---------------------------------------------------------------------------
// varint helpers (shared with the derive-generated code)
// ---------------------------------------------------------------------------

/// Writes `value` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
pub fn read_varint(input: &mut &[u8]) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or_else(Error::eof)?;
        *input = rest;
        if shift >= 64 {
            return Err(Error::custom("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Writes an enum variant tag (used by derived impls).
pub fn write_variant_tag(out: &mut Vec<u8>, tag: u32) {
    write_varint(out, u64::from(tag));
}

/// Reads an enum variant tag (used by derived impls).
pub fn read_variant_tag(input: &mut &[u8]) -> Result<u32> {
    let raw = read_varint(input)?;
    u32::try_from(raw).map_err(|_| Error::custom("variant tag overflows u32"))
}

fn read_len(input: &mut &[u8]) -> Result<usize> {
    let raw = read_varint(input)?;
    usize::try_from(raw).map_err(|_| Error::custom("length overflows usize"))
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, out: &mut Vec<u8>) {
                write_varint(out, *self as u64);
            }
        }
        impl Deserialize for $ty {
            fn deserialize(input: &mut &[u8]) -> Result<Self> {
                let raw = read_varint(input)?;
                <$ty>::try_from(raw).map_err(|_| Error::custom(concat!("value overflows ", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, out: &mut Vec<u8>) {
                let v = *self as i64;
                // zigzag
                write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
            }
        }
        impl Deserialize for $ty {
            fn deserialize(input: &mut &[u8]) -> Result<Self> {
                let raw = read_varint(input)?;
                let v = ((raw >> 1) as i64) ^ -((raw & 1) as i64);
                <$ty>::try_from(v).map_err(|_| Error::custom(concat!("value overflows ", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Deserialize for bool {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let (&byte, rest) = input.split_first().ok_or_else(Error::eof)?;
        *input = rest;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::custom(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f32 {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        if input.len() < 4 {
            return Err(Error::eof());
        }
        let (bytes, rest) = input.split_at(4);
        *input = rest;
        Ok(f32::from_bits(u32::from_le_bytes(bytes.try_into().expect("4 bytes"))))
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f64 {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        if input.len() < 8 {
            return Err(Error::eof());
        }
        let (bytes, rest) = input.split_at(8);
        *input = rest;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(u32::from(*self)));
    }
}

impl Deserialize for char {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let raw = read_variant_tag(input)?;
        char::from_u32(raw).ok_or_else(|| Error::custom("invalid char scalar"))
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_str().serialize(out);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Deserialize for String {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        if input.len() < len {
            return Err(Error::eof());
        }
        let (bytes, rest) = input.split_at(len);
        *input = rest;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::custom("invalid utf-8 in string"))
    }
}

impl Serialize for () {
    fn serialize(&self, _out: &mut Vec<u8>) {}
}

impl Deserialize for () {
    fn deserialize(_input: &mut &[u8]) -> Result<Self> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        Ok(Box::new(T::deserialize(input)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.serialize(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        match bool::deserialize(input)? {
            false => Ok(None),
            true => Ok(Some(T::deserialize(input)?)),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl ExactSizeIterator<Item = &'a T>,
    out: &mut Vec<u8>,
) {
    write_varint(out, items.len() as u64);
    for item in items {
        item.serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        // Guard against absurd preallocation from corrupt input: each element
        // needs at least one input byte in this format.
        let mut items = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            items.push(T::deserialize(input)?);
        }
        Ok(items)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        Ok(Vec::<T>::deserialize(input)?.into())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::deserialize(input)?);
        }
        Ok(set)
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        let mut set = HashSet::with_capacity_and_hasher(len.min(input.len()), S::default());
        for _ in 0..len {
            set.insert(T::deserialize(input)?);
        }
        Ok(set)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for (key, value) in self {
            key.serialize(out);
            value.serialize(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::deserialize(input)?;
            let value = V::deserialize(input)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for (key, value) in self {
            key.serialize(out);
            value.serialize(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize(input: &mut &[u8]) -> Result<Self> {
        let len = read_len(input)?;
        let mut map = HashMap::with_capacity_and_hasher(len.min(input.len()), S::default());
        for _ in 0..len {
            let key = K::deserialize(input)?;
            let value = V::deserialize(input)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$idx.serialize(out);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(input: &mut &[u8]) -> Result<Self> {
                Ok(($($name::deserialize(input)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.serialize(&mut buf);
        let mut input = buf.as_slice();
        let back = T::deserialize(&mut input).expect("decodes");
        assert_eq!(back, value);
        assert!(input.is_empty(), "trailing bytes after {value:?}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(300u16);
        round_trip(-1i64);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(3.5f64);
        round_trip(String::from("hello"));
        round_trip('λ');
    }

    #[test]
    fn composites_round_trip() {
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip(BTreeSet::from([1u32, 9, 4]));
        round_trip(BTreeMap::from([(1u64, "a".to_string()), (2, "b".to_string())]));
        round_trip(HashMap::<u64, u64>::from([(3, 4), (5, 6)]));
        round_trip((1u8, -2i32, String::from("x")));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].serialize(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut input = buf.as_slice();
        assert!(Vec::<u64>::deserialize(&mut input).is_err());
    }

    #[test]
    fn varint_is_compact() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }
}
