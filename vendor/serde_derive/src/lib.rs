//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate's binary-format traits. Because `syn`/`quote` are
//! unavailable offline, the item is parsed directly from the
//! [`proc_macro::TokenStream`]. Supported shapes — exactly what this
//! workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, tuple, or struct-like (encoded as a
//!   varint variant tag followed by the fields in declaration order);
//! * **no** generic parameters (generic types such as `net::WireMessage`
//!   implement the traits by hand).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = serialize_struct_body(fields);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut Vec<u8>) {{ let _ = out; {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| serialize_variant_arm(name, tag as u32, v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut Vec<u8>) {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let ctor = deserialize_ctor(name, fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(input: &mut &[u8]) -> ::serde::Result<Self> {{\n\
                         let _ = &input; Ok({ctor})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| {
                    let ctor = deserialize_ctor(&format!("{name}::{}", v.name), &v.fields);
                    format!("{tag}u32 => Ok({ctor}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(input: &mut &[u8]) -> ::serde::Result<Self> {{\n\
                         match ::serde::read_variant_tag(input)? {{\n\
                             {arms}\
                             other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => String::new(),
        Fields::Tuple(arity) => (0..*arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i}, out);\n"))
            .collect(),
        Fields::Named(names) => names
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, out);\n"))
            .collect(),
    }
}

fn serialize_variant_arm(enum_name: &str, tag: u32, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        Fields::Unit => {
            format!("{enum_name}::{v} => {{ ::serde::write_variant_tag(out, {tag}u32); }}\n")
        }
        Fields::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let writes: String = binders
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b}, out);\n"))
                .collect();
            format!(
                "{enum_name}::{v}({binds}) => {{ ::serde::write_variant_tag(out, {tag}u32); {writes} }}\n",
                binds = binders.join(", ")
            )
        }
        Fields::Named(names) => {
            let writes: String = names
                .iter()
                .map(|f| format!("::serde::Serialize::serialize({f}, out);\n"))
                .collect();
            format!(
                "{enum_name}::{v} {{ {binds} }} => {{ ::serde::write_variant_tag(out, {tag}u32); {writes} }}\n",
                binds = names.join(", ")
            )
        }
    }
}

fn deserialize_ctor(path: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Tuple(arity) => {
            let args: Vec<String> = (0..*arity)
                .map(|_| "::serde::Deserialize::deserialize(input)?".to_string())
                .collect();
            format!("{path}({})", args.join(", "))
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(input)?"))
                .collect();
            format!("{path} {{ {} }}", inits.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);

    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!(
            "vendored serde_derive does not support generic type `{name}`; \
             implement Serialize/Deserialize by hand (see net::WireMessage)"
        );
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => {
            // `union`, trait objects etc. — out of scope for this stand-in.
            let _ = &mut tokens;
            panic!("cannot derive serde traits for `{other} {name}`")
        }
    }
}

fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            // `pub` / `pub(crate)` visibility.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Parses `name: Type, ...` field lists, skipping attributes and visibility.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    count
}

/// Advances `pos` past one type, stopping at a top-level `,` (angle-bracket
/// depth is tracked so `HashMap<u64, u64>` reads as one type).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    *pos += 1;
                }
                '>' => {
                    angle_depth -= 1;
                    *pos += 1;
                }
                ',' if angle_depth == 0 => return,
                _ => *pos += 1,
            },
            _ => *pos += 1,
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next top-level comma.
        if matches!(peek_punct(&tokens, pos), Some('=')) {
            while pos < tokens.len() && !matches!(peek_punct(&tokens, pos), Some(',')) {
                pos += 1;
            }
        }
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
