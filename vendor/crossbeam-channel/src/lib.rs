//! Vendored offline stand-in for `crossbeam-channel`, backed by
//! `std::sync::mpsc`. Only the API surface the workspace uses is provided:
//! [`unbounded`], cloneable [`Sender`]s, and blocking/timeout receives.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::mpsc;
use std::time::Duration;

/// Sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent value like the upstream type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with no message available.
    Timeout,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message currently queued.
    Empty,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

/// Creates an unbounded FIFO channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|err| match err {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Returns a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|err| match err {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u32).unwrap());
        std::thread::spawn(move || tx.send(1u32).unwrap());
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }
}
