//! Vendored offline stand-in for `rand_chacha`: a genuine ChaCha12 keystream
//! generator behind the upstream crate's `ChaCha12Rng` name. The keystream is
//! deterministic per seed, which is all the simulator and workload generator
//! rely on; it is not bit-compatible with upstream `rand_chacha` streams.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Minimal `rand_core` facade: just enough for
/// `use rand_chacha::rand_core::SeedableRng`.
pub mod rand_core {
    /// Construction of reproducible generators from small seeds.
    pub trait SeedableRng: Sized {
        /// Builds a generator whose stream is fully determined by `seed`.
        fn seed_from_u64(seed: u64) -> Self;
    }
}

const ROUNDS: usize = 12;

/// A ChaCha12 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        // RFC 8439 state layout: constants, key, block counter, nonce (zero).
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

impl rand_core::SeedableRng for ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the same
        // expansion idea rand_core uses.
        let mut state = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        Self { key, counter: 0, buffer: [0; 16], cursor: 16 }
    }
}

impl rand::RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_looks_balanced() {
        let mut rng = ChaCha12Rng::seed_from_u64(99);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        let total = 256 * 64;
        // Within 5% of half the bits set.
        assert!((ones as f64 - total as f64 / 2.0).abs() < total as f64 * 0.05);
    }
}
