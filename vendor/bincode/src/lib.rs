//! Vendored offline stand-in for `bincode`: a thin façade over the vendored
//! `serde` traits' compact binary format.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Encoding/decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bincode: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self(err.to_string())
    }
}

/// Result alias matching upstream bincode's signatures.
pub type Result<T> = std::result::Result<T, Error>;

/// Encodes `value` into a freshly allocated byte vector.
pub fn serialize<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Decodes a `T` from `bytes`, requiring the whole input to be consumed.
pub fn deserialize<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut input = bytes;
    let value = T::deserialize(&mut input)?;
    if !input.is_empty() {
        return Err(Error(format!("{} trailing bytes after value", input.len())));
    }
    Ok(value)
}

/// Number of bytes `value` encodes to.
pub fn serialized_size<T: serde::Serialize + ?Sized>(value: &T) -> Result<u64> {
    Ok(serialize(value)?.len() as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_and_rejects_trailing_garbage() {
        let bytes = super::serialize(&vec![1u64, 2, 3]).unwrap();
        let back: Vec<u64> = super::deserialize(&bytes).unwrap();
        assert_eq!(back, vec![1, 2, 3]);

        let mut longer = bytes.clone();
        longer.push(0);
        assert!(super::deserialize::<Vec<u64>>(&longer).is_err());
    }
}
