//! Vendored offline stand-in for `parking_lot`: poison-free locks on top of
//! the std primitives. Only what the workspace uses is provided.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails: a poisoned inner lock is recovered,
/// matching parking_lot's no-poisoning semantics.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with poison-free guards.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in an rwlock.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shares_readers() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
