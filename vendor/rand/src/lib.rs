//! Vendored offline stand-in for `rand`: the [`Rng`] extension trait over a
//! minimal [`RngCore`], covering the sampling surface the workspace uses
//! (`gen`, `gen_range` over integer/float ranges, `gen_bool`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a full-width random word.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply technique (Lemire); bias is negligible for the spans
    // used here and the result stays deterministic per seed.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + uniform_below(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = Counter(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
