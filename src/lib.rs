//! `caesar-suite` — umbrella crate for the CAESAR reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! public crates so examples and tests can use a single dependency root.
//!
//! Start with the [`caesar`] crate for the protocol itself, [`harness`] for
//! the experiments, and the `examples/quickstart.rs` binary for a guided
//! tour.
//!
//! # Three runtimes, one client API
//!
//! Every protocol implements the single [`simnet::Process`] trait once —
//! pushing executed commands through `Context::deliver` — and then runs,
//! unchanged, on three substrates:
//!
//! | runtime | substrate | time | use it for |
//! |---|---|---|---|
//! | [`simnet`] | discrete-event simulator | simulated | reproducing the paper's figures exactly (seeded, deterministic, crash injection, CPU-saturation model) |
//! | [`cluster`] | one OS thread per replica, channel links | wall clock | exercising the protocols under real concurrency and scheduler interleavings in one process |
//! | [`net`] | real TCP sockets, bincode frames | wall clock | deployment-shaped runs: real serialization, kernel buffers, reconnects, batched writes, external clients |
//!
//! All three serve clients through the same session API
//! ([`consensus_core::session`]): `ClusterHandle::client(node)` hands out a
//! `ClientHandle` bound to one replica, `ClientHandle::submit(op)` returns a
//! `Ticket`, and `Ticket::wait()` resolves to a `Reply` once the command
//! executes at the submitting replica — carrying the key-value store result,
//! so reads observe that replica's state (read-your-writes). Completions are
//! routed by command id through a waiter table with bounded in-flight
//! backpressure; a replica that disconnects fails its outstanding tickets
//! instead of leaving them hanging.
//!
//! ## Submit/await on the simulator
//!
//! `Ticket::wait` advances *simulated* time, so a client round trip is
//! deterministic and instant in wall-clock terms:
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use simnet::{LatencyMatrix, SimConfig, SimSession, Simulator};
//!
//! let config = CaesarConfig::new(5);
//! let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites());
//! let session = SimSession::new(Simulator::new(sim_config, move |id| {
//!     CaesarReplica::new(id, config.clone())
//! }));
//! let client = session.client(NodeId(0));
//! let write = client.submit(Op::put(7, 1)).unwrap().wait().unwrap();
//! let read = client.submit(Op::get(7)).unwrap().wait().unwrap();
//! assert_eq!(read.output, Some(1), "read-your-writes at the submitting replica");
//! assert!(write.decision.latency() > 0);
//! ```
//!
//! ## Submit/await on real threads
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use cluster::{Cluster, ClusterConfig};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use simnet::LatencyMatrix;
//!
//! let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.01);
//! let caesar = CaesarConfig::new(5);
//! let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
//! let reply = threads.client(NodeId(0)).submit(Op::put(7, 2)).unwrap().wait().unwrap();
//! assert_eq!(reply.node, NodeId(0));
//! threads.shutdown();
//! ```
//!
//! ## Submit/await over TCP
//!
//! The same calls against [`net::NetCluster`] travel as
//! `WireMessage::ClientRequest` frames and come back as
//! `Event::ClientReply` frames — the identical wire protocol an external
//! process speaks through [`net::ReplicaClient`] (see the
//! `consensus_client` example):
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use net::{NetCluster, NetConfig};
//!
//! let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
//! let sockets = NetCluster::start(NetConfig::new(3), move |id| {
//!     CaesarReplica::new(id, caesar.clone())
//! })
//! .expect("cluster starts");
//! let client = sockets.client(NodeId(0));
//! client.submit(Op::put(7, 3)).unwrap().wait().unwrap();
//! let read = client.submit(Op::get(7)).unwrap().wait().unwrap();
//! assert_eq!(read.output, Some(3));
//! sockets.shutdown();
//! ```
//!
//! Or fully external, over a plain socket:
//!
//! ```text
//! cargo run --release --example tcp_cluster -- serve 30       # terminal 1
//! cargo run --release --example consensus_client -- ADDR      # terminal 2
//! ```
//!
//! The `tests/cross_runtime.rs` integration test pins the three runtimes
//! together: the same seeded workload, driven through `ClusterHandle`, must
//! produce identical replies and the identical delivery order on all of
//! them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use caesar;
pub use cluster;
pub use consensus_core;
pub use consensus_types;
pub use epaxos;
pub use harness;
pub use kvstore;
pub use m2paxos;
pub use mencius;
pub use multipaxos;
pub use net;
pub use simnet;
pub use workload;
