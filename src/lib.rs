//! `caesar-suite` — umbrella crate for the CAESAR reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! public crates so examples and tests can use a single dependency root.
//!
//! Start with the [`caesar`] crate for the protocol itself, [`harness`] for
//! the experiments, and the `examples/quickstart.rs` binary for a guided
//! tour.
//!
//! # Three runtimes, one client API, one pluggable state machine
//!
//! Every protocol implements the single [`simnet::Process`] trait once —
//! pushing executed commands through `Context::deliver` — and then runs,
//! unchanged, on three substrates:
//!
//! | runtime | substrate | time | use it for |
//! |---|---|---|---|
//! | [`simnet`] | discrete-event simulator | simulated | reproducing the paper's figures exactly (seeded, deterministic, crash injection, CPU-saturation model) |
//! | [`cluster`] | one OS thread per replica, channel links | wall clock | exercising the protocols under real concurrency and scheduler interleavings in one process |
//! | [`net`] | epoll event loop over real TCP sockets, CRC-checked bincode frames | wall clock | deployment-shaped runs: hundreds of concurrent clients per replica, kernel buffers, reconnects, crash/restart + snapshot catch-up, external clients and processes |
//!
//! What the decided order *drives* is equally pluggable: every runtime owns
//! one [`consensus_core::StateMachine`] per replica — `apply` one decided
//! command at a time, `snapshot`/`restore` the whole state as bytes, report
//! an `applied_through` watermark and a cross-replica `fingerprint`. The
//! [`kvstore`] crate's `KvStore` is the reference implementation (and the
//! default factory everywhere); `consensus_core::EventLog` is a second,
//! entirely different one (replies carry log positions), and any custom
//! implementation plugs in through `with_state_machine` on the runtime
//! configs / `SimSession::with_state_machines` (see the
//! `custom_state_machine` example and `tests/state_machines.rs`). The
//! session [`consensus_core::session::Reply`] carries whatever output the
//! machine's `apply` produced.
//!
//! The `net` runtime's internals are a **reactor**: each replica runs one
//! event-loop thread that owns every socket — listener, peer links,
//! subscribers, client connections — as nonblocking descriptors registered
//! with an epoll poller (the [`reactor`] crate's `Poller`/`Token`/`Interest`
//! layer, raw Linux bindings with no external deps), plus one core-loop
//! thread driving the protocol. Inbound bytes decode incrementally through
//! per-connection frame buffers; outbound frames queue whole (no staging
//! copy) and leave in `writev` scatter-gather batches on writability;
//! WAN-emulation delays and reconnect backoffs are epoll-wait deadlines.
//! Thread count per replica is O(1) in connections — the
//! `tests/net_soak.rs` soak holds 500 simultaneous clients on one replica
//! to pin that down — and a cluster can run as N separate OS processes via
//! the `consensus_node` binary (see `tests/multi_process.rs` and the
//! `tcp_cluster` example docs).
//!
//! A crashed `net` replica restarts on its old address with a fresh process
//! and an **empty state machine**, then catches up by snapshot-based state
//! transfer: it asks its peers (`SnapshotRequest`), a live peer donates its
//! latest checkpoint plus the decided suffix (`SnapshotChunk` frames over
//! the same event loop), and the restarted replica restores, replays, and
//! serves reads that reflect pre-crash writes — for **all five protocols**
//! (`tests/restart_catch_up.rs` runs the crash → restart → read matrix).
//! While restoring, client requests fail fast with an abort instead of
//! hanging; the `Process::on_state_transfer` hook hands the protocol layer
//! a [`consensus_types::StateTransfer`] — the floor-compacted applied-id
//! summary plus the donor's [`consensus_types::ExecutionCursor`] — so
//! dependency-gated execution (CAESAR predecessors, EPaxos graphs) stops
//! waiting on covered commands and slot-gated execution (Multi-Paxos,
//! Mencius, M²Paxos) fast-forwards its cursor past the restored state. The
//! whole lifecycle — checkpoint cadence, wire flow, cursor vs. id
//! transfer, dedup window, fail-fast aborts — is documented in the
//! [`recovery`] chapter (rendered from `docs/RECOVERY.md`).
//!
//! With a data directory configured (`NetConfig::with_data_dir`, the
//! `consensus_node` binary's `--data-dir`), replicas are **durable**: each
//! keeps a write-ahead log (the [`wal`] crate — CRC-framed records in
//! compacting segment files, fsynced under a configurable
//! [`net::FsyncPolicy`]) and recovery becomes disk-first, with the snapshot
//! transfer above as the fallback for whatever disk cannot provide. A whole
//! cluster can power-cycle — every replica down, zero donors — and come
//! back serving its pre-crash state (`NetCluster::power_cycle`; the
//! durability matrix in `tests/restart_catch_up.rs` pins this per
//! protocol, and `crates/wal/tests/corruption.rs` property-tests torn-tail
//! repair). The log format, fsync trade-offs and recovery decision tree
//! are documented in the [`durability`] chapter (rendered from
//! `docs/DURABILITY.md`).
//!
//! All three serve clients through the same session API
//! ([`consensus_core::session`]): `ClusterHandle::client(node)` hands out a
//! `ClientHandle` bound to one replica, `ClientHandle::submit(op)` returns a
//! `Ticket`, and `Ticket::wait()` resolves to a `Reply` once the command
//! executes at the submitting replica — carrying the key-value store result,
//! so reads observe that replica's state (read-your-writes). Completions are
//! routed by command id through a waiter table with bounded in-flight
//! backpressure; a replica that disconnects fails its outstanding tickets
//! instead of leaving them hanging.
//!
//! ## Submit/await on the simulator
//!
//! `Ticket::wait` advances *simulated* time, so a client round trip is
//! deterministic and instant in wall-clock terms:
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use simnet::{LatencyMatrix, SimConfig, SimSession, Simulator};
//!
//! let config = CaesarConfig::new(5);
//! let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites());
//! let session = SimSession::new(Simulator::new(sim_config, move |id| {
//!     CaesarReplica::new(id, config.clone())
//! }));
//! let client = session.client(NodeId(0));
//! let write = client.submit(Op::put(7, 1)).unwrap().wait().unwrap();
//! let read = client.submit(Op::get(7)).unwrap().wait().unwrap();
//! assert_eq!(read.output, Some(1), "read-your-writes at the submitting replica");
//! assert!(write.decision.latency() > 0);
//! ```
//!
//! ## Submit/await on real threads
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use cluster::{Cluster, ClusterConfig};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use simnet::LatencyMatrix;
//!
//! let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.01);
//! let caesar = CaesarConfig::new(5);
//! let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
//! let reply = threads.client(NodeId(0)).submit(Op::put(7, 2)).unwrap().wait().unwrap();
//! assert_eq!(reply.node, NodeId(0));
//! threads.shutdown();
//! ```
//!
//! ## Submit/await over TCP
//!
//! The same calls against [`net::NetCluster`] travel as
//! `WireMessage::ClientRequest` frames and come back as
//! `Event::ClientReply` frames — the identical wire protocol an external
//! process speaks through [`net::ReplicaClient`] (see the
//! `consensus_client` example):
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_core::session::{ClusterHandle, Op};
//! use consensus_types::NodeId;
//! use net::{NetCluster, NetConfig};
//!
//! let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
//! let sockets = NetCluster::start(NetConfig::new(3), move |id| {
//!     CaesarReplica::new(id, caesar.clone())
//! })
//! .expect("cluster starts");
//! let client = sockets.client(NodeId(0));
//! client.submit(Op::put(7, 3)).unwrap().wait().unwrap();
//! let read = client.submit(Op::get(7)).unwrap().wait().unwrap();
//! assert_eq!(read.output, Some(3));
//! sockets.shutdown();
//! ```
//!
//! Or fully external, over a plain socket:
//!
//! ```text
//! cargo run --release --example tcp_cluster -- serve 30       # terminal 1
//! cargo run --release --example consensus_client -- ADDR      # terminal 2
//! ```
//!
//! The `tests/cross_runtime.rs` integration test pins the three runtimes
//! together: the same seeded workload, driven through `ClusterHandle`, must
//! produce identical replies and the identical delivery order on all of
//! them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[doc = include_str!("../docs/RECOVERY.md")]
pub mod recovery {}

#[doc = include_str!("../docs/DURABILITY.md")]
pub mod durability {}

#[doc = include_str!("../docs/OBSERVABILITY.md")]
pub mod observability {}

#[doc = include_str!("../docs/THROUGHPUT.md")]
pub mod throughput {}

pub use caesar;
pub use cluster;
pub use consensus_core;
pub use consensus_types;
pub use epaxos;
pub use harness;
pub use kvstore;
pub use m2paxos;
pub use mencius;
pub use multipaxos;
pub use net;
pub use reactor;
pub use simnet;
pub use telemetry;
pub use wal;
pub use workload;
