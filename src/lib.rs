//! `caesar-suite` — umbrella crate for the CAESAR reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! public crates so examples and tests can use a single dependency root.
//!
//! Start with the [`caesar`] crate for the protocol itself, [`harness`] for
//! the experiments, and the `examples/quickstart.rs` binary for a guided
//! tour.
//!
//! # Three runtimes
//!
//! Every protocol implements the single [`simnet::Process`] trait once and
//! can then run, unchanged, on three substrates:
//!
//! | runtime | substrate | time | use it for |
//! |---|---|---|---|
//! | [`simnet`] | discrete-event simulator | simulated | reproducing the paper's figures exactly (seeded, deterministic, crash injection, CPU-saturation model) |
//! | [`cluster`] | one OS thread per replica, channel links | wall clock | exercising the protocols under real concurrency and scheduler interleavings in one process |
//! | [`net`] | real TCP sockets, bincode frames | wall clock | deployment-shaped runs: real serialization, kernel buffers, reconnects, backpressure |
//!
//! `simnet` is where experiments live: every run is reproducible from a
//! seed. `cluster` is the cheapest way to shake out ordering assumptions on
//! real threads. `net` is the production path: an N-node cluster over
//! loopback (or any addresses), with an optional delay shim that emulates
//! the paper's five-site EC2 latency matrix on a single machine.
//!
//! ## Quickstart: a CAESAR cluster over TCP
//!
//! ```text
//! cargo run --release --example tcp_cluster             # EC2 matrix at 10% scale
//! cargo run --release --example tcp_cluster -- 50 400   # 50% scale, 400 commands
//! ```
//!
//! or programmatically:
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_types::{Command, CommandId, NodeId};
//! use net::{NetCluster, NetConfig};
//!
//! let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
//! let cluster = NetCluster::start(NetConfig::new(3), move |id| {
//!     CaesarReplica::new(id, caesar.clone())
//! })
//! .expect("cluster starts");
//! cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1)).unwrap();
//! assert_eq!(
//!     cluster.wait_for_decisions(NodeId(0), 1, std::time::Duration::from_secs(10)).len(),
//!     1
//! );
//! cluster.shutdown();
//! ```
//!
//! The `tests/cross_runtime.rs` integration test pins the three runtimes
//! together: the same seeded workload must produce the identical delivery
//! order on all of them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use caesar;
pub use cluster;
pub use consensus_types;
pub use epaxos;
pub use harness;
pub use kvstore;
pub use m2paxos;
pub use mencius;
pub use multipaxos;
pub use net;
pub use simnet;
pub use workload;
