//! `caesar-suite` — umbrella crate for the CAESAR reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! public crates so examples and tests can use a single dependency root.
//!
//! Start with the [`caesar`] crate for the protocol itself, [`harness`] for
//! the experiments, and the `examples/quickstart.rs` binary for a guided
//! tour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use caesar;
pub use cluster;
pub use consensus_types;
pub use epaxos;
pub use harness;
pub use kvstore;
pub use m2paxos;
pub use mencius;
pub use multipaxos;
pub use simnet;
pub use workload;
