//! `consensus_node` — one replica as one OS process.
//!
//! The multi-process/multi-host entry point of the `net` runtime: every
//! replica of a cluster runs as its own `consensus_node` process, linked by
//! nothing but TCP and a shared **address-book file**. Launch N processes
//! with the same book and different `--id`s (on one machine or many) and
//! they form a cluster; external clients (`net::ReplicaClient`, the
//! `consensus_client` example) connect to any replica's address.
//!
//! ```text
//! # book.txt
//! protocol caesar            # caesar | epaxos | multipaxos | mencius | m2paxos
//! node 0 127.0.0.1:7101
//! node 1 127.0.0.1:7102
//! node 2 127.0.0.1:7103
//!
//! consensus_node book.txt 0 &        # terminal/host 1
//! consensus_node book.txt 1 &        # terminal/host 2
//! consensus_node book.txt 2 &        # terminal/host 3
//! cargo run --release --example consensus_client -- 127.0.0.1:7101 0
//! ```
//!
//! An optional third argument bounds the lifetime in seconds (the process
//! otherwise serves until killed). The replica prints `listening pI ADDR`
//! once it is bound and `ready` once the core loop runs, so launchers can
//! watch stdout instead of polling the port.
//!
//! `--data-dir DIR` makes the replica **durable**: it keeps a write-ahead
//! log of decided commands in `DIR` (the `wal` crate — appended before
//! execution, fsynced before client replies, compacted at every
//! checkpoint). A killed process relaunched with the same book *and* the
//! same `--data-dir` replays its own log before asking live peers for a
//! snapshot, so even a whole cluster that powers down comes back serving
//! its pre-crash state. Give each replica its **own** directory — segment
//! files are per-replica, not shared. See `docs/DURABILITY.md`.
//!
//! `consensus_node --stats <host:port>` scrapes a *running* replica
//! instead of serving one: it dials the address, sends a
//! `WireMessage::StatsRequest`, and pretty-prints the `Event::StatsReply` —
//! every counter and histogram of the replica's telemetry registry plus a
//! summary of its command-lifecycle span ring. The request is answered by
//! the replica's event-loop thread, so it works even while the consensus
//! core is saturated (see `docs/OBSERVABILITY.md`).
//!
//! Peer links (re)connect through the event loop's backoff, so start order
//! does not matter and a killed process can be relaunched with the same
//! book: it rebinds its address (`SO_REUSEADDR`) and rejoins. CAESAR's and
//! EPaxos's recovery timeouts are disabled here because multi-process
//! bring-up is not time-synchronized; recovery behaviour is exercised by
//! the in-process harness instead.

use std::net::SocketAddr;
use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::NodeId;
use epaxos::{EpaxosConfig, EpaxosReplica};
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use net::{NetReplica, NetReplicaConfig};
use simnet::Process;

/// A parsed address-book file: the protocol to run and every replica's
/// listen address, indexed by node id.
struct AddressBook {
    protocol: String,
    addrs: Vec<SocketAddr>,
}

fn parse_book(path: &str) -> Result<AddressBook, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read address book {path}: {err}"))?;
    let mut protocol = "caesar".to_string();
    let mut entries: Vec<(usize, SocketAddr)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("protocol") => {
                protocol = fields
                    .next()
                    .ok_or_else(|| format!("line {}: protocol needs a name", lineno + 1))?
                    .to_string();
            }
            Some("node") => {
                let index: usize = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: node needs a numeric id", lineno + 1))?;
                let addr: SocketAddr = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: node needs host:port", lineno + 1))?;
                entries.push((index, addr));
            }
            Some(other) => return Err(format!("line {}: unknown directive {other}", lineno + 1)),
            None => unreachable!("blank lines were skipped"),
        }
    }
    entries.sort_by_key(|&(index, _)| index);
    if entries.is_empty() {
        return Err("address book lists no nodes".to_string());
    }
    for (expect, &(index, _)) in entries.iter().enumerate() {
        if index != expect {
            return Err(format!("node ids must be dense from 0; missing or duplicate {expect}"));
        }
    }
    Ok(AddressBook { protocol, addrs: entries.into_iter().map(|(_, addr)| addr).collect() })
}

/// Binds, links, and serves one replica until `lifetime` elapses (forever
/// when `None`). With a `data_dir`, the replica logs decided commands to a
/// durable WAL there and replays it on startup before falling back to
/// snapshot transfer from peers.
fn serve<P>(
    book: &AddressBook,
    id: NodeId,
    process: P,
    lifetime: Option<u64>,
    data_dir: Option<std::path::PathBuf>,
) where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    // A deployment replica holds two fds per client connection; lift the
    // soft open-file limit toward the hard one before accepting any.
    let _ = reactor::raise_nofile_limit(65_536);
    let mut config = NetReplicaConfig::loopback(id, book.addrs.len());
    config.bind = book.addrs[id.index()];
    config.data_dir = data_dir;
    let mut replica = NetReplica::spawn(config, process).unwrap_or_else(|err| {
        eprintln!("failed to bind {}: {err}", book.addrs[id.index()]);
        std::process::exit(1);
    });
    println!("listening {id} {}", replica.local_addr());
    replica.start(book.addrs.clone());
    println!("ready");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match lifetime {
        Some(seconds) => std::thread::sleep(Duration::from_secs(seconds)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    replica.shutdown();
}

/// Scrapes the replica at `addr_text` and pretty-prints its telemetry.
fn print_stats(addr_text: &str) -> ! {
    let Ok(addr) = addr_text.parse::<SocketAddr>() else {
        eprintln!("--stats needs host:port, got {addr_text}");
        std::process::exit(2);
    };
    let scrape = net::scrape_stats(addr).unwrap_or_else(|err| {
        eprintln!("stats scrape of {addr} failed: {err}");
        std::process::exit(1);
    });
    println!("replica {} at {addr}", scrape.from);
    println!("counters:");
    for (name, value) in &scrape.snapshot.counters {
        println!("  {name:<32} {value}");
    }
    if !scrape.snapshot.gauges.is_empty() {
        println!("gauges:");
        for (name, value) in &scrape.snapshot.gauges {
            println!("  {name:<32} {value}");
        }
    }
    if !scrape.snapshot.histograms.is_empty() {
        println!("histograms (us):");
        for (name, hist) in &scrape.snapshot.histograms {
            println!(
                "  {name:<32} count={} mean={:.1} p50={} p99={} max={}",
                hist.count(),
                hist.mean(),
                hist.percentile(0.5),
                hist.percentile(0.99),
                hist.percentile(1.0),
            );
        }
    }
    let spans = &scrape.spans;
    println!(
        "span ring: {} events held ({} recorded, {} evicted)",
        spans.events.len(),
        spans.recorded,
        spans.evicted
    );
    let set = telemetry::trace::assemble(std::slice::from_ref(spans));
    println!(
        "traces: {} commands observed, {} complete submit->reply at this replica",
        set.traces.len(),
        set.traces.len() - set.incomplete
    );
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|flag| flag == "--stats") {
        match args.get(2) {
            Some(addr) => print_stats(addr),
            None => {
                eprintln!("usage: consensus_node --stats <host:port>");
                std::process::exit(2);
            }
        }
    }
    // Pull `--data-dir DIR` out of the argument vector (it may appear before
    // or after the positionals) so the book/id/lifetime parsing below stays
    // positional.
    let mut data_dir: Option<std::path::PathBuf> = None;
    if let Some(flag) = args.iter().position(|arg| arg == "--data-dir") {
        if flag + 1 >= args.len() {
            eprintln!("--data-dir needs a directory argument");
            std::process::exit(2);
        }
        data_dir = Some(std::path::PathBuf::from(args.remove(flag + 1)));
        args.remove(flag);
    }
    let (book_path, id) = match (args.get(1), args.get(2).and_then(|s| s.parse::<usize>().ok())) {
        (Some(path), Some(id)) => (path.clone(), id),
        _ => {
            eprintln!(
                "usage: consensus_node <address-book> <node-id> [lifetime-seconds] \
                 [--data-dir DIR]\n       \
                 consensus_node --stats <host:port>"
            );
            std::process::exit(2);
        }
    };
    let lifetime: Option<u64> = args.get(3).and_then(|s| s.parse().ok());
    let book = parse_book(&book_path).unwrap_or_else(|err| {
        eprintln!("bad address book: {err}");
        std::process::exit(2);
    });
    if id >= book.addrs.len() {
        eprintln!("node id {id} out of range: the book lists {} nodes", book.addrs.len());
        std::process::exit(2);
    }
    let nodes = book.addrs.len();
    let me = NodeId::from_index(id);
    match book.protocol.as_str() {
        "caesar" => {
            let config = CaesarConfig::new(nodes).with_recovery_timeout(None);
            serve(&book, me, CaesarReplica::new(me, config), lifetime, data_dir);
        }
        "epaxos" => {
            let config = EpaxosConfig::new(nodes).with_recovery_timeout(None);
            serve(&book, me, EpaxosReplica::new(me, config), lifetime, data_dir);
        }
        "multipaxos" => {
            let config = MultiPaxosConfig::new(nodes, NodeId(0));
            serve(&book, me, MultiPaxosReplica::new(me, config), lifetime, data_dir);
        }
        "mencius" => {
            let config = MenciusConfig::new(nodes);
            serve(&book, me, MenciusReplica::new(me, config), lifetime, data_dir);
        }
        "m2paxos" => {
            let config = M2PaxosConfig::new(nodes);
            serve(&book, me, M2PaxosReplica::new(me, config), lifetime, data_dir);
        }
        other => {
            eprintln!(
                "unknown protocol {other}; pick caesar, epaxos, multipaxos, mencius or m2paxos"
            );
            std::process::exit(2);
        }
    }
}
