//! Soak test for the reactor-based `net` runtime: one replica holds 500+
//! simultaneous external client connections and answers a submit/await
//! round on every one of them.
//!
//! This is the load shape the thread-per-link seed transport could not
//! survive cheaply — it would have spawned one reader thread per accepted
//! connection (500+ threads on the replica for this test alone). The epoll
//! event loop holds every connection as two file descriptors on one thread:
//! the test pins that down by asserting the replica thread count stays at
//! two per replica (event loop + core loop) with all clients connected.
//!
//! The soak also doubles as the telemetry overhead check under connection
//! pressure: with every span and counter recorded for 500 concurrent
//! commands, the replica must still answer a live `StatsRequest` scrape
//! promptly, and the scraped registry must agree exactly with the
//! in-process one.

use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{Op, Ticket};
use consensus_types::NodeId;
use net::{NetCluster, NetConfig, ReplicaClient};

/// Simultaneous external connections, all to replica 0.
const CLIENTS: usize = 500;
const NODES: usize = 3;

#[test]
fn five_hundred_clients_share_one_replica() {
    // Each client costs ~4 fds in this single process (its socket plus two
    // `try_clone`s on the client side, the accepted fd on the replica
    // side); make sure the soft rlimit is not the bottleneck, and fail
    // with a clear message if even the hard limit cannot cover the soak.
    let limit = reactor::raise_nofile_limit(8 * CLIENTS as u64).expect("raise nofile rlimit");
    assert!(
        limit >= 4 * CLIENTS as u64 + 64,
        "fd limit {limit} too low to hold {CLIENTS} client connections in one process"
    );

    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    let addr = cluster.addr(NodeId(0));
    let threads_before = cluster.replica_threads();

    // Phase 1 — connect everyone. Disjoint sequence bases keep command ids
    // unique across clients.
    let clients: Vec<ReplicaClient> = (0..CLIENTS)
        .map(|i| {
            ReplicaClient::connect(addr, NodeId(0), (i as u64 + 1) * 1_000_000)
                .unwrap_or_else(|err| panic!("client {i} failed to connect: {err}"))
        })
        .collect();

    // O(1) threads per replica: the 500 connections added exactly zero.
    assert_eq!(
        cluster.replica_threads(),
        threads_before,
        "replica thread count must not grow with connections"
    );
    assert_eq!(threads_before, NODES * 2, "event loop + core loop per replica");

    // Phase 2 — a full submit/await round on every connection: each client
    // writes its own key, all 500 tickets in flight together.
    let started = Instant::now();
    let tickets: Vec<Ticket> = clients
        .iter()
        .enumerate()
        .map(|(i, client)| {
            client
                .submit(Op::put(10_000 + i as u64, i as u64))
                .unwrap_or_else(|err| panic!("client {i} failed to submit: {err}"))
        })
        .collect();
    for (i, ticket) in tickets.iter().enumerate() {
        let reply = ticket
            .wait_timeout(Duration::from_secs(120))
            .unwrap_or_else(|err| panic!("client {i} never got its reply: {err}"));
        assert_eq!(reply.node, NodeId(0));
    }

    // Phase 3 — read-your-writes on a sample of the same connections, so
    // the round trip provably reached the state machine.
    for (i, client) in clients.iter().enumerate().step_by(50) {
        let read = client.get(10_000 + i as u64).expect("read replies");
        assert_eq!(read.output, Some(i as u64), "client {i} must read back its write");
    }

    println!(
        "soak: {CLIENTS} concurrent clients, submit/await round in {:.2}s, \
         replica threads {}",
        started.elapsed().as_secs_f64(),
        cluster.replica_threads(),
    );

    // Phase 4 — scrape the loaded replica's telemetry over the wire while
    // the 500 connections are still attached. The event loop answers the
    // StatsRequest itself, so the scrape must come back within its own
    // 5-second deadline even under this connection count, and — traffic
    // being quiescent now — agree exactly with the in-process registry.
    let scrape = net::scrape_stats(addr).expect("loaded replica answers a stats scrape");
    assert_eq!(scrape.from, NodeId(0));
    // Transport counters keep ticking (the scrape itself is frames), but the
    // protocol counters are quiescent now and must agree exactly between the
    // wire snapshot and the in-process registry.
    let offline = cluster.replica_registry(NodeId(0)).snapshot();
    for (name, value) in &scrape.snapshot.counters {
        if !name.starts_with("net.") {
            assert_eq!(
                (name.as_str(), *value),
                (name.as_str(), offline.counter(name)),
                "wire-scraped counter must match the in-process registry"
            );
        }
    }
    assert!(
        scrape.snapshot.counter("commands.executed") >= CLIENTS as u64,
        "all {CLIENTS} soak commands must show up as executed: {:?}",
        scrape.snapshot.counters
    );
    // Every command was submitted to replica 0, so it led each decision.
    let led = scrape.snapshot.counter("decisions.fast")
        + scrape.snapshot.counter("caesar.decisions.slow_retry")
        + scrape.snapshot.counter("caesar.decisions.slow_proposal")
        + scrape.snapshot.counter("caesar.decisions.recovered");
    assert!(
        led >= CLIENTS as u64,
        "replica 0 led all {CLIENTS} commands, scraped decisions say {led}"
    );
    assert!(
        scrape.spans.recorded >= 2 * CLIENTS as u64,
        "span ring must have seen at least submit+reply per command, recorded {}",
        scrape.spans.recorded
    );

    for client in clients {
        client.shutdown();
    }
    cluster.shutdown();
}
