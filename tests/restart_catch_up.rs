//! Crash → restart → catch-up, for **every** protocol: a killed `net`
//! replica comes back with a fresh, empty state machine and a fresh process,
//! and fills both by snapshot-based state transfer — it requests
//! `SnapshotRequest`/`SnapshotChunk` frames from a live peer, restores the
//! donated snapshot, replays the decided suffix, installs the transferred
//! `StateTransfer` (applied-id floors for the dependency-tracked protocols,
//! slot cursors for the slot-based ones), and then serves reads that
//! reflect **pre-crash** writes.
//!
//! The matrix runs the identical lifecycle over CAESAR, EPaxos, Multi-Paxos,
//! Mencius and M²Paxos. The pinning assertions per protocol:
//!
//! * the restarted replica's `applied_through` watermark reaches the full
//!   workload, and every sample observed while it caught up is monotone
//!   (the core loop asserts the same internally — a reply must never
//!   observe an execution cursor ahead of the state machine);
//! * its state-machine *fingerprint* equals a never-crashed peer's;
//! * an external `ReplicaClient` connected to the restarted replica itself
//!   reads a pre-crash write back.
//!
//! Protocol quirks the matrix encodes: Mencius has no revocation, so while
//! the crashed node is down the survivors keep *committing* but cannot
//! *execute* past its first unused slot — downtime traffic is submitted
//! fire-and-forget there, and the restarted node's post-transfer skip
//! announcement is what drains the whole cluster's backlog. Multi-Paxos
//! keeps its (stable) leader on a surviving node; leader election is out of
//! scope.
//!
//! A second, **durability** matrix runs the same five protocols with data
//! directories (`NetConfig::with_data_dir`): each replica keeps a durable
//! write-ahead log, and recovery becomes disk-first with snapshot transfer
//! as the fallback. Per protocol it drives one lifecycle through three
//! recovery shapes — hybrid (own log prefix + donor delta for the downtime
//! traffic), full-cluster power cycle (every replica restarts from its own
//! log, zero live donors), and a lone replica brought up from its data dir
//! after the whole cluster is gone (no quorum, no donors — pure disk). See
//! `docs/DURABILITY.md` for the recovery decision tree these paths walk.

use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op, SessionError};
use consensus_types::{Command, CommandId, NodeId};
use epaxos::{EpaxosConfig, EpaxosReplica};
use kvstore::KvStore;
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use net::{FsyncPolicy, NetCluster, NetConfig, NetReplica, NetReplicaConfig, ReplicaClient};
use simnet::Process;
use wal::TempDir;

const NODES: usize = 5;
const CRASH: NodeId = NodeId(4);
const SURVIVOR: NodeId = NodeId(0);
/// The replica downtime traffic is submitted to.
const DOWNTIME_AT: NodeId = NodeId(1);

/// Commands submitted before the crash: distinct keys, values offset so a
/// read can never confuse "missing" with "value 0".
fn pre_crash_commands() -> Vec<(u64, u64)> {
    (0..20u64).map(|i| (100 + i, 1_000 + i)).collect()
}

/// Commands submitted while the crashed replica is down.
fn downtime_commands() -> Vec<(u64, u64)> {
    (0..12u64).map(|i| (200 + i, 2_000 + i)).collect()
}

/// How downtime traffic is driven.
enum Downtime {
    /// Submit through the session API and await each execution — for
    /// protocols that keep executing with one replica down.
    Awaited,
    /// Submit fire-and-forget — for Mencius, where execution stalls at the
    /// crashed node's slot gap until it returns (commits still happen; the
    /// restarted node's skip announcement drains the backlog).
    FireAndForget,
}

/// Polls the restarted replica's watermark until it reaches `target` (or
/// the deadline passes), asserting every observed sample is monotone —
/// catch-up must never make `applied_through` move backwards.
fn wait_monotone_applied<P>(
    cluster: &NetCluster<P>,
    node: NodeId,
    target: u64,
    timeout: Duration,
) -> u64
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    let deadline = Instant::now() + timeout;
    let mut last = 0u64;
    let mut samples = 0u64;
    loop {
        let applied = cluster.applied_through(node);
        assert!(
            applied >= last,
            "watermark regressed during catch-up: {last} -> {applied} after {samples} samples"
        );
        last = applied;
        samples += 1;
        if applied >= target || Instant::now() >= deadline {
            return applied;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The full lifecycle, identical for every protocol: pre-crash writes →
/// crash → downtime traffic → restart with a fresh process and empty state
/// machine → snapshot catch-up → parity checks → a pre-crash read served by
/// the restarted replica itself.
fn run_restart_matrix<P, F>(label: &str, mut make: F, downtime: Downtime)
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    // A small checkpoint interval forces the donor to serve checkpoint
    // bytes *plus* a non-empty decided suffix, so the replay path is
    // exercised, not just the snapshot restore.
    let mut cluster =
        NetCluster::start(NetConfig::new(NODES).with_checkpoint_interval(8), &mut make)
            .unwrap_or_else(|err| panic!("[{label}] cluster starts: {err}"));
    let crash_addr = cluster.addr(CRASH);

    // Pre-crash writes, each awaited so all are committed before the kill.
    for (key, value) in pre_crash_commands() {
        cluster
            .client(SURVIVOR)
            .submit(Op::put(key, value))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("[{label}] pre-crash write: {err:?}"));
    }

    cluster.stop_replica(CRASH);
    std::thread::sleep(Duration::from_millis(100));

    // Traffic the downed replica never sees — it must come back through the
    // snapshot transfer, not through post-restart execution.
    let total = (pre_crash_commands().len() + downtime_commands().len()) as u64;
    match downtime {
        Downtime::Awaited => {
            for (key, value) in downtime_commands() {
                cluster
                    .client(DOWNTIME_AT)
                    .submit(Op::put(key, value))
                    .expect("submits during downtime")
                    .wait_timeout(Duration::from_secs(30))
                    .unwrap_or_else(|err| panic!("[{label}] downtime write: {err:?}"));
            }
            let survivor_applied =
                cluster.wait_for_applied(SURVIVOR, total, Duration::from_secs(30));
            assert_eq!(survivor_applied, total, "[{label}] survivor applies the whole workload");
        }
        Downtime::FireAndForget => {
            // Execution is stalled cluster-wide at the crashed node's slot
            // gap; submit without awaiting and give the commits a moment to
            // replicate. Manual ids stay disjoint from the session's
            // (sequences 1..) and the external client's (500_000..).
            for (i, (key, value)) in downtime_commands().into_iter().enumerate() {
                let id = CommandId::new(DOWNTIME_AT, 10_000 + i as u64);
                cluster
                    .submit(DOWNTIME_AT, Command::put(id, key, value))
                    .unwrap_or_else(|err| panic!("[{label}] fire-and-forget write: {err}"));
            }
            std::thread::sleep(Duration::from_millis(300));
        }
    }

    // Restart with a fresh process *and* a fresh (empty) state machine; the
    // only way it can reach the survivors' watermark without new commands
    // is the snapshot transfer + suffix replay + cursor fast-forward.
    cluster
        .restart_replica(CRASH, make(CRASH))
        .unwrap_or_else(|err| panic!("[{label}] replica restarts on its old address: {err}"));
    let caught_up = wait_monotone_applied(&cluster, CRASH, total, Duration::from_secs(30));
    assert_eq!(caught_up, total, "[{label}] restarted replica catches up to the full history");

    // Every replica drains the whole workload (for Mencius this is
    // unblocked *by* the restarted node's skip announcement).
    for index in 0..NODES {
        let node = NodeId::from_index(index);
        let applied = cluster.wait_for_applied(node, total, Duration::from_secs(30));
        assert_eq!(applied, total, "[{label}] {node} applies the whole workload");
    }
    assert_eq!(
        cluster.state_fingerprint(CRASH),
        cluster.state_fingerprint(SURVIVOR),
        "[{label}] restarted replica's state-machine digest equals a never-crashed peer's"
    );
    let stats = cluster.replica_stats(CRASH);
    assert_eq!(
        stats.catch_ups_completed.get(),
        1,
        "[{label}] the restart completes exactly one snapshot catch-up"
    );

    // The acceptance criterion: an external client reads a PRE-crash write
    // through the restarted replica itself.
    let client = ReplicaClient::connect(crash_addr, CRASH, 500_000)
        .unwrap_or_else(|err| panic!("[{label}] client connects to the restarted replica: {err}"));
    let (key, value) = pre_crash_commands()[3];
    let read = client
        .get(key)
        .unwrap_or_else(|err| panic!("[{label}] read through the restarted replica: {err:?}"));
    assert_eq!(
        read.output,
        Some(value),
        "[{label}] a read at the restarted replica reflects the pre-crash write"
    );
    client.shutdown();
    cluster.shutdown();
}

#[test]
fn caesar_restart_catches_up() {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    run_restart_matrix(
        "caesar",
        move |id| CaesarReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn epaxos_restart_catches_up() {
    let config = EpaxosConfig::new(NODES).with_recovery_timeout(None);
    run_restart_matrix(
        "epaxos",
        move |id| EpaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn multipaxos_restart_catches_up() {
    // The stable leader sits on a surviving node; electing a new one is out
    // of scope (the crashed follower still recovers its slot cursor).
    let config = MultiPaxosConfig::new(NODES, SURVIVOR);
    run_restart_matrix(
        "multipaxos",
        move |id| MultiPaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn mencius_restart_catches_up() {
    let config = MenciusConfig::new(NODES);
    run_restart_matrix(
        "mencius",
        move |id| MenciusReplica::new(id, config.clone()),
        Downtime::FireAndForget,
    );
}

#[test]
fn m2paxos_restart_catches_up() {
    let config = M2PaxosConfig::new(NODES);
    run_restart_matrix(
        "m2paxos",
        move |id| M2PaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

/// The CAESAR-specific deep checks kept from the original single-protocol
/// test: transfer statistics and an offline replay of the identical command
/// history landing on the identical digest.
#[test]
fn restarted_replica_serves_pre_crash_reads_via_snapshot_transfer() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let make = {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    };
    let mut cluster = NetCluster::start(NetConfig::new(NODES).with_checkpoint_interval(8), make)
        .expect("cluster starts");
    let crash_addr = cluster.addr(CRASH);

    for (key, value) in pre_crash_commands() {
        cluster
            .client(SURVIVOR)
            .submit(Op::put(key, value))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .expect("replies before the crash");
    }

    cluster.stop_replica(CRASH);
    std::thread::sleep(Duration::from_millis(100));

    for (key, value) in downtime_commands() {
        cluster
            .client(DOWNTIME_AT)
            .submit(Op::put(key, value))
            .expect("submits during downtime")
            .wait_timeout(Duration::from_secs(30))
            .expect("quorum of four still decides");
    }
    let total = (pre_crash_commands().len() + downtime_commands().len()) as u64;
    let survivor_applied = cluster.wait_for_applied(SURVIVOR, total, Duration::from_secs(30));
    assert_eq!(survivor_applied, total, "survivor must have applied the whole workload");

    cluster
        .restart_replica(CRASH, CaesarReplica::new(CRASH, caesar.clone()))
        .expect("replica restarts on its old address");
    let caught_up = cluster.wait_for_applied(CRASH, total, Duration::from_secs(30));
    assert_eq!(caught_up, total, "restarted replica must catch up to the full pre-restart history");
    assert_eq!(
        cluster.state_fingerprint(CRASH),
        cluster.state_fingerprint(SURVIVOR),
        "restarted replica's state-machine digest must equal a never-crashed peer's"
    );
    let stats = cluster.replica_stats(CRASH);
    assert_eq!(
        stats.catch_ups_completed.get(),
        1,
        "the restart must have completed exactly one snapshot catch-up"
    );

    let client = ReplicaClient::connect(crash_addr, CRASH, 500_000).expect("client connects");
    let (key, value) = pre_crash_commands()[3];
    let read = client.get(key).expect("read through the restarted replica");
    assert_eq!(
        read.output,
        Some(value),
        "a read at the restarted replica must reflect the pre-crash write"
    );
    client.shutdown();

    // Cross-runtime pin: the simulator applying the identical command
    // history lands on the identical digest.
    let mut reference = KvStore::new();
    let mut seq = 0u64;
    for (key, value) in pre_crash_commands().into_iter().chain(downtime_commands()) {
        seq += 1;
        reference.apply(&Command::put(CommandId::new(SURVIVOR, seq), key, value));
    }
    assert_eq!(
        consensus_core::StateMachine::fingerprint(&reference),
        cluster.state_fingerprint(CRASH),
        "the recovered state must match an offline replay of the same history"
    );

    cluster.shutdown();
}

/// Writes submitted after the full-cluster power cycle — the cycled cluster
/// must still decide and execute fresh commands, not merely serve history.
/// Nine of them, so the total leaves a non-empty suffix after the last
/// checkpoint and the lone-replica phase exercises suffix replay too.
fn post_cycle_commands() -> Vec<(u64, u64)> {
    (0..9u64).map(|i| (300 + i, 3_000 + i)).collect()
}

/// The durability lifecycle, identical for every protocol. One cluster with
/// per-replica write-ahead logs runs through the three disk-recovery shapes
/// in sequence:
///
/// 1. **Hybrid** — one replica crashes after the pre-crash writes and
///    restarts while traffic flowed in its absence: its own log provides the
///    prefix (asserted via `wal.replayed`), a live donor the delta.
/// 2. **Power cycle** — the *whole* cluster stops (quiesced first) and
///    restarts from its data dirs with zero live donors, then serves a
///    pre-crash read to an external client and decides new commands.
/// 3. **Lone replica** — the cluster shuts down for good and a single
///    replica is spawned from one data dir with nobody to talk to: it must
///    reach the final watermark and fingerprint from disk alone, completing
///    zero snapshot catch-ups.
fn run_durability_matrix<P, F>(label: &str, mut make: F, downtime: Downtime)
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    let root = TempDir::new(&format!("durability-{label}")).expect("tempdir");
    let net_config = NetConfig::new(NODES)
        .with_checkpoint_interval(8)
        .with_data_dir(root.path())
        .with_fsync(FsyncPolicy::PerBatch);
    let crash_dir = net_config.replica_data_dir(CRASH).expect("data dir is configured");
    let mut cluster = NetCluster::start(net_config, &mut make)
        .unwrap_or_else(|err| panic!("[{label}] cluster starts: {err}"));
    let crash_addr = cluster.addr(CRASH);
    let addrs: Vec<_> = (0..NODES).map(|i| cluster.addr(NodeId::from_index(i))).collect();

    for (key, value) in pre_crash_commands() {
        cluster
            .client(SURVIVOR)
            .submit(Op::put(key, value))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("[{label}] pre-crash write: {err:?}"));
    }

    // Phase 1: hybrid recovery. The crashed replica's log holds the
    // pre-crash prefix; the downtime traffic only exists at the donors.
    cluster.stop_replica(CRASH);
    std::thread::sleep(Duration::from_millis(100));
    let total = (pre_crash_commands().len() + downtime_commands().len()) as u64;
    match downtime {
        Downtime::Awaited => {
            for (key, value) in downtime_commands() {
                cluster
                    .client(DOWNTIME_AT)
                    .submit(Op::put(key, value))
                    .expect("submits during downtime")
                    .wait_timeout(Duration::from_secs(30))
                    .unwrap_or_else(|err| panic!("[{label}] downtime write: {err:?}"));
            }
        }
        Downtime::FireAndForget => {
            for (i, (key, value)) in downtime_commands().into_iter().enumerate() {
                let id = CommandId::new(DOWNTIME_AT, 10_000 + i as u64);
                cluster
                    .submit(DOWNTIME_AT, Command::put(id, key, value))
                    .unwrap_or_else(|err| panic!("[{label}] fire-and-forget write: {err}"));
            }
            std::thread::sleep(Duration::from_millis(300));
        }
    }
    cluster
        .restart_replica(CRASH, make(CRASH))
        .unwrap_or_else(|err| panic!("[{label}] replica restarts on its old address: {err}"));
    let caught_up = wait_monotone_applied(&cluster, CRASH, total, Duration::from_secs(30));
    assert_eq!(caught_up, total, "[{label}] hybrid recovery reaches the full history");
    let replayed = cluster.replica_registry(CRASH).snapshot().counter("wal.replayed");
    assert!(
        replayed > 0,
        "[{label}] disk contributed to the hybrid recovery (wal.replayed = {replayed})"
    );
    for index in 0..NODES {
        let node = NodeId::from_index(index);
        let applied = cluster.wait_for_applied(node, total, Duration::from_secs(30));
        assert_eq!(applied, total, "[{label}] {node} applies the whole workload");
    }
    assert_eq!(
        cluster.state_fingerprint(CRASH),
        cluster.state_fingerprint(SURVIVOR),
        "[{label}] hybrid-recovered replica matches a never-crashed peer"
    );

    // Phase 2: full-cluster power cycle. Quiesced above (every replica at
    // `total`), so every log is complete; nobody survives to donate.
    let pre_cycle_fingerprint = cluster.state_fingerprint(SURVIVOR);
    cluster.power_cycle(&mut make).unwrap_or_else(|err| panic!("[{label}] power cycle: {err}"));
    for index in 0..NODES {
        let node = NodeId::from_index(index);
        let applied = cluster.wait_for_applied(node, total, Duration::from_secs(30));
        assert_eq!(applied, total, "[{label}] {node} recovers the whole workload from disk");
        assert_eq!(
            cluster.state_fingerprint(node),
            pre_cycle_fingerprint,
            "[{label}] {node} power-cycles back to the pre-cycle state"
        );
    }

    // An external client reads a PRE-cycle write through a replica that has
    // now died twice, and the cycled cluster still decides new commands.
    // Each `get` is itself a consensus command, so it counts toward the
    // applied watermark at every replica.
    let client = ReplicaClient::connect(crash_addr, CRASH, 500_000)
        .unwrap_or_else(|err| panic!("[{label}] client connects after the power cycle: {err}"));
    let (key, value) = pre_crash_commands()[3];
    let read = client
        .get(key)
        .unwrap_or_else(|err| panic!("[{label}] read after the power cycle: {err:?}"));
    assert_eq!(read.output, Some(value), "[{label}] pre-cycle write survives the power cycle");
    let mut total = total + 1;
    for (key, value) in post_cycle_commands() {
        cluster
            .client(SURVIVOR)
            .submit(Op::put(key, value))
            .expect("submits after the power cycle")
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("[{label}] post-cycle write: {err:?}"));
    }
    total += post_cycle_commands().len() as u64;
    for index in 0..NODES {
        let node = NodeId::from_index(index);
        let applied = cluster.wait_for_applied(node, total, Duration::from_secs(30));
        assert_eq!(applied, total, "[{label}] {node} executes the post-cycle commands");
    }
    let (key, value) = post_cycle_commands()[0];
    let read = client.get(key).unwrap_or_else(|err| panic!("[{label}] post-cycle read: {err:?}"));
    assert_eq!(read.output, Some(value), "[{label}] the cycled cluster serves new writes");
    client.shutdown();
    total += 1;
    // Quiesce at the final count (the last read is a command too) so every
    // log — CRASH's in particular — is complete before the cluster goes away.
    let quiesced = cluster.wait_for_applied(CRASH, total, Duration::from_secs(30));
    assert_eq!(quiesced, total, "[{label}] the final read reaches the crash replica's log");

    // Phase 3: lone replica from its data dir — the cluster is gone, so
    // there is no donor and no quorum; disk is the only source of state.
    let final_fingerprint = cluster.state_fingerprint(CRASH);
    cluster.shutdown();
    let mut lone_config = NetReplicaConfig::loopback(CRASH, NODES);
    lone_config.data_dir = Some(crash_dir);
    let mut lone = NetReplica::spawn(lone_config, make(CRASH))
        .unwrap_or_else(|err| panic!("[{label}] lone replica spawns: {err}"));
    lone.start(addrs);
    let deadline = Instant::now() + Duration::from_secs(10);
    while lone.applied_through() < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        lone.applied_through(),
        total,
        "[{label}] the lone replica recovers the full watermark from disk alone"
    );
    assert_eq!(
        lone.state_fingerprint(),
        final_fingerprint,
        "[{label}] the lone replica's state matches the cluster's final state"
    );
    assert_eq!(
        lone.stats().catch_ups_completed.get(),
        0,
        "[{label}] no snapshot transfer was involved — recovery came from the log"
    );
    lone.shutdown();
}

#[test]
fn caesar_durable_recovery_matrix() {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    run_durability_matrix(
        "caesar",
        move |id| CaesarReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn epaxos_durable_recovery_matrix() {
    let config = EpaxosConfig::new(NODES).with_recovery_timeout(None);
    run_durability_matrix(
        "epaxos",
        move |id| EpaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn multipaxos_durable_recovery_matrix() {
    let config = MultiPaxosConfig::new(NODES, SURVIVOR);
    run_durability_matrix(
        "multipaxos",
        move |id| MultiPaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn mencius_durable_recovery_matrix() {
    let config = MenciusConfig::new(NODES);
    run_durability_matrix(
        "mencius",
        move |id| MenciusReplica::new(id, config.clone()),
        Downtime::FireAndForget,
    );
}

#[test]
fn m2paxos_durable_recovery_matrix() {
    let config = M2PaxosConfig::new(NODES);
    run_durability_matrix(
        "m2paxos",
        move |id| M2PaxosReplica::new(id, config.clone()),
        Downtime::Awaited,
    );
}

#[test]
fn submissions_to_a_down_replica_fail_fast() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    cluster.stop_replica(NodeId(2));

    // The submission must be refused at submit time (or its ticket must
    // fail immediately) — never hang until the 60 s session timeout.
    let started = Instant::now();
    let outcome = match cluster.client(NodeId(2)).submit(Op::put(7, 1)) {
        Err(err) => Err(err),
        Ok(ticket) => ticket.wait_timeout(Duration::from_secs(30)),
    };
    let elapsed = started.elapsed();
    match outcome {
        Err(SessionError::Disconnected(reason)) => {
            assert!(
                reason.contains("down") || reason.contains("lost"),
                "unexpected disconnect reason: {reason}"
            );
        }
        other => panic!("expected a fast disconnect error, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "down-replica submission took {elapsed:?} — it must fail fast, not ride a timeout"
    );
    cluster.shutdown();
}
