//! Crash → restart → catch-up: a killed `net` replica comes back with a
//! **fresh, empty state machine** and fills it by snapshot-based state
//! transfer — it requests `SnapshotRequest`/`SnapshotChunk` frames from a
//! live peer, restores the donated snapshot, replays the decided suffix,
//! and then serves reads that reflect **pre-crash** writes.
//!
//! The pinning assertion is a state-machine *fingerprint* comparison (see
//! `consensus_core::StateMachine::fingerprint`): after the same workload,
//! the restarted replica's digest must equal a never-crashed peer's — and
//! both must equal the digest the discrete-event simulator produces for the
//! identical command history, tying the recovery path back to the other
//! runtimes.

use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op, SessionError};
use consensus_types::{Command, CommandId, NodeId};
use kvstore::KvStore;
use net::{NetCluster, NetConfig, ReplicaClient};

const NODES: usize = 5;
const CRASH: NodeId = NodeId(4);
const SURVIVOR: NodeId = NodeId(0);

/// Commands submitted before the crash: distinct keys, values offset so a
/// read can never confuse "missing" with "value 0".
fn pre_crash_commands() -> Vec<(u64, u64)> {
    (0..20u64).map(|i| (100 + i, 1_000 + i)).collect()
}

/// Commands submitted while the crashed replica is down.
fn downtime_commands() -> Vec<(u64, u64)> {
    (0..12u64).map(|i| (200 + i, 2_000 + i)).collect()
}

#[test]
fn restarted_replica_serves_pre_crash_reads_via_snapshot_transfer() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let make = {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    };
    // A small checkpoint interval forces the donor to serve checkpoint
    // bytes *plus* a non-empty decided suffix, so the replay path is
    // exercised, not just the snapshot restore.
    let mut cluster = NetCluster::start(NetConfig::new(NODES).with_checkpoint_interval(8), make)
        .expect("cluster starts");
    let crash_addr = cluster.addr(CRASH);

    // Pre-crash writes, each awaited so all are committed before the kill.
    for (key, value) in pre_crash_commands() {
        cluster
            .client(SURVIVOR)
            .submit(Op::put(key, value))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .expect("replies before the crash");
    }

    cluster.stop_replica(CRASH);
    std::thread::sleep(Duration::from_millis(100));

    // Traffic the downed replica never sees — it must come back through the
    // snapshot, not through post-restart execution.
    for (key, value) in downtime_commands() {
        cluster
            .client(NodeId(1))
            .submit(Op::put(key, value))
            .expect("submits during downtime")
            .wait_timeout(Duration::from_secs(30))
            .expect("quorum of four still decides");
    }
    let total = (pre_crash_commands().len() + downtime_commands().len()) as u64;
    let survivor_applied = cluster.wait_for_applied(SURVIVOR, total, Duration::from_secs(30));
    assert_eq!(survivor_applied, total, "survivor must have applied the whole workload");

    // Restart with a fresh process *and* a fresh (empty) state machine; the
    // only way it can reach the survivor's watermark without new commands
    // is the snapshot transfer + suffix replay.
    cluster
        .restart_replica(CRASH, CaesarReplica::new(CRASH, caesar.clone()))
        .expect("replica restarts on its old address");
    let caught_up = cluster.wait_for_applied(CRASH, total, Duration::from_secs(30));
    assert_eq!(caught_up, total, "restarted replica must catch up to the full pre-restart history");
    assert_eq!(
        cluster.state_fingerprint(CRASH),
        cluster.state_fingerprint(SURVIVOR),
        "restarted replica's state-machine digest must equal a never-crashed peer's"
    );
    let stats = cluster.replica_stats(CRASH);
    assert_eq!(
        stats.catch_ups_completed.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the restart must have completed exactly one snapshot catch-up"
    );

    // The acceptance criterion: an external client reads a PRE-crash write
    // through the restarted replica itself.
    let client = ReplicaClient::connect(crash_addr, CRASH, 500_000).expect("client connects");
    let (key, value) = pre_crash_commands()[3];
    let read = client.get(key).expect("read through the restarted replica");
    assert_eq!(
        read.output,
        Some(value),
        "a read at the restarted replica must reflect the pre-crash write"
    );
    client.shutdown();

    // Cross-runtime pin: the simulator applying the identical command
    // history lands on the identical digest.
    let mut reference = KvStore::new();
    let mut seq = 0u64;
    for (key, value) in pre_crash_commands().into_iter().chain(downtime_commands()) {
        seq += 1;
        reference.apply(&Command::put(CommandId::new(SURVIVOR, seq), key, value));
    }
    assert_eq!(
        consensus_core::StateMachine::fingerprint(&reference),
        cluster.state_fingerprint(CRASH),
        "the recovered state must match an offline replay of the same history"
    );

    cluster.shutdown();
}

#[test]
fn submissions_to_a_down_replica_fail_fast() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    cluster.stop_replica(NodeId(2));

    // The submission must be refused at submit time (or its ticket must
    // fail immediately) — never hang until the 60 s session timeout.
    let started = Instant::now();
    let outcome = match cluster.client(NodeId(2)).submit(Op::put(7, 1)) {
        Err(err) => Err(err),
        Ok(ticket) => ticket.wait_timeout(Duration::from_secs(30)),
    };
    let elapsed = started.elapsed();
    match outcome {
        Err(SessionError::Disconnected(reason)) => {
            assert!(
                reason.contains("down") || reason.contains("lost"),
                "unexpected disconnect reason: {reason}"
            );
        }
        other => panic!("expected a fast disconnect error, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "down-replica submission took {elapsed:?} — it must fail fast, not ride a timeout"
    );
    cluster.shutdown();
}
