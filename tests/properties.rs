//! Randomised property tests over the core protocol invariants.
//!
//! These randomise workload shape, conflict rate, submission times, network
//! jitter and crash schedules, and assert the Generalized Consensus
//! properties plus CAESAR-specific invariants (timestamp order ⇒ predecessor
//! containment — Theorem 1 of the paper).
//!
//! The cases are driven by an explicit seeded loop over the vendored
//! ChaCha12 generator rather than `proptest` (unavailable offline): every
//! case is reproducible from the printed seed, and a failure reports the
//! case number so it can be replayed by fixing `MASTER_SEED`.

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{CStruct, Command, CommandId, NodeId, Timestamp};
use epaxos::{EpaxosConfig, EpaxosReplica};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use simnet::{LatencyMatrix, SimConfig, Simulator};

/// Number of randomised cases per property (proptest ran 24).
const CASES: u64 = 24;

/// Root seed; every case derives its own stream from this plus the case index.
const MASTER_SEED: u64 = 0x0CAE_5A12;

/// A randomly generated command submission.
#[derive(Debug, Clone)]
struct Submission {
    at_us: u64,
    origin: u8,
    key: u8,
}

fn submissions(rng: &mut ChaCha12Rng, max: usize) -> Vec<Submission> {
    let count = rng.gen_range(1..max.max(2));
    (0..count)
        .map(|_| Submission {
            at_us: rng.gen_range(0u64..3_000_000),
            origin: rng.gen_range(0u32..5) as u8,
            key: rng.gen_range(0u32..6) as u8,
        })
        .collect()
}

fn case_rng(test: u64, case: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(MASTER_SEED ^ (test << 32) ^ case)
}

fn run_caesar(subs: &[Submission], seed: u64, jitter: u64) -> Simulator<CaesarReplica> {
    let config = CaesarConfig::new(5);
    let sim_config =
        SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(seed).with_jitter_us(jitter);
    let mut sim = Simulator::new(sim_config, move |id| CaesarReplica::new(id, config.clone()));
    for (i, s) in subs.iter().enumerate() {
        let origin = NodeId(u32::from(s.origin));
        let cmd = Command::put(CommandId::new(origin, i as u64 + 1), u64::from(s.key), i as u64);
        sim.schedule_command(s.at_us, origin, cmd);
    }
    sim.run();
    sim
}

fn structures(sim: &Simulator<CaesarReplica>) -> Vec<CStruct> {
    NodeId::all(5)
        .map(|node| {
            sim.decisions(node)
                .iter()
                .map(|d| {
                    sim.process(node)
                        .history()
                        .get(d.command)
                        .map(|info| info.cmd.clone())
                        .unwrap_or_else(|| Command::put(d.command, u64::MAX, 0))
                })
                .collect()
        })
        .collect()
}

/// Liveness + Consistency: every proposed command is executed everywhere,
/// and conflicting commands are executed in the same relative order.
#[test]
fn caesar_decides_everything_and_replicas_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let subs = submissions(&mut rng, 40);
        let seed = rng.gen_range(0u64..1_000);
        let jitter = rng.gen_range(0u64..5_000);
        let sim = run_caesar(&subs, seed, jitter);
        for node in NodeId::all(5) {
            assert_eq!(
                sim.decisions(node).len(),
                subs.len(),
                "case {case} (seed {seed}, jitter {jitter}): node {node} executed {} of {} commands",
                sim.decisions(node).len(),
                subs.len()
            );
        }
        let structs = structures(&sim);
        for i in 0..structs.len() {
            for j in (i + 1)..structs.len() {
                assert!(
                    structs[i].compatible_with(&structs[j]),
                    "case {case}: replicas {i} and {j} diverge: {:?}",
                    structs[i].divergences(&structs[j])
                );
            }
        }
    }
}

/// Theorem 1 (delivery order follows timestamps): at every replica,
/// conflicting commands are executed in increasing final-timestamp order.
#[test]
fn caesar_executes_conflicting_commands_in_timestamp_order() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let subs = submissions(&mut rng, 30);
        let seed = rng.gen_range(0u64..1_000);
        let sim = run_caesar(&subs, seed, 2_000);
        for node in NodeId::all(5) {
            let decisions = sim.decisions(node);
            let history = sim.process(node).history();
            for (i, a) in decisions.iter().enumerate() {
                for b in &decisions[i + 1..] {
                    let (Some(ca), Some(cb)) = (history.get(a.command), history.get(b.command))
                    else {
                        continue;
                    };
                    if ca.cmd.conflicts_with(&cb.cmd) {
                        assert!(
                            a.timestamp < b.timestamp,
                            "case {case}: at {node} command {} (ts {}) executed before {} (ts {}) \
                             against timestamp order",
                            a.command,
                            a.timestamp,
                            b.command,
                            b.timestamp
                        );
                    }
                }
            }
        }
    }
}

/// Stability / Nontriviality: decided commands were proposed, ids are
/// unique, and timestamps of decided commands are unique per replica.
#[test]
fn caesar_decisions_are_unique_and_proposed() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let subs = submissions(&mut rng, 30);
        let seed = rng.gen_range(0u64..1_000);
        let sim = run_caesar(&subs, seed, 0);
        let proposed: std::collections::HashSet<CommandId> = subs
            .iter()
            .enumerate()
            .map(|(i, s)| CommandId::new(NodeId(u32::from(s.origin)), i as u64 + 1))
            .collect();
        for node in NodeId::all(5) {
            let mut seen = std::collections::HashSet::new();
            let mut ts_seen: std::collections::HashSet<Timestamp> =
                std::collections::HashSet::new();
            for d in sim.decisions(node) {
                assert!(
                    proposed.contains(&d.command),
                    "case {case}: unproposed command {}",
                    d.command
                );
                assert!(
                    seen.insert(d.command),
                    "case {case}: command {} executed twice",
                    d.command
                );
                assert!(
                    ts_seen.insert(d.timestamp),
                    "case {case}: timestamp {} reused",
                    d.timestamp
                );
            }
        }
    }
}

/// A crash of up to two replicas never causes divergence among survivors
/// (safety under failures), and survivors keep executing commands
/// proposed at correct replicas after the crash.
#[test]
fn caesar_crashes_never_cause_divergence() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let subs = submissions(&mut rng, 25);
        let crash_node = rng.gen_range(1u32..5);
        let crash_at = rng.gen_range(100_000u64..2_000_000);
        let seed = rng.gen_range(0u64..500);
        let config = CaesarConfig::new(5).with_recovery_timeout(Some(800_000));
        let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(seed);
        let mut sim = Simulator::new(sim_config, move |id| CaesarReplica::new(id, config.clone()));
        sim.schedule_crash(crash_at, NodeId(crash_node));
        for (i, s) in subs.iter().enumerate() {
            // Only correct replicas propose, so every command can finish.
            let origin = if s.origin == crash_node as u8 { 0 } else { s.origin };
            let origin = NodeId(u32::from(origin));
            let cmd =
                Command::put(CommandId::new(origin, i as u64 + 1), u64::from(s.key), i as u64);
            sim.schedule_command(s.at_us, origin, cmd);
        }
        sim.run();
        let survivors: Vec<NodeId> = NodeId::all(5).filter(|n| *n != NodeId(crash_node)).collect();
        for &node in &survivors {
            assert_eq!(
                sim.decisions(node).len(),
                subs.len(),
                "case {case} (crash {crash_node}@{crash_at}, seed {seed}): node {node} incomplete"
            );
        }
        let structs: Vec<CStruct> = survivors
            .iter()
            .map(|&node| {
                sim.decisions(node)
                    .iter()
                    .map(|d| {
                        sim.process(node)
                            .history()
                            .get(d.command)
                            .map(|i| i.cmd.clone())
                            .unwrap_or_else(|| Command::put(d.command, u64::MAX, 0))
                    })
                    .collect()
            })
            .collect();
        for i in 0..structs.len() {
            for j in (i + 1)..structs.len() {
                assert!(
                    structs[i].compatible_with(&structs[j]),
                    "case {case}: survivors {i} and {j} diverge"
                );
            }
        }
    }
}

/// EPaxos (the baseline) also satisfies Consistency on random workloads —
/// a sanity check that the comparison in the figures is fair.
#[test]
fn epaxos_replicas_agree_on_random_workloads() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let subs = submissions(&mut rng, 30);
        let seed = rng.gen_range(0u64..1_000);
        let config = EpaxosConfig::new(5);
        let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(seed);
        let mut sim = Simulator::new(sim_config, move |id| EpaxosReplica::new(id, config.clone()));
        let mut cmds = std::collections::HashMap::new();
        for (i, s) in subs.iter().enumerate() {
            let origin = NodeId(u32::from(s.origin));
            let cmd =
                Command::put(CommandId::new(origin, i as u64 + 1), u64::from(s.key), i as u64);
            cmds.insert(cmd.id(), cmd.clone());
            sim.schedule_command(s.at_us, origin, cmd);
        }
        sim.run();
        for node in NodeId::all(5) {
            assert_eq!(
                sim.decisions(node).len(),
                subs.len(),
                "case {case} (seed {seed}): node {node} incomplete"
            );
        }
        let structs: Vec<CStruct> = NodeId::all(5)
            .map(|node| sim.decisions(node).iter().map(|d| cmds[&d.command].clone()).collect())
            .collect();
        for i in 0..structs.len() {
            for j in (i + 1)..structs.len() {
                assert!(
                    structs[i].compatible_with(&structs[j]),
                    "case {case}: EPaxos replicas {i} and {j} diverge"
                );
            }
        }
    }
}
