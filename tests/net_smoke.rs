//! Smoke test for the `net` runtime: a real 5-node CAESAR cluster over
//! loopback TCP sockets.
//!
//! Mirrors the acceptance bar for the socket runtime: ≥ 100 commands
//! proposed from ≥ 2 different replicas are decided over real TCP, every
//! replica reports the identical delivery order, and non-conflicting
//! commands decide on the fast path.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{Command, CommandId, DecisionPath, NodeId};
use net::{NetCluster, NetConfig};

const NODES: usize = 5;
/// Commands in the fully conflicting agreement phase (all touch KEY).
const AGREEMENT_CMDS: usize = 110;
/// Commands in the non-conflicting burst phase (distinct keys).
const FAST_CMDS: usize = 30;
const KEY: u64 = 7;

#[test]
fn five_node_caesar_cluster_agrees_over_tcp() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");

    // Phase 1 — agreement: ≥ 100 commands on one contended key, proposed
    // round-robin from three different replicas. Same-key commands are
    // mutually conflicting, so Generalized Consensus requires every replica
    // to execute them in the identical (timestamp) order.
    let mut agreement_ids = Vec::with_capacity(AGREEMENT_CMDS);
    for i in 0..AGREEMENT_CMDS as u64 {
        let origin = NodeId::from_index((i % 3) as usize);
        let id = CommandId::new(origin, i + 1);
        agreement_ids.push(id);
        cluster.submit(origin, Command::put(id, KEY, i)).expect("submit over TCP");
        // Pace submissions so most proposals see a quiet conflict index; the
        // order assertion below holds either way.
        std::thread::sleep(Duration::from_millis(1));
    }

    // Phase 2 — fast path: a concurrent burst of commands on distinct keys.
    // Nothing conflicts, so every proposal must confirm its timestamp at a
    // full fast quorum and decide after two communication delays.
    let mut fast_ids = Vec::with_capacity(FAST_CMDS);
    for i in 0..FAST_CMDS as u64 {
        let origin = NodeId::from_index((i % NODES as u64) as usize);
        let id = CommandId::new(origin, 1_000 + i);
        fast_ids.push(id);
        cluster.submit(origin, Command::put(id, 100 + i, i)).expect("submit over TCP");
    }

    let total = AGREEMENT_CMDS + FAST_CMDS;
    let per_node = cluster.wait_for_all(total, Duration::from_secs(60));
    for (index, decisions) in per_node.iter().enumerate() {
        assert_eq!(
            decisions.len(),
            total,
            "replica p{index} executed {} of {total} commands over TCP",
            decisions.len()
        );
    }

    // Identical delivery order of the conflicting workload at every replica.
    let orders: Vec<Vec<CommandId>> = per_node
        .iter()
        .map(|decisions| {
            decisions.iter().map(|d| d.command).filter(|id| agreement_ids.contains(id)).collect()
        })
        .collect();
    assert_eq!(orders[0].len(), AGREEMENT_CMDS);
    for (index, order) in orders.iter().enumerate().skip(1) {
        assert_eq!(
            order, &orders[0],
            "replica p{index} delivered the conflicting commands in a different order than p0"
        );
    }

    // Every replica must also agree on each command's final timestamp.
    for decisions in &per_node {
        for d in decisions {
            let at_p0 = per_node[0]
                .iter()
                .find(|d0| d0.command == d.command)
                .expect("command executed at p0");
            assert_eq!(at_p0.timestamp, d.timestamp, "timestamp divergence for {}", d.command);
        }
    }

    // Non-conflicting commands decide on the fast path (checked at their
    // leader replica, where the decision path is meaningful).
    for &id in &fast_ids {
        let leader = id.origin();
        let decision = per_node[leader.index()]
            .iter()
            .find(|d| d.command == id)
            .expect("fast command executed at its leader");
        assert_eq!(
            decision.path,
            DecisionPath::Fast,
            "non-conflicting command {id} took {:?} instead of the fast path",
            decision.path
        );
    }

    // The traffic genuinely crossed sockets: every peer message is a frame.
    let (sent, received, dropped) = cluster.transport_totals();
    assert!(sent > 1_000, "only {sent} frames sent over TCP");
    assert!(received > 1_000, "only {received} frames received over TCP");
    assert_eq!(dropped, 0, "{dropped} frames dropped on healthy loopback links");

    cluster.shutdown();
}
