//! Smoke tests for the real-time (threaded) cluster runtime: the same
//! protocol implementations that run in the simulator must behave correctly
//! on OS threads with real (scaled-down) WAN delays.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_types::{Command, CommandId, CommandId as Id, NodeId};
use simnet::LatencyMatrix;

#[test]
fn caesar_threads_agree_on_conflicting_commands() {
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.004);
    let caesar = CaesarConfig::new(5).with_recovery_timeout(None);
    let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));

    // Conflicting updates from three continents plus independent commands.
    cluster.submit(NodeId(0), Command::put(Id::new(NodeId(0), 1), 7, 10));
    cluster.submit(NodeId(3), Command::put(Id::new(NodeId(3), 1), 7, 30));
    cluster.submit(NodeId(4), Command::put(Id::new(NodeId(4), 1), 7, 40));
    cluster.submit(NodeId(1), Command::put(Id::new(NodeId(1), 1), 99, 1));

    let d0 = cluster.wait_for_decisions(NodeId(0), 4, Duration::from_secs(15));
    let d4 = cluster.wait_for_decisions(NodeId(4), 4, Duration::from_secs(15));
    assert_eq!(d0.len(), 4, "Virginia must execute all four commands");
    assert_eq!(d4.len(), 4, "Mumbai must execute all four commands");

    // The three conflicting commands must appear in the same relative order.
    let key7 = [Id::new(NodeId(0), 1), Id::new(NodeId(3), 1), Id::new(NodeId(4), 1)];
    let order = |ds: &[consensus_types::Decision]| -> Vec<CommandId> {
        ds.iter().map(|d| d.command).filter(|c| key7.contains(c)).collect()
    };
    assert_eq!(order(&d0), order(&d4), "conflicting commands must be ordered identically");
    cluster.shutdown();
}

#[test]
fn cluster_reports_elapsed_time_and_handles_idle_shutdown() {
    let config = ClusterConfig::new(LatencyMatrix::uniform(3, 10.0)).with_latency_scale(0.01);
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
    std::thread::sleep(Duration::from_millis(20));
    assert!(cluster.elapsed() >= Duration::from_millis(10));
    assert!(cluster.decisions(NodeId(0)).is_empty());
    cluster.shutdown();
}
