//! Pluggability of the `consensus_core::StateMachine` API, end to end:
//! the same workload, driven through every runtime's `ClusterHandle`, runs
//! against the **`EventLog`** state machine — a wholly different
//! application than the `KvStore` the runtimes used to hard-code — and the
//! replies prove it: each command's output is its 1-based log position at
//! the submitting replica, not a key-value result.
//!
//! (`tests/cross_runtime.rs` pins the same property for the `KvStore`
//! reference implementation; together they satisfy "both state machines
//! work through all three runtimes".)

use std::sync::Arc;
use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_core::session::{ClusterHandle, Op};
use consensus_core::state_machine::{EventLog, StateMachineFactory};
use consensus_types::NodeId;
use net::{NetCluster, NetConfig};
use simnet::{LatencyMatrix, SimConfig, SimSession, Simulator};

const NODES: usize = 3;
const COMMANDS: u64 = 9;

fn event_log_factory() -> StateMachineFactory {
    Arc::new(|_| Box::new(EventLog::new()))
}

/// Drives a serial chain through one replica's session client and asserts
/// the event-log contract: command `i` answers with log position `i`.
/// `wait_all(count)` blocks until every replica executed `count` commands,
/// so the submitting replica's log length is exact at each step.
fn assert_log_positions<H: ClusterHandle>(runtime: &str, handle: &H, wait_all: impl Fn(u64)) {
    let client = handle.client(NodeId(0));
    for i in 1..=COMMANDS {
        let reply = client
            .submit(Op::put(7, i))
            .unwrap_or_else(|err| panic!("{runtime}: submit {i} failed: {err}"))
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("{runtime}: reply {i} failed: {err}"));
        assert_eq!(
            reply.output,
            Some(i),
            "{runtime}: the event log must answer command {i} with its log position"
        );
        wait_all(i);
    }
}

#[test]
fn event_log_state_machine_runs_through_all_three_runtimes() {
    // --- discrete-event simulator ------------------------------------
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let session = SimSession::with_state_machines(
        Simulator::new(SimConfig::new(LatencyMatrix::uniform(NODES, 500.0)), {
            let caesar = caesar.clone();
            move |id| CaesarReplica::new(id, caesar.clone())
        }),
        consensus_core::DEFAULT_IN_FLIGHT,
        event_log_factory(),
    );
    assert_log_positions("simnet", &session, |count| loop {
        let done = NodeId::all(NODES).all(|node| session.decisions(node).len() >= count as usize);
        if done {
            return;
        }
        assert!(session.step().is_some(), "simnet: queue drained at {count} commands");
    });
    let sim_digest = session.state_fingerprint(NodeId(0));
    for node in NodeId::all(NODES) {
        assert_eq!(session.applied_through(node), COMMANDS);
        assert_eq!(session.state_fingerprint(node), sim_digest, "simnet: {node} diverged");
    }

    // --- threaded in-process cluster ---------------------------------
    let config = ClusterConfig::new(LatencyMatrix::uniform(NODES, 500.0)).with_latency_scale(0.01);
    let threads = Cluster::start(config.with_state_machine(event_log_factory()), {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    });
    assert_log_positions("cluster", &threads, |count| {
        for node in NodeId::all(NODES) {
            let got = threads.wait_for_decisions(node, count as usize, Duration::from_secs(30));
            assert!(got.len() >= count as usize, "cluster: {node} stuck at {}", got.len());
        }
    });
    for node in NodeId::all(NODES) {
        assert_eq!(threads.applied_through(node), COMMANDS);
        assert_eq!(
            threads.state_fingerprint(node),
            sim_digest,
            "cluster: {node} diverged from the simulator's log digest"
        );
    }
    threads.shutdown();

    // --- TCP sockets --------------------------------------------------
    let sockets =
        NetCluster::start(NetConfig::new(NODES).with_state_machine(event_log_factory()), {
            let caesar = caesar.clone();
            move |id| CaesarReplica::new(id, caesar.clone())
        })
        .expect("net cluster starts");
    assert_log_positions("net", &sockets, |count| {
        let per_node = sockets.wait_for_all(count as usize, Duration::from_secs(30));
        for (index, decisions) in per_node.iter().enumerate() {
            assert!(decisions.len() >= count as usize, "net: p{index} stuck");
        }
    });
    for node in NodeId::all(NODES) {
        assert_eq!(sockets.applied_through(node), COMMANDS);
        assert_eq!(
            sockets.state_fingerprint(node),
            sim_digest,
            "net: {node} diverged from the simulator's log digest"
        );
    }
    sockets.shutdown();
}
