//! Cross-crate integration tests: every protocol must implement the
//! Generalized Consensus specification (Section III of the paper) on the
//! simulated five-site deployment.

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{CStruct, Command, CommandId, NodeId};
use epaxos::{EpaxosConfig, EpaxosReplica};
use kvstore::apply_all;
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use simnet::{LatencyMatrix, Process, SimConfig, SimSession, Simulator};
use workload::{ClosedLoopDriver, WorkloadConfig, WorkloadGenerator};

/// Runs `clients` closed-loop clients per node for `seconds` simulated
/// seconds on the given protocol and returns one executed-command structure
/// per replica, plus the set of commands that were proposed.
fn run_protocol<P, F>(
    make: F,
    conflict: f64,
    clients: usize,
    seconds: f64,
    seed: u64,
) -> (Vec<CStruct>, Vec<Command>, u64)
where
    P: Process + Send + 'static,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites())
        .with_seed(seed)
        .with_jitter_us(3_000)
        .with_horizon((seconds * 1_500_000.0) as u64 + 20_000_000);
    let session = SimSession::new(Simulator::new(sim_config, make));
    let workload = WorkloadConfig::new(5).with_conflict_percent(conflict);
    let generator = WorkloadGenerator::new(workload, seed ^ 0xABCD);
    let mut driver = ClosedLoopDriver::new(generator, clients);
    driver.start(&session);
    driver.pump_until(&session, (seconds * 1_000_000.0) as u64);
    // Let in-flight commands finish so replicas converge.
    session.run_until((seconds * 1_000_000.0) as u64 + 15_000_000);

    let issued = driver.issued();
    let mut proposed: Vec<Command> = Vec::new();
    let mut structures = vec![CStruct::new(); 5];
    let all_cmds = driver.issued_commands().clone();
    for node in NodeId::all(5) {
        for d in session.decisions(node) {
            if let Some(cmd) = all_cmds.get(&d.command) {
                structures[node.index()].append(cmd.clone());
                proposed.push(cmd.clone());
            } else {
                // Fall back to a synthetic command carrying only the id
                // (payload irrelevant for ordering checks).
                structures[node.index()].append(Command::put(d.command, u64::MAX, 0));
            }
        }
    }
    (structures, proposed, issued)
}

/// Consistency: any two replicas order conflicting commands identically.
fn assert_consistency(structures: &[CStruct], protocol: &str) {
    for i in 0..structures.len() {
        for j in (i + 1)..structures.len() {
            assert!(
                structures[i].compatible_with(&structures[j]),
                "{protocol}: replicas {i} and {j} diverge: {:?}",
                structures[i].divergences(&structures[j])
            );
        }
    }
}

fn caesar_sim(
    conflict: f64,
    clients: usize,
    seconds: f64,
    seed: u64,
) -> (Vec<CStruct>, Vec<Command>, u64) {
    let config = CaesarConfig::new(5);
    run_protocol(move |id| CaesarReplica::new(id, config.clone()), conflict, clients, seconds, seed)
}

#[test]
fn caesar_orders_conflicting_commands_consistently() {
    let (structures, _, issued) = caesar_sim(30.0, 6, 3.0, 1);
    assert!(issued > 100, "expected a non-trivial number of commands, got {issued}");
    assert_consistency(&structures, "caesar");
    // Every replica executed every decided command (liveness within the run).
    let len0 = structures[0].len();
    for s in &structures {
        assert!(s.len() >= len0.saturating_sub(issued as usize / 10), "replica fell far behind");
    }
}

#[test]
fn caesar_replicas_converge_to_identical_kv_state_under_full_conflict() {
    let (structures, _, _) = caesar_sim(100.0, 4, 2.0, 2);
    assert_consistency(&structures, "caesar");
    // With 100% conflicts every command touches the shared pool; all replicas
    // that executed the same command set must produce the same store.
    let reference = apply_all(structures[0].commands());
    for s in structures.iter().skip(1) {
        if s.len() == structures[0].len() {
            assert_eq!(apply_all(s.commands()).fingerprint(), reference.fingerprint());
        }
    }
}

#[test]
fn epaxos_orders_conflicting_commands_consistently() {
    let config = EpaxosConfig::new(5);
    let (structures, _, issued) =
        run_protocol(move |id| EpaxosReplica::new(id, config.clone()), 30.0, 6, 3.0, 3);
    assert!(issued > 100);
    assert_consistency(&structures, "epaxos");
}

#[test]
fn m2paxos_orders_conflicting_commands_consistently() {
    let config = M2PaxosConfig::new(5);
    let (structures, _, issued) =
        run_protocol(move |id| M2PaxosReplica::new(id, config.clone()), 30.0, 6, 3.0, 4);
    assert!(issued > 100);
    assert_consistency(&structures, "m2paxos");
}

#[test]
fn mencius_orders_all_commands_in_the_same_total_order() {
    let config = MenciusConfig::new(5);
    let (structures, _, issued) =
        run_protocol(move |id| MenciusReplica::new(id, config.clone()), 50.0, 4, 2.0, 5);
    assert!(issued > 50);
    assert_consistency(&structures, "mencius");
}

#[test]
fn multipaxos_orders_all_commands_in_the_same_total_order() {
    let config = MultiPaxosConfig::new(5, NodeId(3));
    let (structures, _, issued) =
        run_protocol(move |id| MultiPaxosReplica::new(id, config.clone()), 50.0, 4, 2.0, 6);
    assert!(issued > 50);
    assert_consistency(&structures, "multipaxos");
}

#[test]
fn nontriviality_only_proposed_commands_are_decided() {
    let (structures, proposed, _) = caesar_sim(20.0, 4, 2.0, 7);
    let proposed_ids: std::collections::HashSet<CommandId> =
        proposed.iter().map(Command::id).collect();
    for s in &structures {
        for cmd in s.commands() {
            assert!(
                proposed_ids.contains(&cmd.id()) || cmd.key() == Some(u64::MAX),
                "decided a command that was never proposed: {}",
                cmd.id()
            );
        }
    }
}

#[test]
fn caesar_handles_two_simultaneous_crashes() {
    // f = 2 for N = 5: the cluster must keep deciding with 3 correct nodes.
    let caesar_config = CaesarConfig::new(5)
        .with_fast_quorum_timeout(150_000)
        .with_recovery_timeout(Some(1_000_000));
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(11);
    let mut sim =
        Simulator::new(sim_config, move |id| CaesarReplica::new(id, caesar_config.clone()));
    // Crash Frankfurt and Mumbai early.
    sim.schedule_crash(50_000, NodeId(2));
    sim.schedule_crash(50_000, NodeId(4));
    for i in 0..10u64 {
        let origin = NodeId((i % 2) as u32); // only correct nodes propose
        sim.schedule_command(
            100_000 + i * 200_000,
            origin,
            Command::put(CommandId::new(origin, i + 1), 7, i),
        );
    }
    sim.run();
    for node in [NodeId(0), NodeId(1), NodeId(3)] {
        assert_eq!(sim.decisions(node).len(), 10, "{node} must execute all commands");
    }
    // The two crashed nodes executed nothing after the crash, which is fine.
}
