//! Multi-process smoke: a cluster of three separate `consensus_node` OS
//! processes, linked only by an address-book file and TCP, serves an
//! external client end to end.
//!
//! This is the deployment shape the paper measures — one replica per
//! machine — scaled down to one machine: no shared memory, no shared
//! threads, three kernels' worth of sockets (well, one kernel, three
//! processes). The test binary path comes from Cargo, so the smoke always
//! runs against the freshly built `consensus_node`.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use consensus_types::NodeId;
use net::ReplicaClient;

const NODES: usize = 3;

/// Kills the node processes even when an assertion panics mid-test.
struct Cluster {
    children: Vec<Child>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Grabs an OS-assigned loopback port and releases it for a node to bind.
fn reserve_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("reserved addr")
}

fn connect_with_retry(addr: SocketAddr, node: NodeId, timeout: Duration) -> ReplicaClient {
    let deadline = Instant::now() + timeout;
    loop {
        match ReplicaClient::connect(addr, node, 1_000) {
            Ok(client) => return client,
            Err(err) => {
                assert!(Instant::now() < deadline, "node {node} never came up: {err}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn three_consensus_node_processes_serve_an_external_client() {
    let addrs: Vec<SocketAddr> = (0..NODES).map(|_| reserve_addr()).collect();
    let book_path = std::env::temp_dir().join(format!("book_{}.txt", std::process::id()));
    {
        let mut book = std::fs::File::create(&book_path).expect("book file");
        writeln!(book, "protocol caesar").expect("book writes");
        for (index, addr) in addrs.iter().enumerate() {
            writeln!(book, "node {index} {addr}").expect("book writes");
        }
    }

    let bin = env!("CARGO_BIN_EXE_consensus_node");
    let cluster = Cluster {
        children: (0..NODES)
            .map(|index| {
                Command::new(bin)
                    .arg(&book_path)
                    .arg(index.to_string())
                    .arg("120") // lifetime bound, in case the kill never lands
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("consensus_node spawns")
            })
            .collect(),
    };

    // An external client against process 0: the submit only commits once a
    // quorum of the *other processes* accepted it over real TCP.
    let client = connect_with_retry(addrs[0], NodeId(0), Duration::from_secs(30));
    let write = client.put(7, 4242).expect("write across three processes");
    assert_eq!(write.node, NodeId(0));
    let read = client.get(7).expect("read across three processes");
    assert_eq!(read.output, Some(4242), "read-your-writes across process boundaries");
    client.shutdown();

    // A second client reaches a *different* process of the same cluster.
    let client = connect_with_retry(addrs[1], NodeId(1), Duration::from_secs(30));
    let write = client.put(8, 99).expect("write via process 1");
    assert_eq!(write.node, NodeId(1));
    client.shutdown();

    drop(cluster);
    let _ = std::fs::remove_file(&book_path);
}
