//! Cross-runtime agreement: the same seeded workload, driven through the
//! runtime-agnostic session API (`ClusterHandle::client` → `submit` →
//! `Ticket::wait`), produces identical *replies* and the identical
//! per-replica delivery order whether CAESAR runs in the discrete-event
//! simulator (`simnet::SimSession`), on in-process threads
//! (`cluster::Cluster`), or over real TCP sockets (`net::NetCluster`).
//!
//! The workload is a fully conflicting chain (every command touches the same
//! key) whose proposers are drawn from a seeded generator, submitted
//! serially: each command's reply is awaited, and the command is only
//! followed by the next one once every replica has executed it. Under those
//! conditions CAESAR must deliver the chain in the identical total order at
//! every replica of every runtime — and because each `Put` returns the
//! previous value of the key, the reply stream doubles as a check that all
//! three runtimes drive the identical state-machine history.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::{CommandId, NodeId};
use net::{NetCluster, NetConfig};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use simnet::{LatencyMatrix, SimConfig, SimSession, Simulator};

const NODES: usize = 5;
const COMMANDS: usize = 25;
const KEY: u64 = 7;
const SEED: u64 = 2024;

/// One command's client-visible outcome: its id and the previous value of
/// the contended key, as reported by the `Put` reply.
type ReplyRecord = (CommandId, Option<u64>);

/// Drives the seeded conflicting chain through the session API of any
/// runtime. `wait_all(count)` blocks until every replica executed `count`
/// commands, keeping the chain strictly serial across the whole cluster.
fn drive_chain<H: ClusterHandle>(
    runtime: &str,
    handle: &H,
    wait_all: impl Fn(usize),
) -> Vec<ReplyRecord> {
    let mut rng = ChaCha12Rng::seed_from_u64(SEED);
    let mut records = Vec::with_capacity(COMMANDS);
    for i in 0..COMMANDS as u64 {
        let origin = NodeId::from_index(rng.gen_range(0..NODES));
        let ticket = handle
            .client(origin)
            .submit(Op::put(KEY, i))
            .unwrap_or_else(|err| panic!("{runtime}: submit {i} failed: {err}"));
        let reply = ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("{runtime}: reply {i} failed: {err}"));
        assert_eq!(reply.node, origin, "{runtime}: reply must come from the submitting replica");
        records.push((reply.command, reply.output));
        wait_all(i as usize + 1);
    }
    records
}

fn assert_uniform_order(runtime: &str, orders: &[Vec<CommandId>]) -> Vec<CommandId> {
    assert_eq!(orders.len(), NODES);
    for (index, order) in orders.iter().enumerate() {
        assert_eq!(
            order.len(),
            COMMANDS,
            "{runtime}: replica p{index} executed {} of {COMMANDS} commands",
            order.len()
        );
        assert_eq!(
            order, &orders[0],
            "{runtime}: replica p{index} delivered a different order than p0"
        );
    }
    orders[0].clone()
}

struct RuntimeOutcome {
    replies: Vec<ReplyRecord>,
    order: Vec<CommandId>,
}

fn simnet_outcome() -> RuntimeOutcome {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(SEED);
    let session = SimSession::new(Simulator::new(sim_config, move |id| {
        CaesarReplica::new(id, config.clone())
    }));
    let replies = drive_chain("simnet", &session, |count| {
        // Step simulated time until every replica caught up.
        loop {
            let done = NodeId::all(NODES).all(|node| session.decisions(node).len() >= count);
            if done {
                return;
            }
            assert!(session.step().is_some(), "simnet: queue drained at {count} commands");
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| session.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    RuntimeOutcome { replies, order: assert_uniform_order("simnet", &orders) }
}

fn cluster_outcome() -> RuntimeOutcome {
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
    let replies = drive_chain("cluster", &threads, |count| {
        for node in NodeId::all(NODES) {
            let got = threads.wait_for_decisions(node, count, Duration::from_secs(30));
            assert!(got.len() >= count, "cluster: {node} stuck at {} of {count}", got.len());
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| threads.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("cluster", &orders);
    threads.shutdown();
    RuntimeOutcome { replies, order }
}

fn net_outcome() -> RuntimeOutcome {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sockets =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("net cluster starts");
    let replies = drive_chain("net", &sockets, |count| {
        let per_node = sockets.wait_for_all(count, Duration::from_secs(30));
        for (index, decisions) in per_node.iter().enumerate() {
            assert!(
                decisions.len() >= count,
                "net: p{index} stuck at {} of {count}",
                decisions.len()
            );
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| sockets.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("net", &orders);
    sockets.shutdown();
    RuntimeOutcome { replies, order }
}

#[test]
fn caesar_replies_and_delivery_order_are_identical_across_all_three_runtimes() {
    let from_sim = simnet_outcome();
    let from_threads = cluster_outcome();
    let from_sockets = net_outcome();

    // The session clients of every runtime saw the identical reply stream:
    // same command ids (same allocation order), same read-back values (the
    // serial conflicting chain makes output i the value written by i−1).
    assert_eq!(
        from_sim.replies, from_threads.replies,
        "simnet and the thread cluster replied differently"
    );
    assert_eq!(
        from_sim.replies, from_sockets.replies,
        "simnet and the TCP runtime replied differently"
    );
    for (i, (_, output)) in from_sim.replies.iter().enumerate() {
        let expected = if i == 0 { None } else { Some(i as u64 - 1) };
        assert_eq!(*output, expected, "reply {i} must return the previously written value");
    }

    // And every replica of every runtime delivered the same order.
    assert_eq!(
        from_sim.order, from_threads.order,
        "simnet and the thread cluster delivered different orders"
    );
    assert_eq!(
        from_sim.order, from_sockets.order,
        "simnet and the TCP runtime delivered different orders"
    );
}
