//! Cross-runtime agreement: the same seeded workload produces the identical
//! delivery order whether CAESAR runs in the discrete-event simulator
//! (`simnet`), on in-process threads (`cluster`), or over real TCP sockets
//! (`net`).
//!
//! The workload is a fully conflicting chain (every command touches the same
//! key) whose proposers are drawn from a seeded generator, submitted
//! serially: each command is only proposed once the previous one has
//! executed at every replica. Under those conditions CAESAR must deliver the
//! chain in the identical total order at every replica of every runtime —
//! any divergence means a runtime is corrupting message order, timestamps,
//! or the stable/delivery pipeline.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_types::{Command, CommandId, NodeId};
use net::{NetCluster, NetConfig};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use simnet::{LatencyMatrix, SimConfig, Simulator};

const NODES: usize = 5;
const COMMANDS: usize = 25;
const KEY: u64 = 7;
const SEED: u64 = 2024;

/// The seeded workload: (origin, command) pairs, identical in every runtime.
fn workload() -> Vec<(NodeId, Command)> {
    let mut rng = ChaCha12Rng::seed_from_u64(SEED);
    (0..COMMANDS as u64)
        .map(|i| {
            let origin = NodeId::from_index(rng.gen_range(0..NODES));
            (origin, Command::put(CommandId::new(origin, i + 1), KEY, i))
        })
        .collect()
}

fn assert_uniform_order(runtime: &str, orders: &[Vec<CommandId>]) -> Vec<CommandId> {
    assert_eq!(orders.len(), NODES);
    for (index, order) in orders.iter().enumerate() {
        assert_eq!(
            order.len(),
            COMMANDS,
            "{runtime}: replica p{index} executed {} of {COMMANDS} commands",
            order.len()
        );
        assert_eq!(
            order, &orders[0],
            "{runtime}: replica p{index} delivered a different order than p0"
        );
    }
    orders[0].clone()
}

fn simnet_order(workload: &[(NodeId, Command)]) -> Vec<CommandId> {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(SEED);
    let mut sim = Simulator::new(sim_config, move |id| CaesarReplica::new(id, config.clone()));
    for (i, (origin, cmd)) in workload.iter().enumerate() {
        // 500 ms (sim time) gaps: far beyond the decision latency of the EC2
        // matrix, so the chain is serial exactly like in the other runtimes.
        sim.schedule_command(i as u64 * 500_000, *origin, cmd.clone());
    }
    sim.run();
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| sim.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    assert_uniform_order("simnet", &orders)
}

fn cluster_order(workload: &[(NodeId, Command)]) -> Vec<CommandId> {
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
    for (i, (origin, cmd)) in workload.iter().enumerate() {
        threads.submit(*origin, cmd.clone());
        for node in NodeId::all(NODES) {
            let got = threads.wait_for_decisions(node, i + 1, Duration::from_secs(30));
            assert!(got.len() > i, "cluster: {node} stuck at {} of {}", got.len(), i + 1);
        }
    }
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| threads.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("cluster", &orders);
    threads.shutdown();
    order
}

fn net_order(workload: &[(NodeId, Command)]) -> Vec<CommandId> {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sockets =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("net cluster starts");
    for (i, (origin, cmd)) in workload.iter().enumerate() {
        sockets.submit(*origin, cmd.clone()).expect("submit over TCP");
        let per_node = sockets.wait_for_all(i + 1, Duration::from_secs(30));
        for (index, decisions) in per_node.iter().enumerate() {
            assert!(decisions.len() > i, "net: p{index} stuck at {} of {}", decisions.len(), i + 1);
        }
    }
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| sockets.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("net", &orders);
    sockets.shutdown();
    order
}

#[test]
fn caesar_delivery_order_is_identical_across_all_three_runtimes() {
    let workload = workload();
    let from_sim = simnet_order(&workload);
    let from_threads = cluster_order(&workload);
    let from_sockets = net_order(&workload);
    assert_eq!(from_sim, from_threads, "simnet and the thread cluster delivered different orders");
    assert_eq!(from_sim, from_sockets, "simnet and the TCP runtime delivered different orders");
}
