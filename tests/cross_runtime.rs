//! Cross-runtime agreement: the same seeded workload, driven through the
//! runtime-agnostic session API (`ClusterHandle::client` → `submit` →
//! `Ticket::wait`), produces identical *replies* and the identical
//! per-replica delivery order whether CAESAR runs in the discrete-event
//! simulator (`simnet::SimSession`), on in-process threads
//! (`cluster::Cluster`), or over real TCP sockets (`net::NetCluster`).
//!
//! The workload is a fully conflicting chain (every command touches the same
//! key) whose proposers are drawn from a seeded generator, submitted
//! serially: each command's reply is awaited, and the command is only
//! followed by the next one once every replica has executed it. Under those
//! conditions CAESAR must deliver the chain in the identical total order at
//! every replica of every runtime — and because each `Put` returns the
//! previous value of the key, the reply stream doubles as a check that all
//! three runtimes drive the identical state-machine history.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::{CommandId, NodeId};
use net::{NetCluster, NetConfig};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use simnet::{LatencyMatrix, SimConfig, SimSession, Simulator};

const NODES: usize = 5;
const COMMANDS: usize = 25;
const KEY: u64 = 7;
const SEED: u64 = 2024;

/// One command's client-visible outcome: its id and the previous value of
/// the contended key, as reported by the `Put` reply.
type ReplyRecord = (CommandId, Option<u64>);

/// Drives the seeded conflicting chain through the session API of any
/// runtime. `wait_all(count)` blocks until every replica executed `count`
/// commands, keeping the chain strictly serial across the whole cluster.
fn drive_chain<H: ClusterHandle>(
    runtime: &str,
    handle: &H,
    wait_all: impl Fn(usize),
) -> Vec<ReplyRecord> {
    let mut rng = ChaCha12Rng::seed_from_u64(SEED);
    let mut records = Vec::with_capacity(COMMANDS);
    for i in 0..COMMANDS as u64 {
        let origin = NodeId::from_index(rng.gen_range(0..NODES));
        let ticket = handle
            .client(origin)
            .submit(Op::put(KEY, i))
            .unwrap_or_else(|err| panic!("{runtime}: submit {i} failed: {err}"));
        let reply = ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("{runtime}: reply {i} failed: {err}"));
        assert_eq!(reply.node, origin, "{runtime}: reply must come from the submitting replica");
        records.push((reply.command, reply.output));
        wait_all(i as usize + 1);
    }
    records
}

fn assert_uniform_order(runtime: &str, orders: &[Vec<CommandId>]) -> Vec<CommandId> {
    assert_eq!(orders.len(), NODES);
    for (index, order) in orders.iter().enumerate() {
        assert_eq!(
            order.len(),
            COMMANDS,
            "{runtime}: replica p{index} executed {} of {COMMANDS} commands",
            order.len()
        );
        assert_eq!(
            order, &orders[0],
            "{runtime}: replica p{index} delivered a different order than p0"
        );
    }
    orders[0].clone()
}

struct RuntimeOutcome {
    replies: Vec<ReplyRecord>,
    order: Vec<CommandId>,
}

fn simnet_outcome() -> RuntimeOutcome {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(SEED);
    let session = SimSession::new(Simulator::new(sim_config, move |id| {
        CaesarReplica::new(id, config.clone())
    }));
    let replies = drive_chain("simnet", &session, |count| {
        // Step simulated time until every replica caught up.
        loop {
            let done = NodeId::all(NODES).all(|node| session.decisions(node).len() >= count);
            if done {
                return;
            }
            assert!(session.step().is_some(), "simnet: queue drained at {count} commands");
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| session.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    RuntimeOutcome { replies, order: assert_uniform_order("simnet", &orders) }
}

fn cluster_outcome() -> RuntimeOutcome {
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites()).with_latency_scale(0.005);
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
    let replies = drive_chain("cluster", &threads, |count| {
        for node in NodeId::all(NODES) {
            let got = threads.wait_for_decisions(node, count, Duration::from_secs(30));
            assert!(got.len() >= count, "cluster: {node} stuck at {} of {count}", got.len());
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| threads.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("cluster", &orders);
    threads.shutdown();
    RuntimeOutcome { replies, order }
}

fn net_outcome() -> RuntimeOutcome {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sockets =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("net cluster starts");
    let replies = drive_chain("net", &sockets, |count| {
        let per_node = sockets.wait_for_all(count, Duration::from_secs(30));
        for (index, decisions) in per_node.iter().enumerate() {
            assert!(
                decisions.len() >= count,
                "net: p{index} stuck at {} of {count}",
                decisions.len()
            );
        }
    });
    let orders: Vec<Vec<CommandId>> = NodeId::all(NODES)
        .map(|node| sockets.decisions(node).iter().map(|d| d.command).collect())
        .collect();
    let order = assert_uniform_order("net", &orders);
    sockets.shutdown();
    RuntimeOutcome { replies, order }
}

// ---- proposer batching: concurrent submissions, all three runtimes ------

const BATCHED_COMMANDS: usize = 24;
const BATCH_MAX: usize = 8;

/// Submits `BATCHED_COMMANDS` independent writes (distinct keys) to replica
/// p0 *concurrently* — every ticket in flight before the first wait — so an
/// enabled proposer batcher can coalesce them, then awaits every reply.
/// Each key is fresh, so every `Put` must report `None` regardless of how
/// the commands were grouped into consensus units.
fn submit_batched<H: ClusterHandle>(runtime: &str, handle: &H) {
    let client = handle.client(NodeId(0));
    let tickets: Vec<_> = (0..BATCHED_COMMANDS as u64)
        .map(|i| {
            client
                .submit(Op::put(100 + i, i))
                .unwrap_or_else(|err| panic!("{runtime}: submit {i} failed: {err}"))
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|err| panic!("{runtime}: reply {i} failed: {err}"));
        assert_eq!(reply.node, NodeId(0), "{runtime}: reply must come from p0");
        assert_eq!(reply.output, None, "{runtime}: key 10{i} was fresh, Put must return None");
    }
}

/// Cross-runtime agreement under batching: the same concurrent workload,
/// driven with proposer batching enabled, answers every individual ticket
/// and converges every replica of every runtime onto the identical
/// state-machine fingerprint. The TCP runtime additionally runs a 4-way
/// sharded executor, so serial and parallel execution are compared against
/// each other across runtime boundaries.
#[test]
fn batched_submissions_reply_per_command_and_converge_across_runtimes() {
    // Simulator: all submissions land at the same simulated instant, so
    // coalescing is guaranteed and the batch counters must move.
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let sim_config =
        SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(SEED).with_batch(BATCH_MAX);
    let session = SimSession::new(Simulator::new(sim_config, move |id| {
        CaesarReplica::new(id, caesar.clone())
    }));
    submit_batched("simnet", &session);
    let _ = session.run();
    let sim_fp = session.state_fingerprint(NodeId(0));
    for node in NodeId::all(NODES) {
        assert_eq!(
            session.applied_through(node),
            BATCHED_COMMANDS as u64,
            "simnet: {node} must apply every inner command"
        );
        assert_eq!(session.state_fingerprint(node), sim_fp, "simnet: {node} fingerprint differs");
    }
    let assembled = session.with_sim(|sim| sim.registry().snapshot().counter("batch.assembled"));
    assert!(assembled > 0, "simnet: concurrent submissions must have coalesced");

    // Thread cluster: serial executors, opportunistic mailbox batching.
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites())
        .with_latency_scale(0.005)
        .with_batch(BATCH_MAX);
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let threads = Cluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()));
    submit_batched("cluster", &threads);
    wait_applied("cluster", NODES, BATCHED_COMMANDS as u64, |node| threads.applied_through(node));
    let cluster_fp = threads.state_fingerprint(NodeId(0));
    for node in NodeId::all(NODES) {
        assert_eq!(threads.state_fingerprint(node), cluster_fp, "cluster: {node} differs");
    }
    threads.shutdown();

    // TCP runtime: batching plus a sharded executor on every replica.
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let net_config = NetConfig::new(NODES).with_batch(BATCH_MAX).with_exec_workers(4);
    let sockets = NetCluster::start(net_config, move |id| CaesarReplica::new(id, caesar.clone()))
        .expect("net cluster starts");
    submit_batched("net", &sockets);
    wait_applied("net", NODES, BATCHED_COMMANDS as u64, |node| sockets.applied_through(node));
    let net_fp = sockets.state_fingerprint(NodeId(0));
    for node in NodeId::all(NODES) {
        assert_eq!(sockets.state_fingerprint(node), net_fp, "net: {node} differs");
    }
    sockets.shutdown();

    // The workload is deterministic in its effects (independent writes), so
    // all fifteen replicas — serial or sharded, simulated or real — end on
    // one fingerprint.
    assert_eq!(sim_fp, cluster_fp, "simnet and thread cluster diverged");
    assert_eq!(sim_fp, net_fp, "simnet and TCP runtime diverged");
}

/// Polls `applied_through` for every node until it reaches `target` (every
/// replica has applied every inner command) or a 30 s deadline passes.
fn wait_applied(runtime: &str, nodes: usize, target: u64, applied: impl Fn(NodeId) -> u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    for node in NodeId::all(nodes) {
        loop {
            if applied(node) >= target {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{runtime}: {node} stuck at {} of {target} applied",
                applied(node)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[test]
fn caesar_replies_and_delivery_order_are_identical_across_all_three_runtimes() {
    let from_sim = simnet_outcome();
    let from_threads = cluster_outcome();
    let from_sockets = net_outcome();

    // The session clients of every runtime saw the identical reply stream:
    // same command ids (same allocation order), same read-back values (the
    // serial conflicting chain makes output i the value written by i−1).
    assert_eq!(
        from_sim.replies, from_threads.replies,
        "simnet and the thread cluster replied differently"
    );
    assert_eq!(
        from_sim.replies, from_sockets.replies,
        "simnet and the TCP runtime replied differently"
    );
    for (i, (_, output)) in from_sim.replies.iter().enumerate() {
        let expected = if i == 0 { None } else { Some(i as u64 - 1) };
        assert_eq!(*output, expected, "reply {i} must return the previously written value");
    }

    // And every replica of every runtime delivered the same order.
    assert_eq!(
        from_sim.order, from_threads.order,
        "simnet and the thread cluster delivered different orders"
    );
    assert_eq!(
        from_sim.order, from_sockets.order,
        "simnet and the TCP runtime delivered different orders"
    );
}
