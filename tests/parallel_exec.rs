//! Sharded-vs-serial execution parity, for **every** protocol: a thread
//! cluster where replicas p1 and p3 run a 4-way *sharded* executor while
//! p0, p2 and p4 apply *serially*, driven with a conflict-heavy batched
//! workload over a six-key keyspace. Consensus fixes one total order per
//! conflict class; the sharded executor is only allowed to exploit the
//! *absence* of conflicts, so every replica — regardless of how many
//! workers it applies with — must land on the identical state-machine
//! fingerprint and the identical applied watermark.
//!
//! The workload is deliberately hostile to a careless parallel executor:
//! commands are submitted in concurrent waves (so the proposer batcher
//! coalesces multi-command units), and with only six live keys most
//! co-batched commands conflict — they hash to the same shard and must be
//! applied in unit order there. A mistake in shard routing, intra-unit
//! ordering, or watermark accounting shows up as a fingerprint split
//! between the serial and sharded replicas.

use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use cluster::{Cluster, ClusterConfig};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::NodeId;
use epaxos::{EpaxosConfig, EpaxosReplica};
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use simnet::{LatencyMatrix, Process};

const NODES: usize = 5;
/// All submissions go to p0 — the Multi-Paxos leader, and a valid proposer
/// for every other protocol.
const AT: NodeId = NodeId(0);
/// Concurrent waves × commands per wave; every command keyed into a
/// six-key space so conflicts are the rule, not the exception.
const WAVES: u64 = 6;
const WAVE_WIDTH: u64 = 16;
const KEYS: u64 = 6;

/// Workers per replica: serial and 4-way sharded interleaved, so parity is
/// checked between *both* executor kinds inside one consensus history.
fn worker_layout() -> Vec<usize> {
    vec![1, 4, 1, 4, 1]
}

fn run_parallel_matrix<P, F>(label: &str, make: F)
where
    P: Process + Send + 'static,
    P::Message: Send + 'static,
    F: FnMut(NodeId) -> P,
{
    let config = ClusterConfig::new(LatencyMatrix::ec2_five_sites())
        .with_latency_scale(0.005)
        .with_batch(8)
        .with_exec_workers_per_node(worker_layout());
    let cluster = Cluster::start(config, make);
    for (index, workers) in worker_layout().into_iter().enumerate() {
        let expected = if workers > 1 { "sharded" } else { "serial" };
        assert_eq!(
            cluster.executor_kind(NodeId::from_index(index)),
            expected,
            "[{label}] p{index} runs the configured executor kind"
        );
    }

    // Concurrent conflicting waves: every ticket of a wave is in flight
    // before the first is awaited, so the batcher can coalesce, and the
    // narrow keyspace makes most co-batched commands conflict.
    let client = cluster.client(AT);
    for wave in 0..WAVES {
        let tickets: Vec<_> = (0..WAVE_WIDTH)
            .map(|j| {
                let i = wave * WAVE_WIDTH + j;
                client
                    .submit(Op::put(50 + i % KEYS, i))
                    .unwrap_or_else(|err| panic!("[{label}] submit {i} failed: {err}"))
            })
            .collect();
        for (j, ticket) in tickets.into_iter().enumerate() {
            ticket
                .wait_timeout(Duration::from_secs(30))
                .unwrap_or_else(|err| panic!("[{label}] wave {wave} reply {j} failed: {err}"));
        }
    }

    // Every replica applies the whole workload ...
    let total = WAVES * WAVE_WIDTH;
    let deadline = Instant::now() + Duration::from_secs(30);
    for node in NodeId::all(NODES) {
        while cluster.applied_through(node) < total {
            assert!(
                Instant::now() < deadline,
                "[{label}] {node} stuck at {} of {total} applied",
                cluster.applied_through(node)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // ... and serial and sharded executors agree on the resulting state.
    let reference = cluster.state_fingerprint(AT);
    for node in NodeId::all(NODES) {
        assert_eq!(
            cluster.state_fingerprint(node),
            reference,
            "[{label}] {node} ({}) diverged from p0 (serial)",
            cluster.executor_kind(node)
        );
    }
    cluster.shutdown();
}

#[test]
fn caesar_sharded_execution_matches_serial() {
    let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
    run_parallel_matrix("caesar", move |id| CaesarReplica::new(id, config.clone()));
}

#[test]
fn epaxos_sharded_execution_matches_serial() {
    let config = EpaxosConfig::new(NODES).with_recovery_timeout(None);
    run_parallel_matrix("epaxos", move |id| EpaxosReplica::new(id, config.clone()));
}

#[test]
fn multipaxos_sharded_execution_matches_serial() {
    let config = MultiPaxosConfig::new(NODES, AT);
    run_parallel_matrix("multipaxos", move |id| MultiPaxosReplica::new(id, config.clone()));
}

#[test]
fn mencius_sharded_execution_matches_serial() {
    let config = MenciusConfig::new(NODES);
    run_parallel_matrix("mencius", move |id| MenciusReplica::new(id, config.clone()));
}

#[test]
fn m2paxos_sharded_execution_matches_serial() {
    let config = M2PaxosConfig::new(NODES);
    run_parallel_matrix("m2paxos", move |id| M2PaxosReplica::new(id, config.clone()));
}
