//! Batched throughput soak: 4096 virtual clients against one TCP replica.
//!
//! Eight submitter threads share replica p0 through cloned session
//! [`ClientHandle`]s, each keeping up to 128 commands in flight, for a
//! total of 4096 commands racing through the proposer batcher and a 4-way
//! sharded executor. The test pins the end-to-end contract the batching
//! layer must keep under pressure: every individual ticket gets its own
//! reply (fan-out from batched decisions), every replica applies every
//! inner command exactly once, all replicas converge on one fingerprint,
//! and the batcher demonstrably coalesced (`batch.assembled` moved).
//!
//! Ignored by default — this is the bounded CI soak (`--ignored`), not a
//! unit test.

use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::NodeId;
use net::{NetCluster, NetConfig};

const NODES: usize = 3;
const THREADS: u64 = 8;
const PER_THREAD: u64 = 512;
/// Tickets a submitter holds before draining — 8 × 128 = 1024 commands in
/// flight cluster-wide, well under the 4096 session bound.
const WINDOW: u64 = 128;

#[test]
#[ignore = "bounded CI soak; run with `cargo test --release -- --ignored`"]
fn four_thousand_virtual_clients_batch_through_one_replica() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let config = NetConfig::new(NODES).with_batch(64).with_exec_workers(4);
    let cluster = NetCluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()))
        .expect("cluster starts");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let client = cluster.client(NodeId(0));
            scope.spawn(move || {
                // Disjoint key ranges per thread keep the final database
                // deterministic no matter how commands were batched.
                let base = 10_000 * (t + 1);
                let mut sent = 0u64;
                while sent < PER_THREAD {
                    let window = WINDOW.min(PER_THREAD - sent);
                    let tickets: Vec<_> = (0..window)
                        .map(|i| {
                            client.submit(Op::put(base + sent + i, sent + i)).unwrap_or_else(
                                |err| panic!("thread {t}: submit {} failed: {err}", sent + i),
                            )
                        })
                        .collect();
                    for (i, ticket) in tickets.into_iter().enumerate() {
                        ticket.wait_timeout(Duration::from_secs(60)).unwrap_or_else(|err| {
                            panic!("thread {t}: reply {} failed: {err}", sent + i as u64)
                        });
                    }
                    sent += window;
                }
            });
        }
    });

    // Every replica applies all 4096 inner commands ...
    let total = THREADS * PER_THREAD;
    let deadline = Instant::now() + Duration::from_secs(60);
    for node in NodeId::all(NODES) {
        while cluster.applied_through(node) < total {
            assert!(
                Instant::now() < deadline,
                "{node} stuck at {} of {total} applied",
                cluster.applied_through(node)
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // ... and converges on one state, batched or not.
    let reference = cluster.state_fingerprint(NodeId(0));
    for node in NodeId::all(NODES) {
        assert_eq!(cluster.state_fingerprint(node), reference, "{node} diverged");
    }
    // With 1024 commands in flight against one mailbox, coalescing is
    // certain: the proposer must have assembled multi-command batches.
    let snapshot = cluster.replica_registry(NodeId(0)).snapshot();
    let assembled = snapshot.counter("batch.assembled");
    let batched = snapshot.counter("batch.commands");
    assert!(assembled > 0, "no batches assembled under 1024-deep concurrency");
    assert!(
        batched > assembled,
        "batches must hold >1 command on average (assembled {assembled}, commands {batched})"
    );
    cluster.shutdown();
}
