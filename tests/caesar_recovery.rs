//! Failure and recovery scenarios for CAESAR: the recovery procedure
//! (Figure 5 of the paper) must finish the decision of any command whose
//! leader crashed, at any point of the protocol, without ever contradicting a
//! decision that may already have been taken.

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{Command, CommandId, NodeId};
use simnet::{LatencyMatrix, SimConfig, Simulator};

fn put(node: u32, seq: u64, key: u64) -> Command {
    Command::put(CommandId::new(NodeId(node), seq), key, seq)
}

fn sim_with(config: CaesarConfig, seed: u64) -> Simulator<CaesarReplica> {
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites()).with_seed(seed);
    Simulator::new(sim_config, move |id| CaesarReplica::new(id, config.clone()))
}

/// Crash the leader at a configurable point after it proposes and check that
/// the survivors still execute the command exactly once and agree on the
/// order with respect to a later conflicting command.
fn crash_leader_at(crash_delay_us: u64, seed: u64) {
    let config = CaesarConfig::new(5).with_recovery_timeout(Some(800_000));
    let mut sim = sim_with(config, seed);
    sim.schedule_command(0, NodeId(0), put(0, 1, 7));
    sim.schedule_crash(crash_delay_us, NodeId(0));
    // A later conflicting command from a surviving node.
    sim.schedule_command(3_000_000, NodeId(1), put(1, 1, 7));
    sim.run();

    let survivors: Vec<NodeId> = NodeId::all(5).skip(1).collect();
    let reference: Vec<CommandId> = sim.decisions(survivors[0]).iter().map(|d| d.command).collect();
    assert!(
        !reference.is_empty(),
        "survivors executed nothing after crashing the leader at {crash_delay_us}µs"
    );
    // The later command must always be executed; the orphaned one must be
    // executed on every survivor if it is executed on any of them.
    assert!(reference.contains(&CommandId::new(NodeId(1), 1)));
    for &node in &survivors {
        let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
        assert_eq!(order, reference, "{node} disagrees after crash at {crash_delay_us}µs");
        // No duplicates.
        let mut dedup = order.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), order.len());
    }
}

#[test]
fn leader_crash_right_after_proposing_is_recovered() {
    // The FastPropose messages are still in flight (closest one-way delay is
    // ~6 ms); no replica has replied yet.
    crash_leader_at(1_000, 1);
}

#[test]
fn leader_crash_after_replies_arrive_is_recovered() {
    // ~50 ms: the leader has gathered some FastProposeR replies but has not
    // necessarily reached a fast quorum (Mumbai is 93 ms away).
    crash_leader_at(50_000, 2);
}

#[test]
fn leader_crash_after_stable_broadcast_still_converges() {
    // ~200 ms: the leader has typically broadcast STABLE already; survivors
    // must still all execute the command exactly once.
    crash_leader_at(200_000, 3);
}

#[test]
fn recovery_preserves_a_possible_fast_decision() {
    // The leader reaches a fast decision and crashes immediately after
    // broadcasting STABLE; because of WAN delays only some replicas may have
    // received it. Recovery must re-establish the same timestamp/predecessors
    // rather than re-deciding differently.
    let config = CaesarConfig::new(5).with_recovery_timeout(Some(700_000));
    let mut sim = sim_with(config, 4);
    sim.schedule_command(0, NodeId(0), put(0, 1, 7));
    sim.schedule_command(5_000, NodeId(3), put(3, 1, 7));
    // Crash the first leader after its fast round finishes (~2 RTTs to the
    // fast quorum ≈ 190 ms) but before every STABLE lands everywhere.
    sim.schedule_crash(200_000, NodeId(0));
    sim.run();
    let survivors: Vec<NodeId> = NodeId::all(5).skip(1).collect();
    let reference: Vec<CommandId> = sim.decisions(survivors[0]).iter().map(|d| d.command).collect();
    assert_eq!(reference.len(), 2, "both conflicting commands must be executed");
    for &node in &survivors {
        let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
        assert_eq!(order, reference, "{node} must agree on the conflicting order");
        // The final timestamps must also agree across replicas.
        let ts: Vec<_> = sim.decisions(node).iter().map(|d| (d.command, d.timestamp)).collect();
        let ts_ref: Vec<_> =
            sim.decisions(survivors[0]).iter().map(|d| (d.command, d.timestamp)).collect();
        assert_eq!(ts, ts_ref, "{node} must agree on final timestamps");
    }
}

#[test]
fn concurrent_recoveries_by_different_nodes_do_not_duplicate_execution() {
    // Use identical (non-staggered-enough) timeouts so several replicas race
    // to recover the same command; ballots must arbitrate.
    let config = CaesarConfig::new(5).with_recovery_timeout(Some(500_000));
    let mut sim = sim_with(config, 5);
    for i in 0..5u64 {
        sim.schedule_command(i * 2_000, NodeId(0), put(0, i + 1, 7));
    }
    sim.schedule_crash(10_000, NodeId(0));
    sim.run();
    for node in NodeId::all(5).skip(1) {
        let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
        let mut unique = order.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), order.len(), "{node} executed a command twice");
    }
    let total_recoveries: u64 =
        NodeId::all(5).skip(1).map(|n| sim.process(n).metrics().recoveries_started).sum();
    assert!(total_recoveries >= 1);
    // All survivors agree.
    let reference: Vec<CommandId> = sim.decisions(NodeId(1)).iter().map(|d| d.command).collect();
    for node in NodeId::all(5).skip(2) {
        let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
        assert_eq!(order, reference);
    }
}

#[test]
fn disabled_recovery_leaves_orphan_commands_pending_but_safe() {
    // Without recovery, a crashed leader's command simply never becomes
    // stable; survivors must not execute it and must not block non-conflicting
    // commands.
    let config = CaesarConfig::new(5).with_recovery_timeout(None);
    let mut sim = sim_with(config, 6);
    sim.schedule_command(0, NodeId(0), put(0, 1, 7));
    sim.schedule_crash(1_000, NodeId(0));
    // Non-conflicting command from another node must still execute.
    sim.schedule_command(500_000, NodeId(1), put(1, 1, 99));
    sim.run();
    for node in NodeId::all(5).skip(1) {
        let executed: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
        assert!(!executed.contains(&CommandId::new(NodeId(0), 1)));
        assert!(executed.contains(&CommandId::new(NodeId(1), 1)));
    }
}

#[test]
fn cluster_tolerates_f_failures_and_keeps_latency_bounded() {
    // With N = 5 and f = 2, crashing two replicas leaves exactly a classic
    // quorum: commands still finish through the slow-proposal path.
    let config = CaesarConfig::new(5)
        .with_fast_quorum_timeout(120_000)
        .with_recovery_timeout(Some(1_000_000));
    let mut sim = sim_with(config, 7);
    sim.schedule_crash(0, NodeId(2));
    sim.schedule_crash(0, NodeId(4));
    for i in 0..20u64 {
        let origin = NodeId((i % 3) as u32 * 3 / 3); // nodes 0 and 1 and 3 → map 0,1,0...
        let origin = if origin.index() == 2 { NodeId(3) } else { origin };
        sim.schedule_command(i * 150_000, origin, put(origin.0, i + 1, i % 3));
    }
    sim.run();
    for node in [NodeId(0), NodeId(1), NodeId(3)] {
        assert_eq!(sim.decisions(node).len(), 20, "{node} must execute all 20 commands");
        for d in sim.decisions(node) {
            if d.command.origin() == node {
                assert!(
                    d.latency() < 2_000_000,
                    "{node} latency {}µs exceeds 2s even with 2 crashed nodes",
                    d.latency()
                );
            }
        }
    }
}
