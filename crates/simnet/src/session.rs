//! [`SimSession`]: the simulator behind the runtime-agnostic client session
//! API.
//!
//! A `SimSession` wraps a [`Simulator`], owns one
//! [`consensus_core::StateMachine`] per replica (the `kvstore` reference
//! implementation unless a custom factory is supplied), and implements
//! [`ClusterHandle`] so the same submit/await client code drives the
//! discrete-event simulator, the threaded runtime and the TCP runtime.
//! Submissions are scheduled at the current simulated time;
//! [`consensus_core::session::Ticket::wait`] advances simulated time until
//! the command executes at the submitting replica and then returns the
//! [`Reply`] (including the state-machine output, so reads observe the
//! submitting replica's state).

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use consensus_core::session::{
    ClientHandle, ClusterHandle, Drive, Reply, SessionCore, SessionError, SubmitTransport, Waiter,
    DEFAULT_IN_FLIGHT,
};
use consensus_core::state_machine::{StateMachine, StateMachineFactory};
use consensus_types::{Command, CommandId, Decision, NodeId, SimTime};
use kvstore::KvStore;

use crate::process::Process;
use crate::sim::{SimStats, Simulator};

struct SimInner<P: Process> {
    sim: Simulator<P>,
    machines: Vec<Box<dyn StateMachine>>,
    /// Replies produced at each command's submitting replica, in routing
    /// order. Drained by [`SimSession::take_replies`] (closed-loop drivers).
    replies: Vec<Reply>,
}

struct Shared<P: Process> {
    inner: Mutex<SimInner<P>>,
    core: Arc<SessionCore>,
}

/// A [`Simulator`] wrapped for client sessions. See the module docs.
pub struct SimSession<P: Process> {
    shared: Arc<Shared<P>>,
}

impl<P> Clone for SimSession<P>
where
    P: Process,
{
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<P> SimSession<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    /// Wraps `sim` with the default in-flight bound and the `kvstore`
    /// reference state machine on every replica.
    #[must_use]
    pub fn new(sim: Simulator<P>) -> Self {
        Self::with_capacity(sim, DEFAULT_IN_FLIGHT)
    }

    /// Wraps `sim`, allowing at most `capacity` commands in flight.
    #[must_use]
    pub fn with_capacity(sim: Simulator<P>, capacity: usize) -> Self {
        Self::with_state_machines(sim, capacity, KvStore::factory())
    }

    /// Wraps `sim` with a custom per-replica state machine: `factory` is
    /// called once per node. Replies carry whatever output that machine's
    /// `apply` produces.
    #[must_use]
    pub fn with_state_machines(
        sim: Simulator<P>,
        capacity: usize,
        factory: StateMachineFactory,
    ) -> Self {
        let nodes = sim.node_count();
        Self {
            shared: Arc::new(Shared {
                inner: Mutex::new(SimInner {
                    sim,
                    machines: (0..nodes).map(|i| factory(NodeId::from_index(i))).collect(),
                    replies: Vec::new(),
                }),
                core: SessionCore::new(capacity),
            }),
        }
    }

    /// The session's waiter table (shared with every [`ClientHandle`]).
    #[must_use]
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.shared.core
    }

    fn lock(&self) -> MutexGuard<'_, SimInner<P>> {
        self.shared.inner.lock().expect("simulation lock")
    }

    /// Runs one simulation event and routes any executions it produced;
    /// returns the event's simulated time, or `None` when the queue drained.
    pub fn step(&self) -> Option<SimTime> {
        let mut inner = self.lock();
        let at = inner.sim.step();
        route(&mut inner, &self.shared.core);
        at
    }

    /// Runs until the event queue is empty (all submitted work finished).
    pub fn run(&self) -> SimStats {
        let mut inner = self.lock();
        let stats = inner.sim.run();
        route(&mut inner, &self.shared.core);
        stats
    }

    /// Runs until simulated time reaches `until` (or the queue drains).
    pub fn run_until(&self, until: SimTime) -> SimStats {
        let mut inner = self.lock();
        let stats = inner.sim.run_until(until);
        route(&mut inner, &self.shared.core);
        stats
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.lock().sim.now()
    }

    /// Whether `node` has crashed.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.lock().sim.is_crashed(node)
    }

    /// Drains the replies routed at submitting replicas since the last call
    /// (in routing order). Closed-loop drivers use this instead of holding
    /// one ticket per in-flight command.
    #[must_use]
    pub fn take_replies(&self) -> Vec<Reply> {
        std::mem::take(&mut self.lock().replies)
    }

    /// The decisions executed at `node` so far, in execution order.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> Vec<Decision> {
        self.lock().sim.decisions(node).to_vec()
    }

    /// The state-machine digest of `node` (see
    /// [`consensus_core::StateMachine::fingerprint`]); replicas that applied
    /// the same command history report equal fingerprints.
    #[must_use]
    pub fn state_fingerprint(&self, node: NodeId) -> u64 {
        self.lock().machines[node.index()].fingerprint()
    }

    /// Number of commands `node`'s state machine has applied so far.
    #[must_use]
    pub fn applied_through(&self, node: NodeId) -> u64 {
        self.lock().machines[node.index()].applied_through()
    }

    /// A serialized snapshot of `node`'s state machine (see
    /// [`consensus_core::StateMachine::snapshot`]).
    #[must_use]
    pub fn state_snapshot(&self, node: NodeId) -> Vec<u8> {
        self.lock().machines[node.index()].snapshot()
    }

    /// Runs `f` against the wrapped simulator (metrics inspection, crash
    /// scheduling, raw command injection).
    pub fn with_sim<R>(&self, f: impl FnOnce(&mut Simulator<P>) -> R) -> R {
        f(&mut self.lock().sim)
    }
}

/// Applies every pending execution to the per-replica stores and completes
/// session waiters for commands executing at their submitting replica.
/// Batched units unpack here: the state machine applies each inner command
/// and every waiter gets its own reply carrying that command's output.
fn route<P: Process>(inner: &mut SimInner<P>, core: &SessionCore) {
    for index in 0..inner.sim.node_count() {
        let node = NodeId::from_index(index);
        for execution in inner.sim.take_executions(node) {
            for leaf in execution.command.leaves() {
                let output = inner.machines[index].apply(leaf);
                if leaf.id().origin() == node {
                    let mut decision = execution.decision.clone();
                    decision.command = leaf.id();
                    let reply = Reply { command: leaf.id(), node, output, decision };
                    core.complete(reply.clone());
                    inner.replies.push(reply);
                }
            }
        }
    }
}

struct SimTransport<P: Process> {
    shared: Arc<Shared<P>>,
}

impl<P> SubmitTransport for SimTransport<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    fn submit(&self, node: NodeId, cmd: Command, delay_us: u64) -> Result<(), SessionError> {
        let mut inner = self.shared.inner.lock().expect("simulation lock");
        if inner.sim.is_crashed(node) {
            return Err(SessionError::Disconnected(format!("replica {node} has crashed")));
        }
        let at = inner.sim.now() + delay_us;
        inner.sim.schedule_command(at, node, cmd);
        Ok(())
    }
}

struct SimDrive<P: Process> {
    shared: Arc<Shared<P>>,
}

impl<P> Drive for SimDrive<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    fn drive(&self, command: CommandId, waiter: &Waiter, slice: Duration) {
        // Honour the wall-clock slice so `Ticket::wait_timeout` can expire:
        // a command stuck forever (e.g. quorum lost while recovery timers
        // keep re-arming) would otherwise spin here holding the simulation
        // lock and make `SessionError::Timeout` unreachable.
        let deadline = std::time::Instant::now() + slice;
        let mut inner = self.shared.inner.lock().expect("simulation lock");
        loop {
            if waiter.is_resolved() {
                return;
            }
            if inner.sim.step().is_none() {
                drop(inner);
                self.shared.core.fail(
                    command,
                    SessionError::Disconnected(
                        "simulation event queue drained before the reply".to_string(),
                    ),
                );
                return;
            }
            route(&mut inner, &self.shared.core);
            if std::time::Instant::now() >= deadline {
                return;
            }
        }
    }
}

impl<P> ClusterHandle for SimSession<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    fn nodes(&self) -> usize {
        self.lock().sim.node_count()
    }

    fn client(&self, node: NodeId) -> ClientHandle {
        ClientHandle::new(
            node,
            Arc::clone(&self.shared.core),
            Arc::new(SimTransport { shared: Arc::clone(&self.shared) }),
            Arc::new(SimDrive { shared: Arc::clone(&self.shared) }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyMatrix;
    use crate::process::Context;
    use crate::sim::SimConfig;
    use consensus_core::session::Op;
    use consensus_types::{DecisionPath, LatencyBreakdown, Timestamp};

    /// Echo "protocol": executes every command locally as soon as the
    /// loopback broadcast returns to the proposer, then tells the others.
    #[derive(Debug, Default)]
    struct Echo;

    #[derive(Debug, Clone)]
    enum EchoMsg {
        Execute(Command, SimTime),
    }

    impl Process for Echo {
        type Message = EchoMsg;

        fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, EchoMsg>) {
            ctx.broadcast(EchoMsg::Execute(cmd, ctx.now()));
        }

        fn on_message(&mut self, _: NodeId, msg: EchoMsg, ctx: &mut Context<'_, EchoMsg>) {
            let EchoMsg::Execute(cmd, proposed_at) = msg;
            let decision = Decision {
                command: cmd.id(),
                timestamp: Timestamp::ZERO,
                path: DecisionPath::Ordered,
                proposed_at,
                executed_at: ctx.now(),
                breakdown: LatencyBreakdown::default(),
            };
            ctx.deliver(cmd, decision);
        }
    }

    fn session() -> SimSession<Echo> {
        let config = SimConfig::new(LatencyMatrix::uniform(3, 10.0));
        SimSession::new(Simulator::new(config, |_| Echo))
    }

    #[test]
    fn ticket_wait_advances_simulated_time_to_the_reply() {
        let session = session();
        let client = session.client(NodeId(0));
        let ticket = client.submit(Op::put(7, 41)).expect("submits");
        let reply = ticket.wait().expect("replies");
        assert_eq!(reply.node, NodeId(0));
        assert_eq!(reply.output, None, "first write of the key");
        assert!(session.now() > 0, "the loopback latency must have elapsed");
        // Read-your-writes at the submitting replica.
        let read = client.submit(Op::get(7)).expect("submits").wait().expect("replies");
        assert_eq!(read.output, Some(41));
    }

    #[test]
    fn replies_resolve_to_an_error_when_the_simulation_drains() {
        let session = session();
        session.with_sim(|sim| sim.schedule_crash(0, NodeId(1)));
        let ticket = session.client(NodeId(1)).submit(Op::put(1, 1));
        // The submission may be refused up front (crash already processed) or
        // fail once the queue drains — either way, no hang.
        match ticket {
            Err(SessionError::Disconnected(_)) => {}
            Ok(ticket) => match ticket.wait_timeout(Duration::from_secs(5)) {
                Err(SessionError::Disconnected(_)) => {}
                other => panic!("expected disconnect, got {other:?}"),
            },
            Err(other) => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn stores_stay_identical_across_replicas() {
        let session = session();
        let client = session.client(NodeId(2));
        for i in 0..5 {
            client.submit(Op::put(i, i * 10)).expect("submits").wait().expect("replies");
        }
        session.run();
        let reference = session.state_fingerprint(NodeId(0));
        for node in NodeId::all(3) {
            assert_eq!(session.state_fingerprint(node), reference);
            assert_eq!(session.applied_through(node), 5);
        }
    }

    #[test]
    fn custom_state_machines_plug_into_the_session() {
        use consensus_core::state_machine::EventLog;
        let config = SimConfig::new(LatencyMatrix::uniform(3, 10.0));
        let session = SimSession::with_state_machines(
            Simulator::new(config, |_| Echo),
            DEFAULT_IN_FLIGHT,
            Arc::new(|_| Box::new(EventLog::new())),
        );
        let client = session.client(NodeId(0));
        // The event log answers every command with its 1-based log position,
        // not the key-value semantics — proof the runtime is generic.
        for expected in 1..=3u64 {
            let reply = client.submit(Op::put(7, expected)).expect("submits").wait().expect("ok");
            assert_eq!(reply.output, Some(expected));
        }
        assert_eq!(session.applied_through(NodeId(0)), 3);
    }
}
