//! WAN latency matrices.

use consensus_types::{NodeId, SimTime, MICROS_PER_MILLI};

/// The five Amazon EC2 regions used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeoSite {
    /// us-east-1 (Virginia).
    Virginia,
    /// us-east-2 (Ohio).
    Ohio,
    /// eu-central-1 (Frankfurt).
    Frankfurt,
    /// eu-west-1 (Ireland).
    Ireland,
    /// ap-south-1 (Mumbai).
    Mumbai,
}

impl GeoSite {
    /// The five sites in the order the paper's figures use
    /// (Virginia, Ohio, Frankfurt, Ireland, Mumbai).
    pub const ALL: [GeoSite; 5] =
        [GeoSite::Virginia, GeoSite::Ohio, GeoSite::Frankfurt, GeoSite::Ireland, GeoSite::Mumbai];

    /// Short label used when printing tables (VA, OH, DE, IE, IN).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GeoSite::Virginia => "VA",
            GeoSite::Ohio => "OH",
            GeoSite::Frankfurt => "DE",
            GeoSite::Ireland => "IE",
            GeoSite::Mumbai => "IN",
        }
    }

    /// The node id the harness assigns to this site.
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            GeoSite::Virginia => NodeId(0),
            GeoSite::Ohio => NodeId(1),
            GeoSite::Frankfurt => NodeId(2),
            GeoSite::Ireland => NodeId(3),
            GeoSite::Mumbai => NodeId(4),
        }
    }
}

/// One-way message latencies between every pair of nodes, in microseconds.
///
/// The matrix is symmetric by construction when built through
/// [`LatencyMatrix::set_rtt_ms`], but asymmetric matrices can be expressed via
/// [`LatencyMatrix::set_one_way_ms`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyMatrix {
    nodes: usize,
    /// `one_way[src][dst]` in microseconds.
    one_way: Vec<Vec<SimTime>>,
    /// Delay for a node delivering a message to itself (loopback).
    local: SimTime,
}

impl LatencyMatrix {
    /// Latency applied to self-delivery (a broadcast includes the sender).
    pub const DEFAULT_LOCAL_US: SimTime = 50;

    /// Creates a matrix for `nodes` replicas with all remote latencies set to
    /// zero; use the setters to fill it in.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self { nodes, one_way: vec![vec![0; nodes]; nodes], local: Self::DEFAULT_LOCAL_US }
    }

    /// A matrix where every pair of distinct nodes has the same round-trip
    /// time of `rtt_ms` milliseconds.
    #[must_use]
    pub fn uniform(nodes: usize, rtt_ms: f64) -> Self {
        let mut m = Self::new(nodes);
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b {
                    m.one_way[a][b] = ms_to_us(rtt_ms / 2.0);
                }
            }
        }
        m
    }

    /// The five-site EC2 deployment of the paper (Virginia, Ohio, Frankfurt,
    /// Ireland, Mumbai), seeded from the round-trip times reported in
    /// Section VI: all EU/US pairs below 100 ms and Mumbai at 186 ms (VA),
    /// 301 ms (OH), 112 ms (DE) and 122 ms (IE).
    #[must_use]
    pub fn ec2_five_sites() -> Self {
        let mut m = Self::new(5);
        let va = GeoSite::Virginia.node();
        let oh = GeoSite::Ohio.node();
        let de = GeoSite::Frankfurt.node();
        let ie = GeoSite::Ireland.node();
        let india = GeoSite::Mumbai.node();

        m.set_rtt_ms(va, oh, 12.0);
        m.set_rtt_ms(va, de, 90.0);
        m.set_rtt_ms(va, ie, 75.0);
        m.set_rtt_ms(va, india, 186.0);
        m.set_rtt_ms(oh, de, 98.0);
        m.set_rtt_ms(oh, ie, 86.0);
        m.set_rtt_ms(oh, india, 301.0);
        m.set_rtt_ms(de, ie, 25.0);
        m.set_rtt_ms(de, india, 112.0);
        m.set_rtt_ms(ie, india, 122.0);
        m
    }

    /// Number of nodes the matrix describes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Sets the round-trip time between `a` and `b` (both directions get
    /// `rtt_ms / 2` one-way latency).
    pub fn set_rtt_ms(&mut self, a: NodeId, b: NodeId, rtt_ms: f64) -> &mut Self {
        let half = ms_to_us(rtt_ms / 2.0);
        self.one_way[a.index()][b.index()] = half;
        self.one_way[b.index()][a.index()] = half;
        self
    }

    /// Sets the one-way latency from `src` to `dst` only.
    pub fn set_one_way_ms(&mut self, src: NodeId, dst: NodeId, ms: f64) -> &mut Self {
        self.one_way[src.index()][dst.index()] = ms_to_us(ms);
        self
    }

    /// Sets the loopback (self-delivery) latency in microseconds.
    pub fn set_local_us(&mut self, us: SimTime) -> &mut Self {
        self.local = us;
        self
    }

    /// One-way latency from `src` to `dst` in microseconds.
    #[must_use]
    pub fn one_way(&self, src: NodeId, dst: NodeId) -> SimTime {
        if src == dst {
            self.local
        } else {
            self.one_way[src.index()][dst.index()]
        }
    }

    /// Round-trip time between `a` and `b` in milliseconds (for reporting).
    #[must_use]
    pub fn rtt_ms(&self, a: NodeId, b: NodeId) -> f64 {
        (self.one_way(a, b) + self.one_way(b, a)) as f64 / MICROS_PER_MILLI as f64
    }

    /// For node `src`, the one-way latency to its `k`-th closest peer
    /// (including itself at position 0). Used by the harness to reason about
    /// expected quorum latencies.
    #[must_use]
    pub fn kth_closest(&self, src: NodeId, k: usize) -> SimTime {
        let mut lat: Vec<SimTime> =
            (0..self.nodes).map(|d| self.one_way(src, NodeId::from_index(d))).collect();
        lat.sort_unstable();
        lat[k.min(self.nodes - 1)]
    }
}

fn ms_to_us(ms: f64) -> SimTime {
    (ms * MICROS_PER_MILLI as f64).round() as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix_is_symmetric() {
        let m = LatencyMatrix::uniform(4, 20.0);
        for a in 0..4 {
            for b in 0..4 {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(m.one_way(a, b), m.one_way(b, a));
                if a != b {
                    assert_eq!(m.one_way(a, b), 10_000);
                }
            }
        }
    }

    #[test]
    fn self_latency_is_local() {
        let m = LatencyMatrix::uniform(3, 20.0);
        assert_eq!(m.one_way(NodeId(1), NodeId(1)), LatencyMatrix::DEFAULT_LOCAL_US);
    }

    #[test]
    fn ec2_matrix_matches_paper_rtts() {
        let m = LatencyMatrix::ec2_five_sites();
        let va = GeoSite::Virginia.node();
        let oh = GeoSite::Ohio.node();
        let de = GeoSite::Frankfurt.node();
        let ie = GeoSite::Ireland.node();
        let india = GeoSite::Mumbai.node();

        assert!((m.rtt_ms(va, india) - 186.0).abs() < 1e-9);
        assert!((m.rtt_ms(oh, india) - 301.0).abs() < 1e-9);
        assert!((m.rtt_ms(de, india) - 112.0).abs() < 1e-9);
        assert!((m.rtt_ms(ie, india) - 122.0).abs() < 1e-9);
        // All EU/US pairs are below 100 ms, as stated in Section VI.
        for &a in &[va, oh, de, ie] {
            for &b in &[va, oh, de, ie] {
                if a != b {
                    assert!(m.rtt_ms(a, b) < 100.0, "{a}-{b} must be < 100ms");
                }
            }
        }
    }

    #[test]
    fn kth_closest_sorts_latencies() {
        let m = LatencyMatrix::ec2_five_sites();
        let ie = GeoSite::Ireland.node();
        assert_eq!(m.kth_closest(ie, 0), LatencyMatrix::DEFAULT_LOCAL_US);
        // Ireland's closest remote peer is Frankfurt (12.5 ms one-way).
        assert_eq!(m.kth_closest(ie, 1), 12_500);
    }

    #[test]
    fn one_way_override_is_asymmetric() {
        let mut m = LatencyMatrix::new(2);
        m.set_one_way_ms(NodeId(0), NodeId(1), 30.0);
        assert_eq!(m.one_way(NodeId(0), NodeId(1)), 30_000);
        assert_eq!(m.one_way(NodeId(1), NodeId(0)), 0);
    }
}
