//! Deterministic discrete-event network simulator for geo-replicated
//! consensus protocols.
//!
//! The paper evaluates CAESAR on five Amazon EC2 sites (Virginia, Ohio,
//! Frankfurt, Ireland, Mumbai). This crate replaces that testbed with a
//! reproducible substrate:
//!
//! * a [`LatencyMatrix`] seeded from the round-trip times reported in
//!   Section VI of the paper (see [`LatencyMatrix::ec2_five_sites`]),
//! * an event-driven [`Simulator`] that delivers messages after the
//!   configured one-way delay (plus optional jitter), fires self-scheduled
//!   timeouts, models per-node CPU occupancy so that throughput saturates as
//!   client load grows, and injects crash faults,
//! * the [`Process`] trait that every protocol crate implements
//!   (CAESAR, EPaxos, Multi-Paxos, Mencius, M²Paxos).
//!
//! All randomness comes from a caller-provided seed, so every experiment in
//! the harness is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, Decision, NodeId};
//! use simnet::{Context, LatencyMatrix, Process, SimConfig, Simulator};
//!
//! /// A toy protocol: every node immediately "executes" the commands it is given.
//! struct Echo {
//!     decided: Vec<Decision>,
//! }
//!
//! impl Process for Echo {
//!     type Message = ();
//!     fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, ()>) {
//!         self.decided.push(Decision {
//!             command: cmd.id(),
//!             timestamp: Default::default(),
//!             path: consensus_types::DecisionPath::Ordered,
//!             proposed_at: ctx.now(),
//!             executed_at: ctx.now(),
//!             breakdown: Default::default(),
//!         });
//!     }
//!     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<'_, ()>) {}
//!     fn drain_decisions(&mut self) -> Vec<Decision> {
//!         std::mem::take(&mut self.decided)
//!     }
//! }
//!
//! let config = SimConfig::new(LatencyMatrix::uniform(3, 10.0));
//! let mut sim = Simulator::new(config, |_id| Echo { decided: Vec::new() });
//! sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 1, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod latency;
mod process;
mod sim;

pub use latency::{GeoSite, LatencyMatrix};
pub use process::{Context, Process};
pub use sim::{SimConfig, SimStats, Simulator};
