//! Deterministic discrete-event network simulator for geo-replicated
//! consensus protocols.
//!
//! The paper evaluates CAESAR on five Amazon EC2 sites (Virginia, Ohio,
//! Frankfurt, Ireland, Mumbai). This crate replaces that testbed with a
//! reproducible substrate:
//!
//! * a [`LatencyMatrix`] seeded from the round-trip times reported in
//!   Section VI of the paper (see [`LatencyMatrix::ec2_five_sites`]),
//! * an event-driven [`Simulator`] that delivers messages after the
//!   configured one-way delay (plus optional jitter), fires self-scheduled
//!   timeouts, models per-node CPU occupancy so that throughput saturates as
//!   client load grows, and injects crash faults,
//! * the [`Process`] trait that every protocol crate implements
//!   (CAESAR, EPaxos, Multi-Paxos, Mencius, M²Paxos); executed commands are
//!   pushed through [`Context::deliver`],
//! * [`SimSession`], which exposes the simulator through the
//!   runtime-agnostic submit/await client API of `consensus_core::session`.
//!
//! All randomness comes from a caller-provided seed, so every experiment in
//! the harness is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, Decision, NodeId};
//! use simnet::{Context, LatencyMatrix, Process, SimConfig, SimSession, Simulator};
//! use consensus_core::session::{ClusterHandle, Op};
//!
//! /// A toy protocol: every node immediately "executes" the commands it is given.
//! struct Echo;
//!
//! impl Process for Echo {
//!     type Message = ();
//!     fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, ()>) {
//!         let decision = Decision {
//!             command: cmd.id(),
//!             timestamp: Default::default(),
//!             path: consensus_types::DecisionPath::Ordered,
//!             proposed_at: ctx.now(),
//!             executed_at: ctx.now(),
//!             breakdown: Default::default(),
//!         };
//!         ctx.deliver(cmd, decision);
//!     }
//!     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<'_, ()>) {}
//! }
//!
//! let config = SimConfig::new(LatencyMatrix::uniform(3, 10.0));
//! let session = SimSession::new(Simulator::new(config, |_id| Echo));
//! let client = session.client(NodeId(0));
//! let reply = client.submit(Op::put(1, 9)).unwrap().wait().unwrap();
//! assert_eq!(reply.node, NodeId(0));
//! assert_eq!(session.decisions(NodeId(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod latency;
mod process;
mod session;
mod sim;

pub use latency::{GeoSite, LatencyMatrix};
pub use process::{Context, Process};
pub use session::SimSession;
pub use sim::{SimConfig, SimStats, Simulator};
