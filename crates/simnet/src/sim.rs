//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use consensus_core::batch::{BatchConfig, Batcher};
use consensus_types::{Command, Decision, Execution, NodeId, SimTime};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use telemetry::{Counter, Gauge, Registry, SpanEvent, TracePhase};

use crate::latency::LatencyMatrix;
use crate::process::{Context, Process};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// One-way latencies between replicas.
    pub latency: LatencyMatrix,
    /// Maximum uniformly distributed jitter added to every message delivery,
    /// in microseconds (0 disables jitter).
    pub jitter_us: SimTime,
    /// Whether each (src, dst) link delivers messages in FIFO order, as a TCP
    /// connection would. When disabled messages may reorder under jitter.
    pub fifo_links: bool,
    /// Seed for the simulation's random number generator (jitter).
    pub seed: u64,
    /// Hard stop: events scheduled after this time are discarded and `run`
    /// returns. `None` runs until the event queue drains.
    pub horizon: Option<SimTime>,
    /// Proposer batching: client commands queued for the same replica at
    /// the same instant coalesce into one consensus unit. **Disabled by
    /// default** (`max_batch = 1`) so protocol-level tests observe one
    /// instance per command; the session layer and cross-runtime tests opt
    /// in via [`SimConfig::with_batch`].
    pub batch: BatchConfig,
}

impl SimConfig {
    /// Creates a configuration with the given latency matrix, no jitter,
    /// FIFO links, a fixed default seed and batching disabled.
    #[must_use]
    pub fn new(latency: LatencyMatrix) -> Self {
        Self {
            latency,
            jitter_us: 0,
            fifo_links: true,
            seed: 0xCAE5A7,
            horizon: None,
            batch: BatchConfig::disabled(),
        }
    }

    /// Enables proposer batching with the given maximum batch size.
    #[must_use]
    pub fn with_batch(mut self, max_batch: usize) -> Self {
        self.batch = BatchConfig { max_batch: max_batch.max(1), ..BatchConfig::default() };
        self
    }

    /// Sets the per-message jitter bound in microseconds.
    #[must_use]
    pub fn with_jitter_us(mut self, jitter: SimTime) -> Self {
        self.jitter_us = jitter;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulation horizon (microseconds).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Disables FIFO ordering on links.
    #[must_use]
    pub fn with_reordering(mut self) -> Self {
        self.fifo_links = false;
        self
    }
}

/// A point-in-time copy of the simulator's run counters.
///
/// The live values are [`telemetry::Registry`] metrics under `sim.*` (see
/// [`Simulator::registry`]); this struct is the plain snapshot
/// [`Simulator::stats`] builds from them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total number of protocol messages delivered (excluding self-timers).
    pub messages_delivered: u64,
    /// Total number of self-scheduled timer events fired.
    pub timers_fired: u64,
    /// Total number of client commands injected.
    pub commands_injected: u64,
    /// Number of messages dropped because the destination had crashed.
    pub messages_dropped: u64,
    /// Simulated time of the last processed event.
    pub end_time: SimTime,
}

/// The simulator's registry handles behind [`SimStats`].
#[derive(Debug)]
struct SimCounters {
    messages_delivered: Counter,
    timers_fired: Counter,
    commands_injected: Counter,
    messages_dropped: Counter,
    end_time: Gauge,
    batches_assembled: Counter,
    batched_commands: Counter,
}

impl SimCounters {
    fn register(registry: &Registry) -> Self {
        Self {
            messages_delivered: registry.counter("sim.messages_delivered"),
            timers_fired: registry.counter("sim.timers_fired"),
            commands_injected: registry.counter("sim.commands_injected"),
            messages_dropped: registry.counter("sim.messages_dropped"),
            end_time: registry.gauge("sim.end_time_us"),
            batches_assembled: registry.counter("batch.assembled"),
            batched_commands: registry.counter("batch.commands"),
        }
    }

    fn snapshot(&self) -> SimStats {
        SimStats {
            messages_delivered: self.messages_delivered.get(),
            timers_fired: self.timers_fired.get(),
            commands_injected: self.commands_injected.get(),
            messages_dropped: self.messages_dropped.get(),
            end_time: self.end_time.get(),
        }
    }
}

enum Payload<M> {
    Message { from: NodeId, msg: M },
    Timer { msg: M },
    Client { cmd: Command },
    Crash,
    Recover,
}

struct Event<M> {
    node: NodeId,
    payload: Payload<M>,
}

/// The discrete-event simulator.
///
/// Owns one [`Process`] per replica, an event queue, and the fault state.
/// See the crate-level documentation for an end-to-end example.
pub struct Simulator<P: Process> {
    config: SimConfig,
    nodes: Vec<P>,
    crashed: Vec<bool>,
    /// CPU availability time per node, used to model processing costs.
    busy_until: Vec<SimTime>,
    /// Last delivery time per (src, dst) link, for FIFO enforcement.
    link_clock: Vec<Vec<SimTime>>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Option<Event<P::Message>>>,
    seq: u64,
    now: SimTime,
    rng: ChaCha12Rng,
    decisions: Vec<Vec<Decision>>,
    /// Executions (command payload + decision) not yet drained by a session
    /// router via [`Simulator::take_executions`].
    executions: Vec<Vec<Execution>>,
    registry: Arc<Registry>,
    stats: SimCounters,
    started: bool,
    /// Per-node proposer batchers (only consulted when `config.batch`
    /// enables batching).
    batchers: Vec<Batcher>,
}

impl<P: Process> Simulator<P> {
    /// Creates a simulator with one replica per node in the latency matrix,
    /// built by the `make` closure.
    pub fn new(config: SimConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        let n = config.latency.nodes();
        let rng = ChaCha12Rng::seed_from_u64(config.seed);
        let registry = Arc::new(Registry::new());
        let stats = SimCounters::register(&registry);
        Self {
            nodes: (0..n).map(|i| make(NodeId::from_index(i))).collect(),
            crashed: vec![false; n],
            busy_until: vec![0; n],
            link_clock: vec![vec![0; n]; n],
            queue: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: 0,
            rng,
            decisions: vec![Vec::new(); n],
            executions: vec![Vec::new(); n],
            registry,
            stats,
            config,
            started: false,
            batchers: (0..n).map(|i| Batcher::new(NodeId::from_index(i))).collect(),
        }
    }

    /// Number of replicas.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a replica (for inspecting protocol state in tests).
    #[must_use]
    pub fn process(&self, node: NodeId) -> &P {
        &self.nodes[node.index()]
    }

    /// Mutable access to a replica.
    pub fn process_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.index()]
    }

    /// Whether `node` has crashed.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Statistics about the run so far, snapshotted from the registry.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats.snapshot()
    }

    /// The simulator's own telemetry registry (`sim.*` metrics). Each
    /// replica's protocol metrics live in its own registry, reachable
    /// through [`Process::telemetry`] on [`Simulator::process`].
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The decisions (executed commands) recorded so far at `node`, in
    /// execution order.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> &[Decision] {
        &self.decisions[node.index()]
    }

    /// Removes and returns the decisions recorded so far at `node`. Useful
    /// for closed-loop client drivers that react to completions.
    pub fn take_decisions(&mut self, node: NodeId) -> Vec<Decision> {
        std::mem::take(&mut self.decisions[node.index()])
    }

    /// Removes and returns the executions (command payload + decision)
    /// delivered at `node` since the last call. The session layer drains
    /// this after every step to apply state-machine effects and answer
    /// waiting clients; [`Simulator::decisions`] is unaffected.
    pub fn take_executions(&mut self, node: NodeId) -> Vec<Execution> {
        std::mem::take(&mut self.executions[node.index()])
    }

    /// Schedules a client command to be proposed at `node` at simulated time
    /// `at` (microseconds).
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: Command) {
        self.push(at, Event { node, payload: Payload::Client { cmd } });
    }

    /// Schedules a crash of `node` at time `at`. A crashed node stops
    /// processing and emitting messages; in-flight messages to it are dropped.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, Event { node, payload: Payload::Crash });
    }

    /// Schedules a recovery (restart with retained state) of `node` at `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.push(at, Event { node, payload: Payload::Recover });
    }

    fn push(&mut self, at: SimTime, event: Event<P::Message>) {
        let idx = self.events.len();
        self.events.push(Some(event));
        self.queue.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    fn dispatch_start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            let mut executions = Vec::new();
            let mut spans = Vec::new();
            {
                let mut ctx = Context {
                    me: node,
                    nodes: self.nodes.len(),
                    now: 0,
                    outbox: &mut outbox,
                    timers: &mut timers,
                    executions: &mut executions,
                    spans: Some(&mut spans),
                };
                self.nodes[i].on_start(&mut ctx);
            }
            self.commit_spans(node, 0, &mut spans, &executions);
            self.record_executions(node, executions);
            self.flush_actions(node, 0, outbox, timers);
        }
    }

    /// Commits a callback's span buffer — plus one `Execute` span per
    /// delivered command — into the replica's registry ring, if it has one.
    /// Simulated time is cluster-global, so no clock normalization applies.
    fn commit_spans(
        &self,
        node: NodeId,
        at: SimTime,
        spans: &mut Vec<SpanEvent>,
        executions: &[Execution],
    ) {
        let Some(registry) = self.nodes[node.index()].telemetry() else {
            spans.clear();
            return;
        };
        for execution in executions {
            spans.push(SpanEvent {
                command: execution.command.id(),
                phase: TracePhase::Execute,
                at,
                node,
            });
        }
        registry.record_spans(spans);
    }

    fn record_executions(&mut self, node: NodeId, executions: Vec<Execution>) {
        for execution in executions {
            self.decisions[node.index()].push(execution.decision.clone());
            self.executions[node.index()].push(execution);
        }
    }

    /// Runs a single event; returns the time of the processed event, or
    /// `None` when the queue is empty or the horizon has been reached.
    pub fn step(&mut self) -> Option<SimTime> {
        self.dispatch_start();
        loop {
            let Reverse((at, _, idx)) = self.queue.pop()?;
            if let Some(h) = self.config.horizon {
                if at > h {
                    self.queue.clear();
                    return None;
                }
            }
            let event = self.events[idx].take().expect("event consumed twice");
            let node_idx = event.node.index();

            // Crash/recover events are handled immediately regardless of CPU
            // occupancy.
            match &event.payload {
                Payload::Crash => {
                    self.now = at;
                    self.crashed[node_idx] = true;
                    self.stats.end_time.set(at);
                    return Some(at);
                }
                Payload::Recover => {
                    self.now = at;
                    self.crashed[node_idx] = false;
                    self.stats.end_time.set(at);
                    return Some(at);
                }
                _ => {}
            }

            if self.crashed[node_idx] {
                self.stats.messages_dropped.inc();
                continue;
            }

            // Model CPU occupancy: if the node is still busy processing a
            // previous event, push this one back to when it frees up.
            if at < self.busy_until[node_idx] {
                let resume = self.busy_until[node_idx];
                self.events[idx] = Some(event);
                self.queue.push(Reverse((resume, self.seq, idx)));
                self.seq += 1;
                continue;
            }

            self.now = at;
            self.stats.end_time.set(at);

            // Proposer batching: a client command picked up while more
            // client commands are queued for the same replica at the same
            // instant coalesces them into one consensus unit. Only exact
            // co-queued commands join (the drain never skips an event), so
            // simulation determinism is untouched.
            let payload = match event.payload {
                Payload::Client { cmd } if self.config.batch.enabled() => {
                    let mut queued = vec![cmd];
                    while queued.len() < self.config.batch.max_batch {
                        let Some(&Reverse((next_at, _, next_idx))) = self.queue.peek() else {
                            break;
                        };
                        let co_queued = next_at == at
                            && matches!(
                                self.events[next_idx].as_ref(),
                                Some(Event { node, payload: Payload::Client { .. } })
                                    if *node == event.node
                            );
                        if !co_queued {
                            break;
                        }
                        self.queue.pop();
                        let Some(Event { payload: Payload::Client { cmd }, .. }) =
                            self.events[next_idx].take()
                        else {
                            unreachable!("co-queued client event vanished");
                        };
                        self.stats.commands_injected.inc();
                        queued.push(cmd);
                    }
                    if queued.len() > 1 {
                        self.stats.batches_assembled.inc();
                        self.stats.batched_commands.add(queued.len() as u64);
                    }
                    Payload::Client { cmd: self.batchers[node_idx].coalesce(queued) }
                }
                other => other,
            };

            let cost;
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            let mut executions = Vec::new();
            let mut spans = Vec::new();
            {
                let mut ctx = Context {
                    me: event.node,
                    nodes: self.nodes.len(),
                    now: at,
                    outbox: &mut outbox,
                    timers: &mut timers,
                    executions: &mut executions,
                    spans: Some(&mut spans),
                };
                match payload {
                    Payload::Message { from, msg } => {
                        cost = self.nodes[node_idx].processing_cost(&msg);
                        self.stats.messages_delivered.inc();
                        self.nodes[node_idx].on_message(from, msg, &mut ctx);
                    }
                    Payload::Timer { msg } => {
                        cost = self.nodes[node_idx].processing_cost(&msg);
                        self.stats.timers_fired.inc();
                        self.nodes[node_idx].on_message(event.node, msg, &mut ctx);
                    }
                    Payload::Client { cmd } => {
                        cost = self.nodes[node_idx].client_processing_cost(&cmd);
                        self.stats.commands_injected.inc();
                        for leaf in cmd.leaves() {
                            ctx.trace(TracePhase::Submit, leaf.id());
                        }
                        self.nodes[node_idx].on_client_command(cmd, &mut ctx);
                    }
                    Payload::Crash | Payload::Recover => unreachable!("handled above"),
                }
            }
            self.busy_until[node_idx] = at + cost;
            self.commit_spans(event.node, at, &mut spans, &executions);
            self.record_executions(event.node, executions);
            self.flush_actions(event.node, at, outbox, timers);
            return Some(at);
        }
    }

    fn flush_actions(
        &mut self,
        from: NodeId,
        at: SimTime,
        outbox: Vec<(NodeId, P::Message)>,
        timers: Vec<(SimTime, P::Message)>,
    ) {
        for (to, msg) in outbox {
            if self.crashed[from.index()] {
                break;
            }
            let base = self.config.latency.one_way(from, to);
            let jitter = if self.config.jitter_us > 0 {
                self.rng.gen_range(0..=self.config.jitter_us)
            } else {
                0
            };
            let mut deliver_at = at + base + jitter;
            if self.config.fifo_links {
                let clock = &mut self.link_clock[from.index()][to.index()];
                if deliver_at < *clock {
                    deliver_at = *clock;
                }
                *clock = deliver_at;
            }
            self.push(deliver_at, Event { node: to, payload: Payload::Message { from, msg } });
        }
        for (delay, msg) in timers {
            self.push(at + delay, Event { node: from, payload: Payload::Timer { msg } });
        }
    }

    /// Runs until the event queue is empty or the horizon is reached, and
    /// returns the statistics of the run.
    pub fn run(&mut self) -> SimStats {
        while self.step().is_some() {}
        self.stats.snapshot()
    }

    /// Runs until simulated time reaches `until` (or the queue drains).
    pub fn run_until(&mut self, until: SimTime) -> SimStats {
        self.dispatch_start();
        while let Some(&Reverse((at, _, _))) = self.queue.peek() {
            if at > until {
                break;
            }
            if self.step().is_none() {
                break;
            }
        }
        self.now = self.now.max(until.min(self.config.horizon.unwrap_or(until)));
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::{CommandId, DecisionPath, LatencyBreakdown, Timestamp};

    /// A protocol where node 0 pings every other node and counts replies; any
    /// node "executes" a command as soon as it receives it.
    #[derive(Debug, Default)]
    struct PingPong {
        pings_seen: u32,
        pongs_seen: u32,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Msg {
        Ping,
        Pong,
        Tick,
    }

    impl Process for PingPong {
        type Message = Msg;

        fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, Msg>) {
            ctx.broadcast_others(Msg::Ping);
            ctx.schedule_self(1_000, Msg::Tick);
            let decision = Decision {
                command: cmd.id(),
                timestamp: Timestamp::ZERO,
                path: DecisionPath::Ordered,
                proposed_at: ctx.now(),
                executed_at: ctx.now(),
                breakdown: LatencyBreakdown::default(),
            };
            ctx.deliver(cmd, decision);
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => self.pongs_seen += 1,
                Msg::Tick => {}
            }
        }
    }

    fn cmd(seq: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), seq, 0)
    }

    #[test]
    fn messages_are_delivered_after_one_way_latency() {
        let config = SimConfig::new(LatencyMatrix::uniform(3, 20.0));
        let mut sim = Simulator::new(config, |_| PingPong::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.run();

        // Node 0 broadcast a ping to 1 and 2; both replied.
        assert_eq!(sim.process(NodeId(1)).pings_seen, 1);
        assert_eq!(sim.process(NodeId(2)).pings_seen, 1);
        assert_eq!(sim.process(NodeId(0)).pongs_seen, 2);
        // Ping takes 10 ms, pong takes 10 ms; plus processing costs.
        assert!(sim.stats().end_time >= 20_000);
        assert!(sim.stats().end_time < 25_000);
    }

    #[test]
    fn decisions_are_recorded_per_node() {
        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0));
        let mut sim = Simulator::new(config, |_| PingPong::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.schedule_command(5, NodeId(1), cmd(2));
        sim.run();
        assert_eq!(sim.decisions(NodeId(0)).len(), 1);
        assert_eq!(sim.decisions(NodeId(1)).len(), 1);
        assert_eq!(sim.take_decisions(NodeId(0)).len(), 1);
        assert!(sim.decisions(NodeId(0)).is_empty());
    }

    #[test]
    fn crashed_nodes_drop_incoming_messages() {
        let config = SimConfig::new(LatencyMatrix::uniform(3, 20.0));
        let mut sim = Simulator::new(config, |_| PingPong::default());
        sim.schedule_crash(0, NodeId(2));
        sim.schedule_command(10, NodeId(0), cmd(1));
        sim.run();
        assert_eq!(sim.process(NodeId(2)).pings_seen, 0);
        assert_eq!(sim.process(NodeId(0)).pongs_seen, 1);
        assert!(sim.stats().messages_dropped >= 1);
        assert!(sim.is_crashed(NodeId(2)));
    }

    #[test]
    fn horizon_stops_the_run() {
        let config = SimConfig::new(LatencyMatrix::uniform(2, 50.0)).with_horizon(10_000);
        let mut sim = Simulator::new(config, |_| PingPong::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.run();
        assert!(sim.stats().end_time <= 10_000);
        // The ping (25 ms away) was never delivered.
        assert_eq!(sim.process(NodeId(1)).pings_seen, 0);
    }

    #[test]
    fn fifo_links_preserve_order_under_jitter() {
        #[derive(Debug, Default)]
        struct Recorder {
            seen: Vec<u64>,
        }
        impl Process for Recorder {
            type Message = u64;
            fn on_client_command(&mut self, _: Command, ctx: &mut Context<'_, u64>) {
                for i in 0..50 {
                    ctx.send(NodeId(1), i);
                }
            }
            fn on_message(&mut self, _: NodeId, msg: u64, _: &mut Context<'_, u64>) {
                self.seen.push(msg);
            }
        }

        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0)).with_jitter_us(5_000);
        let mut sim = Simulator::new(config, |_| Recorder::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.run();
        let seen = &sim.process(NodeId(1)).seen;
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "FIFO link must preserve send order");
    }

    #[test]
    fn jitter_is_deterministic_for_a_fixed_seed() {
        let run = |seed: u64| {
            let config = SimConfig::new(LatencyMatrix::uniform(3, 20.0))
                .with_jitter_us(3_000)
                .with_seed(seed);
            let mut sim = Simulator::new(config, |_| PingPong::default());
            sim.schedule_command(0, NodeId(0), cmd(1));
            sim.run().end_time
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn processing_cost_serializes_a_node() {
        #[derive(Debug, Default)]
        struct Slow {
            handled: Vec<SimTime>,
        }
        impl Process for Slow {
            type Message = u8;
            fn on_client_command(&mut self, _: Command, ctx: &mut Context<'_, u8>) {
                for _ in 0..3 {
                    ctx.send(NodeId(1), 0);
                }
            }
            fn on_message(&mut self, _: NodeId, _: u8, ctx: &mut Context<'_, u8>) {
                self.handled.push(ctx.now());
            }
            fn processing_cost(&self, _: &u8) -> SimTime {
                1_000
            }
        }

        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0));
        let mut sim = Simulator::new(config, |_| Slow::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.run();
        let times = &sim.process(NodeId(1)).handled;
        assert_eq!(times.len(), 3);
        assert!(times[1] >= times[0] + 1_000);
        assert!(times[2] >= times[1] + 1_000);
    }

    #[test]
    fn co_queued_client_commands_coalesce_into_one_batch() {
        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0)).with_batch(8);
        let mut sim = Simulator::new(config, |_| PingPong::default());
        for seq in 1..=3 {
            sim.schedule_command(0, NodeId(0), cmd(seq));
        }
        sim.run();

        // One decision for the batch unit, but all three submissions counted.
        assert_eq!(sim.decisions(NodeId(0)).len(), 1);
        assert_eq!(sim.stats().commands_injected, 3);
        let snapshot = sim.registry().snapshot();
        assert_eq!(snapshot.counter("batch.assembled"), 1);
        assert_eq!(snapshot.counter("batch.commands"), 3);
    }

    #[test]
    fn batching_disabled_keeps_commands_separate() {
        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0));
        let mut sim = Simulator::new(config, |_| PingPong::default());
        for seq in 1..=3 {
            sim.schedule_command(0, NodeId(0), cmd(seq));
        }
        sim.run();
        assert_eq!(sim.decisions(NodeId(0)).len(), 3);
        assert_eq!(sim.registry().snapshot().counter("batch.assembled"), 0);
    }

    #[test]
    fn run_until_advances_to_requested_time() {
        let config = SimConfig::new(LatencyMatrix::uniform(2, 10.0));
        let mut sim = Simulator::new(config, |_| PingPong::default());
        sim.schedule_command(0, NodeId(0), cmd(1));
        sim.schedule_command(100_000, NodeId(0), cmd(2));
        sim.run_until(50_000);
        assert_eq!(sim.decisions(NodeId(0)).len(), 1);
        sim.run_until(200_000);
        assert_eq!(sim.decisions(NodeId(0)).len(), 2);
    }
}
