//! The [`Process`] trait implemented by every replica, and the [`Context`]
//! handle it uses to interact with the simulated network.

use std::sync::Arc;

use consensus_types::{
    Command, Decision, Execution, ExecutionCursor, NodeId, SimTime, StateTransfer,
};
use telemetry::{Registry, SpanEvent, TracePhase};

/// Actions a process can take while handling an event. The simulator hands a
/// fresh `Context` to every callback and turns the buffered actions into
/// future events when the callback returns; executed commands pushed through
/// [`Context::deliver`] are routed to the runtime's decision sinks (client
/// sessions, decision streams, state machines).
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) nodes: usize,
    pub(crate) now: SimTime,
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    pub(crate) timers: &'a mut Vec<(SimTime, M)>,
    pub(crate) executions: &'a mut Vec<Execution>,
    /// Scratch buffer for command-lifecycle span events, when the runtime
    /// collects traces. `None` means [`Context::trace`] is a no-op.
    pub(crate) spans: Option<&'a mut Vec<SpanEvent>>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context for an external runtime (the `cluster` and `net`
    /// runtimes use this). The simulator builds its contexts internally, so
    /// most users never call it. Tracing is off; chain
    /// [`Context::with_spans`] to collect span events.
    pub fn for_runtime(
        me: NodeId,
        nodes: usize,
        now: SimTime,
        outbox: &'a mut Vec<(NodeId, M)>,
        timers: &'a mut Vec<(SimTime, M)>,
        executions: &'a mut Vec<Execution>,
    ) -> Self {
        Self { me, nodes, now, outbox, timers, executions, spans: None }
    }

    /// Routes [`Context::trace`] calls into `spans`. The runtime drains the
    /// buffer into the replica's [`telemetry::Registry`] span ring after the
    /// callback returns (normalizing timestamps onto its cluster clock).
    #[must_use]
    pub fn with_spans(mut self, spans: &'a mut Vec<SpanEvent>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// The id of the replica handling the current event.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Total number of replicas in the cluster.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Current simulated time in microseconds.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to`; it will be delivered after the configured one-way
    /// latency (plus jitter).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every replica, **including the sender** (the paper's
    /// leaders broadcast to all `p_j ∈ Π`; the local copy is delivered after
    /// the loopback latency).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.nodes {
            self.outbox.push((NodeId::from_index(i), msg.clone()));
        }
    }

    /// Sends `msg` to every replica except the sender.
    pub fn broadcast_others(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.nodes {
            let to = NodeId::from_index(i);
            if to != self.me {
                self.outbox.push((to, msg.clone()));
            }
        }
    }

    /// Delivers `msg` back to this replica after `delay` microseconds.
    /// Protocols use this for timeouts (fast-quorum timeouts, failure
    /// detection, batching windows).
    pub fn schedule_self(&mut self, delay: SimTime, msg: M) {
        self.timers.push((delay, msg));
    }

    /// Pushes an executed command to the runtime, in execution order.
    ///
    /// Protocols call this at the moment a command runs against the state
    /// machine; the runtime applies the payload to its key-value store,
    /// answers any client session waiting on the command, and records the
    /// decision. This replaces the old poll-based `drain_decisions`.
    pub fn deliver(&mut self, command: Command, decision: Decision) {
        self.executions.push(Execution { command, decision });
    }

    /// Records a command-lifecycle span event at the current time.
    ///
    /// Protocols call this at their consensus milestones (propose, quorum,
    /// commit, retry, recovery); it is a buffered push when the runtime is
    /// tracing and free otherwise.
    pub fn trace(&mut self, phase: TracePhase, command: consensus_types::CommandId) {
        let (me, now) = (self.me, self.now);
        if let Some(spans) = self.spans.as_deref_mut() {
            spans.push(SpanEvent { command, phase, at: now, node: me });
        }
    }
}

/// A replica participating in the simulation.
///
/// Protocol crates implement this trait once per protocol; the runtime owns
/// one value per node and drives it with messages, timers and client
/// commands. Executed commands are pushed through [`Context::deliver`].
pub trait Process {
    /// The protocol's message type. Timer payloads use the same type
    /// (timeouts are modelled as messages a replica schedules to itself).
    type Message: Clone + std::fmt::Debug;

    /// Called once before the simulation starts, at time 0.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when a client submits a command to this replica, making it the
    /// command's leader.
    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, Self::Message>);

    /// Called when a message from `from` is delivered (also used for
    /// self-scheduled timeouts, in which case `from == ctx.me()`).
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// The protocol's execution resume point, captured by the runtime when
    /// it cuts a checkpoint (and again when it donates one): everything a
    /// restarted peer needs to fast-forward its execution gate past the
    /// state the snapshot covers. Dependency-tracked protocols (CAESAR,
    /// EPaxos) keep the default — their applied-id summary is the whole
    /// resume point — while slot-based protocols (Multi-Paxos, Mencius,
    /// M²Paxos) return their slot cursors plus the decided-but-unexecuted
    /// backlog.
    fn execution_cursor(&self) -> ExecutionCursor {
        ExecutionCursor::Ids
    }

    /// Called after the runtime installed a state-machine snapshot (state
    /// transfer into a restarted replica). `transfer.applied` is the
    /// (floor-compacted) set of command ids whose effects the restored
    /// state already covers, and `transfer.cursor` is the donor's
    /// [`Process::execution_cursor`].
    ///
    /// Protocols that gate execution on per-command dependencies (CAESAR's
    /// predecessor sets, EPaxos's dependency graph) must count the covered
    /// ids as executed, or later commands that list them as dependencies
    /// wait forever. Slot-based protocols (Multi-Paxos, Mencius, M²Paxos)
    /// must fast-forward their execution cursor to the transferred one and
    /// install the decided backlog, or they stall at their slot gap
    /// forever. Commands that become deliverable as a result flow through
    /// [`Context::deliver`] like any other execution (the runtime
    /// deduplicates anything the transfer already covered).
    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        let _ = (transfer, ctx);
    }

    /// Simulated CPU cost, in microseconds, of handling `msg`. The simulator
    /// serializes message handling per node using this cost, which is what
    /// makes throughput saturate as offered load grows (Figures 8 and 9).
    fn processing_cost(&self, msg: &Self::Message) -> SimTime {
        let _ = msg;
        5
    }

    /// Simulated CPU cost of handling a client command submission.
    fn client_processing_cost(&self, cmd: &Command) -> SimTime {
        let _ = cmd;
        5
    }

    /// The replica's telemetry registry, if it keeps one.
    ///
    /// Protocols that register their metrics in a [`telemetry::Registry`]
    /// expose it here so the runtime hosting the replica can route span
    /// events into its ring and serve stats scrapes (the `net` runtime's
    /// `StatsRequest`). The default is `None`: an uninstrumented process
    /// still runs everywhere, it just has nothing to report.
    fn telemetry(&self) -> Option<Arc<Registry>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::{CommandId, DecisionPath, LatencyBreakdown, Timestamp};

    #[test]
    fn context_buffers_sends_timers_and_executions() {
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut executions = Vec::new();
        let mut ctx: Context<'_, u32> = Context {
            me: NodeId(1),
            nodes: 3,
            now: 42,
            outbox: &mut outbox,
            timers: &mut timers,
            executions: &mut executions,
            spans: None,
        };

        assert_eq!(ctx.me(), NodeId(1));
        assert_eq!(ctx.nodes(), 3);
        assert_eq!(ctx.now(), 42);

        ctx.send(NodeId(2), 7);
        ctx.broadcast(9);
        ctx.broadcast_others(11);
        ctx.schedule_self(100, 13);
        let cmd = Command::put(CommandId::new(NodeId(1), 1), 7, 1);
        ctx.deliver(
            cmd.clone(),
            Decision {
                command: cmd.id(),
                timestamp: Timestamp::ZERO,
                path: DecisionPath::Ordered,
                proposed_at: 0,
                executed_at: 42,
                breakdown: LatencyBreakdown::default(),
            },
        );

        assert_eq!(outbox.len(), 1 + 3 + 2);
        assert_eq!(outbox[0], (NodeId(2), 7));
        assert!(outbox[1..4].iter().all(|(_, m)| *m == 9));
        assert!(outbox[4..].iter().all(|(to, m)| *m == 11 && *to != NodeId(1)));
        assert_eq!(timers, vec![(100, 13)]);
        assert_eq!(executions.len(), 1);
        assert_eq!(executions[0].command, cmd);
        assert_eq!(executions[0].decision.executed_at, 42);
    }

    #[test]
    fn trace_is_a_noop_without_spans_and_buffers_with_them() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut timers = Vec::new();
        let mut executions = Vec::new();
        let id = CommandId::new(NodeId(1), 9);

        {
            let mut quiet =
                Context::for_runtime(NodeId(1), 3, 42, &mut outbox, &mut timers, &mut executions);
            quiet.trace(TracePhase::Propose, id);
        }

        let mut spans = Vec::new();
        {
            let mut traced =
                Context::for_runtime(NodeId(1), 3, 42, &mut outbox, &mut timers, &mut executions)
                    .with_spans(&mut spans);
            traced.trace(TracePhase::Propose, id);
            traced.trace(TracePhase::Commit, id);
        }
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0],
            SpanEvent { command: id, phase: TracePhase::Propose, at: 42, node: NodeId(1) }
        );
        assert_eq!(spans[1].phase, TracePhase::Commit);
    }
}
