//! Error types shared across the workspace.

use std::fmt;

use crate::{Ballot, CommandId, NodeId};

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ConsensusError>;

/// Errors surfaced by the consensus protocols and their substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusError {
    /// A message referenced a node id outside the cluster.
    UnknownNode(NodeId),
    /// A message carried a ballot older than the one the replica already
    /// promised for the command, so it was ignored.
    StaleBallot {
        /// The command the message was about.
        command: CommandId,
        /// The ballot carried by the message.
        received: Ballot,
        /// The ballot the replica has already promised.
        current: Ballot,
    },
    /// A command id was used twice for different commands.
    DuplicateCommand(CommandId),
    /// The cluster configuration is invalid (e.g. zero nodes, latency matrix
    /// of the wrong dimension).
    InvalidConfiguration(String),
    /// A quorum cannot be formed because too many nodes have crashed.
    QuorumUnavailable {
        /// Nodes required.
        required: usize,
        /// Nodes currently believed alive.
        alive: usize,
    },
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::UnknownNode(node) => write!(f, "unknown node {node}"),
            ConsensusError::StaleBallot { command, received, current } => write!(
                f,
                "stale ballot {received} for command {command}; replica already promised {current}"
            ),
            ConsensusError::DuplicateCommand(id) => {
                write!(f, "command id {id} was proposed twice with different payloads")
            }
            ConsensusError::InvalidConfiguration(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
            ConsensusError::QuorumUnavailable { required, alive } => {
                write!(f, "quorum unavailable: need {required} nodes, only {alive} alive")
            }
        }
    }
}

impl std::error::Error for ConsensusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ConsensusError::UnknownNode(NodeId(9));
        assert_eq!(e.to_string(), "unknown node p9");

        let e = ConsensusError::QuorumUnavailable { required: 3, alive: 2 };
        assert!(e.to_string().contains("need 3"));

        let e = ConsensusError::StaleBallot {
            command: CommandId::new(NodeId(1), 2),
            received: Ballot::initial(NodeId(0)),
            current: Ballot::new(1, NodeId(3)),
        };
        assert!(e.to_string().contains("stale ballot"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConsensusError>();
    }
}
