//! Client commands and the conflict relation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Globally unique identifier of a client command.
///
/// Ids carry the node where the command was first proposed and a per-node
/// sequence number, so they can be generated without coordination.
///
/// # Example
///
/// ```
/// use consensus_types::{CommandId, NodeId};
///
/// let id = CommandId::new(NodeId(1), 42);
/// assert_eq!(id.origin(), NodeId(1));
/// assert_eq!(id.sequence(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CommandId {
    origin: NodeId,
    sequence: u64,
}

impl CommandId {
    /// Creates an id for the `sequence`-th command proposed at `origin`.
    #[must_use]
    pub fn new(origin: NodeId, sequence: u64) -> Self {
        Self { origin, sequence }
    }

    /// The node where the command entered the system.
    #[must_use]
    pub fn origin(self) -> NodeId {
        self.origin
    }

    /// The per-origin sequence number.
    #[must_use]
    pub fn sequence(self) -> u64 {
        self.sequence
    }

    /// Whether this id lives in the proposer-batch lane (see [`BATCH_LANE`]).
    #[must_use]
    pub fn is_batch(self) -> bool {
        self.sequence & BATCH_LANE != 0
    }
}

/// High bit of [`CommandId::sequence`], reserved for proposer batches.
///
/// Client sessions allocate sequences densely from small bases, so the top
/// bit is never set on an individual command's id. A runtime that coalesces
/// queued client commands into one consensus instance (see
/// `consensus_core::batch`) allocates the batch's own id in this lane —
/// `BATCH_LANE | n` for the replica's n-th batch — keeping batch ids disjoint
/// from every client id without coordination.
pub const BATCH_LANE: u64 = 1 << 63;

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.{}", self.origin.0, self.sequence)
    }
}

/// Key used to decide whether two commands conflict.
///
/// The paper's benchmark declares two commands conflicting when they access
/// the same key of the replicated key-value store. A key of `None` denotes a
/// command that conflicts with nothing (e.g. a read-only no-op used for
/// control purposes).
pub type ConflictKey = Option<u64>;

/// The kind of operation a command performs on the replicated state machine.
///
/// The evaluation in the paper issues updates; reads are included so examples
/// can exercise both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Operation {
    /// Update the value of a key (the paper's benchmark operation).
    #[default]
    Put,
    /// Read the value of a key.
    Get,
    /// A command that commutes with every other command.
    Noop,
}

/// A client command submitted to the consensus layer.
///
/// The consensus protocols only look at [`Command::id`] and the conflict
/// relation ([`Command::conflicts_with`]); the payload is opaque to them and
/// only interpreted by the state machine in the `kvstore` crate.
///
/// # Example
///
/// ```
/// use consensus_types::{Command, CommandId, NodeId, Operation};
///
/// let a = Command::new(CommandId::new(NodeId(0), 1), Operation::Put, Some(7), 100);
/// let b = Command::new(CommandId::new(NodeId(1), 1), Operation::Put, Some(7), 100);
/// let c = Command::new(CommandId::new(NodeId(2), 1), Operation::Put, Some(8), 100);
/// assert!(a.conflicts_with(&b));
/// assert!(!a.conflicts_with(&c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    id: CommandId,
    operation: Operation,
    key: ConflictKey,
    /// Payload value written by a `Put`; doubles as the payload size knob used
    /// by the paper (15-byte commands).
    value: u64,
    /// Inner commands of a proposer batch (empty for an ordinary command).
    /// A batch is itself a `Command`-shaped unit: one consensus instance
    /// whose conflict footprint is the union of its inner commands' accesses.
    /// Batches never nest.
    batch: Vec<Command>,
}

impl Command {
    /// Creates a command.
    #[must_use]
    pub fn new(id: CommandId, operation: Operation, key: ConflictKey, value: u64) -> Self {
        Self { id, operation, key, value, batch: Vec::new() }
    }

    /// Convenience constructor for the benchmark's update command.
    #[must_use]
    pub fn put(id: CommandId, key: u64, value: u64) -> Self {
        Self::new(id, Operation::Put, Some(key), value)
    }

    /// Convenience constructor for a command that conflicts with nothing.
    #[must_use]
    pub fn noop(id: CommandId) -> Self {
        Self::new(id, Operation::Noop, None, 0)
    }

    /// Creates a proposer batch: one consensus unit carrying `inner` client
    /// commands. `id` should live in the [`BATCH_LANE`]; the batch's own
    /// `key` is `None` (its conflict footprint is derived from the inner
    /// commands instead).
    ///
    /// # Panics
    ///
    /// Panics if `inner` contains a batch (batches never nest) or is empty.
    #[must_use]
    pub fn batch(id: CommandId, inner: Vec<Command>) -> Self {
        assert!(!inner.is_empty(), "a batch carries at least one command");
        assert!(inner.iter().all(|cmd| !cmd.is_batch()), "batches never nest");
        Self { id, operation: Operation::Noop, key: None, value: 0, batch: inner }
    }

    /// The unique id of this command.
    #[must_use]
    pub fn id(&self) -> CommandId {
        self.id
    }

    /// The operation this command performs.
    #[must_use]
    pub fn operation(&self) -> Operation {
        self.operation
    }

    /// The key this command accesses, if any.
    #[must_use]
    pub fn key(&self) -> ConflictKey {
        self.key
    }

    /// The value written by a `Put`.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Whether this command is a proposer batch (see [`Command::batch`]).
    #[must_use]
    pub fn is_batch(&self) -> bool {
        !self.batch.is_empty()
    }

    /// The inner commands of a batch (empty for an ordinary command).
    #[must_use]
    pub fn inner(&self) -> &[Command] {
        &self.batch
    }

    /// The individual client commands this unit carries: the inner commands
    /// of a batch, or the command itself. Runtimes apply/reply/deduplicate
    /// per leaf; protocols order the unit.
    #[must_use]
    pub fn leaves(&self) -> &[Command] {
        if self.batch.is_empty() {
            std::slice::from_ref(self)
        } else {
            &self.batch
        }
    }

    /// The unit's conflict footprint: every `(key, writes)` access its
    /// leaves perform. Keyless leaves (no-ops) contribute nothing.
    pub fn accesses(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.leaves()
            .iter()
            .filter_map(|leaf| leaf.key.map(|key| (key, leaf.operation != Operation::Get)))
    }

    /// The non-commutativity relation `c ∼ c̄` of the paper: two commands
    /// conflict when they access the same key and at least one of them writes.
    /// A batch conflicts through its merged footprint: it conflicts with
    /// whatever any of its inner commands conflicts with.
    ///
    /// `Noop` commands and commands without a key conflict with nothing.
    #[must_use]
    pub fn conflicts_with(&self, other: &Command) -> bool {
        if self.batch.is_empty() && other.batch.is_empty() {
            return match (self.key, other.key) {
                (Some(a), Some(b)) if a == b => {
                    // Two reads of the same key commute; anything involving a
                    // write does not.
                    !(self.operation == Operation::Get && other.operation == Operation::Get)
                }
                _ => false,
            };
        }
        // Footprint intersection: batches are small (bounded by the
        // batcher's max), so the quadratic pair scan stays cheap.
        self.accesses()
            .any(|(key, writes)| other.accesses().any(|(k, w)| k == key && (writes || w)))
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_batch() {
            return write!(f, "{}[batch×{}]", self.id, self.batch.len());
        }
        match self.key {
            Some(k) => write!(f, "{}[{:?} k{}]", self.id, self.operation, k),
            None => write!(f, "{}[{:?}]", self.id, self.operation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(node: u32, seq: u64, op: Operation, key: ConflictKey) -> Command {
        Command::new(CommandId::new(NodeId(node), seq), op, key, 0)
    }

    #[test]
    fn same_key_writes_conflict() {
        let a = cmd(0, 1, Operation::Put, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let a = cmd(0, 1, Operation::Put, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(6));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn reads_of_same_key_commute() {
        let a = cmd(0, 1, Operation::Get, Some(5));
        let b = cmd(1, 1, Operation::Get, Some(5));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn read_write_on_same_key_conflict() {
        let a = cmd(0, 1, Operation::Get, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn noops_never_conflict() {
        let a = Command::noop(CommandId::new(NodeId(0), 1));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
        assert!(!a.conflicts_with(&a.clone()));
    }

    #[test]
    fn command_id_display_is_compact() {
        assert_eq!(CommandId::new(NodeId(2), 17).to_string(), "c2.17");
    }

    #[test]
    fn batch_conflicts_through_its_merged_footprint() {
        let unit = Command::batch(
            CommandId::new(NodeId(0), BATCH_LANE | 1),
            vec![cmd(0, 1, Operation::Put, Some(5)), cmd(0, 2, Operation::Get, Some(9))],
        );
        assert!(unit.conflicts_with(&cmd(1, 1, Operation::Put, Some(5))));
        assert!(unit.conflicts_with(&cmd(1, 2, Operation::Put, Some(9))));
        // A read in the batch commutes with an outside read of the same key.
        assert!(!unit.conflicts_with(&cmd(1, 3, Operation::Get, Some(9))));
        assert!(!unit.conflicts_with(&cmd(1, 4, Operation::Put, Some(6))));
        assert!(!unit.conflicts_with(&Command::noop(CommandId::new(NodeId(1), 5))));
    }

    #[test]
    fn two_batches_conflict_when_footprints_intersect_on_a_write() {
        let a = Command::batch(
            CommandId::new(NodeId(0), BATCH_LANE | 1),
            vec![cmd(0, 1, Operation::Put, Some(1)), cmd(0, 2, Operation::Get, Some(2))],
        );
        let b = Command::batch(
            CommandId::new(NodeId(1), BATCH_LANE | 1),
            vec![cmd(1, 1, Operation::Put, Some(2))],
        );
        let c = Command::batch(
            CommandId::new(NodeId(2), BATCH_LANE | 1),
            vec![cmd(2, 1, Operation::Get, Some(2)), cmd(2, 2, Operation::Put, Some(3))],
        );
        assert!(a.conflicts_with(&b), "a reads key 2, b writes it");
        assert!(b.conflicts_with(&c), "b writes key 2, c reads it");
        assert!(!a.conflicts_with(&c), "both only read key 2");
    }

    #[test]
    fn leaves_of_a_plain_command_are_itself() {
        let plain = cmd(0, 1, Operation::Put, Some(5));
        assert_eq!(plain.leaves(), std::slice::from_ref(&plain));
        assert!(!plain.is_batch());
        assert!(!plain.id().is_batch());
        let unit = Command::batch(CommandId::new(NodeId(0), BATCH_LANE | 3), vec![plain.clone()]);
        assert_eq!(unit.leaves(), &[plain]);
        assert!(unit.id().is_batch());
    }
}
