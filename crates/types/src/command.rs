//! Client commands and the conflict relation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Globally unique identifier of a client command.
///
/// Ids carry the node where the command was first proposed and a per-node
/// sequence number, so they can be generated without coordination.
///
/// # Example
///
/// ```
/// use consensus_types::{CommandId, NodeId};
///
/// let id = CommandId::new(NodeId(1), 42);
/// assert_eq!(id.origin(), NodeId(1));
/// assert_eq!(id.sequence(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CommandId {
    origin: NodeId,
    sequence: u64,
}

impl CommandId {
    /// Creates an id for the `sequence`-th command proposed at `origin`.
    #[must_use]
    pub fn new(origin: NodeId, sequence: u64) -> Self {
        Self { origin, sequence }
    }

    /// The node where the command entered the system.
    #[must_use]
    pub fn origin(self) -> NodeId {
        self.origin
    }

    /// The per-origin sequence number.
    #[must_use]
    pub fn sequence(self) -> u64 {
        self.sequence
    }
}

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.{}", self.origin.0, self.sequence)
    }
}

/// Key used to decide whether two commands conflict.
///
/// The paper's benchmark declares two commands conflicting when they access
/// the same key of the replicated key-value store. A key of `None` denotes a
/// command that conflicts with nothing (e.g. a read-only no-op used for
/// control purposes).
pub type ConflictKey = Option<u64>;

/// The kind of operation a command performs on the replicated state machine.
///
/// The evaluation in the paper issues updates; reads are included so examples
/// can exercise both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Operation {
    /// Update the value of a key (the paper's benchmark operation).
    #[default]
    Put,
    /// Read the value of a key.
    Get,
    /// A command that commutes with every other command.
    Noop,
}

/// A client command submitted to the consensus layer.
///
/// The consensus protocols only look at [`Command::id`] and the conflict
/// relation ([`Command::conflicts_with`]); the payload is opaque to them and
/// only interpreted by the state machine in the `kvstore` crate.
///
/// # Example
///
/// ```
/// use consensus_types::{Command, CommandId, NodeId, Operation};
///
/// let a = Command::new(CommandId::new(NodeId(0), 1), Operation::Put, Some(7), 100);
/// let b = Command::new(CommandId::new(NodeId(1), 1), Operation::Put, Some(7), 100);
/// let c = Command::new(CommandId::new(NodeId(2), 1), Operation::Put, Some(8), 100);
/// assert!(a.conflicts_with(&b));
/// assert!(!a.conflicts_with(&c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    id: CommandId,
    operation: Operation,
    key: ConflictKey,
    /// Payload value written by a `Put`; doubles as the payload size knob used
    /// by the paper (15-byte commands).
    value: u64,
}

impl Command {
    /// Creates a command.
    #[must_use]
    pub fn new(id: CommandId, operation: Operation, key: ConflictKey, value: u64) -> Self {
        Self { id, operation, key, value }
    }

    /// Convenience constructor for the benchmark's update command.
    #[must_use]
    pub fn put(id: CommandId, key: u64, value: u64) -> Self {
        Self::new(id, Operation::Put, Some(key), value)
    }

    /// Convenience constructor for a command that conflicts with nothing.
    #[must_use]
    pub fn noop(id: CommandId) -> Self {
        Self::new(id, Operation::Noop, None, 0)
    }

    /// The unique id of this command.
    #[must_use]
    pub fn id(&self) -> CommandId {
        self.id
    }

    /// The operation this command performs.
    #[must_use]
    pub fn operation(&self) -> Operation {
        self.operation
    }

    /// The key this command accesses, if any.
    #[must_use]
    pub fn key(&self) -> ConflictKey {
        self.key
    }

    /// The value written by a `Put`.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The non-commutativity relation `c ∼ c̄` of the paper: two commands
    /// conflict when they access the same key and at least one of them writes.
    ///
    /// `Noop` commands and commands without a key conflict with nothing.
    #[must_use]
    pub fn conflicts_with(&self, other: &Command) -> bool {
        match (self.key, other.key) {
            (Some(a), Some(b)) if a == b => {
                // Two reads of the same key commute; anything involving a
                // write does not.
                !(self.operation == Operation::Get && other.operation == Operation::Get)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.key {
            Some(k) => write!(f, "{}[{:?} k{}]", self.id, self.operation, k),
            None => write!(f, "{}[{:?}]", self.id, self.operation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(node: u32, seq: u64, op: Operation, key: ConflictKey) -> Command {
        Command::new(CommandId::new(NodeId(node), seq), op, key, 0)
    }

    #[test]
    fn same_key_writes_conflict() {
        let a = cmd(0, 1, Operation::Put, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let a = cmd(0, 1, Operation::Put, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(6));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn reads_of_same_key_commute() {
        let a = cmd(0, 1, Operation::Get, Some(5));
        let b = cmd(1, 1, Operation::Get, Some(5));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn read_write_on_same_key_conflict() {
        let a = cmd(0, 1, Operation::Get, Some(5));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn noops_never_conflict() {
        let a = Command::noop(CommandId::new(NodeId(0), 1));
        let b = cmd(1, 1, Operation::Put, Some(5));
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
        assert!(!a.conflicts_with(&a.clone()));
    }

    #[test]
    fn command_id_display_is_compact() {
        assert_eq!(CommandId::new(NodeId(2), 17).to_string(), "c2.17");
    }
}
