//! Command structures (`C-struct`) of Generalized Consensus.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{Command, CommandId};

/// A command structure as defined by Lamport's *Generalized Consensus and
/// Paxos* and used in Section III of the paper.
///
/// A `CStruct` is a sequence of commands where two structures are considered
/// equivalent if they only differ by a permutation of **non-conflicting**
/// commands. Replicas append commands in the order they execute them; the test
/// suite then checks the Generalized Consensus properties:
///
/// * **Consistency** — any two decided structures are prefixes of a common
///   structure, i.e. they order conflicting commands the same way.
/// * **Stability** — a replica's structure only grows by appending.
/// * **Non-triviality** — only proposed commands appear.
///
/// # Example
///
/// ```
/// use consensus_types::{CStruct, Command, CommandId, NodeId};
///
/// let a = Command::put(CommandId::new(NodeId(0), 1), 1, 10);
/// let b = Command::put(CommandId::new(NodeId(1), 1), 1, 20);
/// let c = Command::put(CommandId::new(NodeId(2), 1), 9, 30);
///
/// let mut s1 = CStruct::new();
/// s1.append(a.clone());
/// s1.append(c.clone());
/// s1.append(b.clone());
///
/// let mut s2 = CStruct::new();
/// s2.append(c);
/// s2.append(a);
/// s2.append(b);
///
/// // `c` commutes with both `a` and `b`, so the two structures are compatible.
/// assert!(s1.compatible_with(&s2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CStruct {
    commands: Vec<Command>,
}

impl CStruct {
    /// Creates an empty command structure.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a command (the `•` operator of the paper).
    pub fn append(&mut self, command: Command) {
        self.commands.push(command);
    }

    /// The commands in execution order.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands in the structure.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the structure contains no commands.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Whether the structure contains the given command id.
    #[must_use]
    pub fn contains(&self, id: CommandId) -> bool {
        self.commands.iter().any(|c| c.id() == id)
    }

    /// Position of each command id within the structure.
    fn positions(&self) -> HashMap<CommandId, usize> {
        self.commands.iter().enumerate().map(|(i, c)| (c.id(), i)).collect()
    }

    /// Checks the Consistency property against another structure: every pair
    /// of **conflicting** commands that appears in both structures must appear
    /// in the same relative order.
    ///
    /// This is the "prefixes of the same C-struct up to commuting
    /// permutations" check reduced to the commands both replicas have already
    /// executed.
    #[must_use]
    pub fn compatible_with(&self, other: &CStruct) -> bool {
        let other_pos = other.positions();
        for (i, a) in self.commands.iter().enumerate() {
            let Some(&oa) = other_pos.get(&a.id()) else { continue };
            for b in &self.commands[i + 1..] {
                let Some(&ob) = other_pos.get(&b.id()) else { continue };
                if a.conflicts_with(b) && oa > ob {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the ids of conflicting pairs ordered differently in the two
    /// structures; useful for debugging failed consistency checks.
    #[must_use]
    pub fn divergences(&self, other: &CStruct) -> Vec<(CommandId, CommandId)> {
        let other_pos = other.positions();
        let mut out = Vec::new();
        for (i, a) in self.commands.iter().enumerate() {
            let Some(&oa) = other_pos.get(&a.id()) else { continue };
            for b in &self.commands[i + 1..] {
                let Some(&ob) = other_pos.get(&b.id()) else { continue };
                if a.conflicts_with(b) && oa > ob {
                    out.push((a.id(), b.id()));
                }
            }
        }
        out
    }
}

impl FromIterator<Command> for CStruct {
    fn from_iter<T: IntoIterator<Item = Command>>(iter: T) -> Self {
        Self { commands: iter.into_iter().collect() }
    }
}

impl Extend<Command> for CStruct {
    fn extend<T: IntoIterator<Item = Command>>(&mut self, iter: T) {
        self.commands.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, 0)
    }

    #[test]
    fn identical_structures_are_compatible() {
        let cmds = vec![put(0, 1, 1), put(1, 1, 1), put(2, 1, 2)];
        let s1: CStruct = cmds.clone().into_iter().collect();
        let s2: CStruct = cmds.into_iter().collect();
        assert!(s1.compatible_with(&s2));
        assert!(s2.compatible_with(&s1));
    }

    #[test]
    fn conflicting_commands_in_different_order_are_incompatible() {
        let a = put(0, 1, 7);
        let b = put(1, 1, 7);
        let s1: CStruct = vec![a.clone(), b.clone()].into_iter().collect();
        let s2: CStruct = vec![b, a].into_iter().collect();
        assert!(!s1.compatible_with(&s2));
        assert_eq!(s1.divergences(&s2).len(), 1);
    }

    #[test]
    fn commuting_commands_may_be_permuted() {
        let a = put(0, 1, 1);
        let b = put(1, 1, 2);
        let s1: CStruct = vec![a.clone(), b.clone()].into_iter().collect();
        let s2: CStruct = vec![b, a].into_iter().collect();
        assert!(s1.compatible_with(&s2));
    }

    #[test]
    fn prefix_is_compatible_with_extension() {
        let a = put(0, 1, 1);
        let b = put(1, 1, 1);
        let s1: CStruct = vec![a.clone()].into_iter().collect();
        let s2: CStruct = vec![a, b].into_iter().collect();
        assert!(s1.compatible_with(&s2));
        assert!(s2.compatible_with(&s1));
    }

    #[test]
    fn contains_and_len_report_appended_commands() {
        let mut s = CStruct::new();
        assert!(s.is_empty());
        let a = put(0, 1, 1);
        s.append(a.clone());
        assert_eq!(s.len(), 1);
        assert!(s.contains(a.id()));
        assert!(!s.contains(CommandId::new(NodeId(4), 9)));
    }
}
