//! Shared vocabulary types for the CAESAR consensus reproduction.
//!
//! This crate defines the data types that every protocol crate (`caesar`,
//! `epaxos`, `multipaxos`, `mencius`, `m2paxos`) and every substrate crate
//! (`simnet`, `kvstore`, `workload`, `harness`) share:
//!
//! * [`NodeId`] — identity of a replica/site.
//! * [`Timestamp`] — the logical timestamps `⟨k, node⟩` that CAESAR agrees on.
//! * [`Ballot`] — per-command ballot numbers used by the recovery procedure.
//! * [`Command`] / [`CommandId`] — opaque client commands plus their conflict
//!   relation (commands conflict when they touch the same key).
//! * [`QuorumSpec`] — classic (`⌊N/2⌋+1`) and fast (`⌈3N/4⌉`) quorum sizes.
//! * [`CStruct`] — the command structures of Generalized Consensus, used by
//!   the test-suite to check the Consistency property.
//! * [`Decision`], [`DecisionPath`] — what a replica reports when a command
//!   becomes stable and executes.
//! * [`StateTransfer`] / [`AppliedSummary`] / [`ExecutionCursor`] — the
//!   resume point snapshot-based state transfer hands a restarted replica's
//!   protocol layer (compact applied-id set plus a per-protocol slot cursor).
//!
//! # Example
//!
//! ```
//! use consensus_types::{NodeId, QuorumSpec, Timestamp};
//!
//! let quorums = QuorumSpec::new(5);
//! assert_eq!(quorums.classic(), 3);
//! assert_eq!(quorums.fast(), 4);
//!
//! let a = Timestamp::new(3, NodeId(0));
//! let b = Timestamp::new(3, NodeId(1));
//! assert!(a < b, "ties broken by node id");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ballot;
mod checksum;
mod command;
mod cstruct;
mod decision;
mod error;
mod id;
mod quorum;
mod timestamp;
mod transfer;

pub use ballot::Ballot;
pub use checksum::crc32;
pub use command::{Command, CommandId, ConflictKey, Operation, BATCH_LANE};
pub use cstruct::CStruct;
pub use decision::{Decision, DecisionPath, Execution, LatencyBreakdown};
pub use error::{ConsensusError, Result};
pub use id::NodeId;
pub use quorum::QuorumSpec;
pub use timestamp::Timestamp;
pub use transfer::{AppliedSummary, ExecutionCursor, ObjectCursor, StateTransfer};

/// Simulated time in microseconds since the start of an experiment.
///
/// All protocol crates and the discrete-event simulator express time in this
/// unit; the harness converts to milliseconds when printing tables so output
/// matches the paper's figures.
pub type SimTime = u64;

/// Number of microseconds in one millisecond, for readable conversions.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
