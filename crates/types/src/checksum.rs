//! CRC-32 (IEEE 802.3) checksum shared by the wire framing and the
//! write-ahead log.
//!
//! Both durability layers frame their payloads identically — a little-endian
//! `u32` length, a little-endian `u32` CRC-32 of the payload, then the
//! payload — so a record written by `wal` and a frame written by `net::wire`
//! guard their bytes with the same polynomial and the same table. Keeping the
//! implementation here lets `wal` reuse the wire checksum path without
//! depending on the networking crate.

/// CRC-32 (IEEE 802.3, the zlib/Ethernet polynomial) lookup table, built at
/// compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
};

/// CRC-32 checksum (IEEE 802.3) of `bytes`, as carried in wire frame headers
/// and write-ahead-log record headers.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut bytes = b"the quick brown fox".to_vec();
        let clean = crc32(&bytes);
        bytes[7] ^= 0x10;
        assert_ne!(crc32(&bytes), clean);
    }
}
