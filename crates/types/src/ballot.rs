//! Per-command ballot numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// A ballot number identifying the current leader of a command.
///
/// Section V-B of the paper: *"a ballot number for `c` is an identifier of the
/// current leader for `c`, and a node `p_j` receiving a message with ballot
/// number `B` can process that message only if its current ballot for `c` is
/// not greater than `B`."*
///
/// Ballot 0 belongs to the original proposer. Recovery increments the round
/// and stamps the recovering node, so concurrent recoveries by different nodes
/// never collide.
///
/// # Example
///
/// ```
/// use consensus_types::{Ballot, NodeId};
///
/// let initial = Ballot::initial(NodeId(2));
/// let recovered = initial.next_for(NodeId(1));
/// assert!(recovered > initial);
/// assert_eq!(recovered.round(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ballot {
    round: u32,
    node: NodeId,
}

impl Ballot {
    /// The ballot used by a command's original leader (`round == 0`).
    #[must_use]
    pub fn initial(leader: NodeId) -> Self {
        Self { round: 0, node: leader }
    }

    /// Creates an arbitrary ballot; mostly useful in tests.
    #[must_use]
    pub fn new(round: u32, node: NodeId) -> Self {
        Self { round, node }
    }

    /// The recovery round (0 for the original proposal).
    #[must_use]
    pub fn round(self) -> u32 {
        self.round
    }

    /// The node that owns this ballot (the command leader for the round).
    #[must_use]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// Whether this is the original (non-recovered) ballot.
    #[must_use]
    pub fn is_initial(self) -> bool {
        self.round == 0
    }

    /// The smallest ballot strictly greater than `self` that is owned by
    /// `node`. Used when a node takes over as recovery leader.
    #[must_use]
    pub fn next_for(self, node: NodeId) -> Self {
        if node > self.node {
            Self { round: self.round, node }
        } else {
            Self { round: self.round + 1, node }
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}@{}", self.round, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_ballot_is_round_zero() {
        let b = Ballot::initial(NodeId(3));
        assert!(b.is_initial());
        assert_eq!(b.node(), NodeId(3));
    }

    #[test]
    fn next_for_is_strictly_greater() {
        let b = Ballot::new(2, NodeId(3));
        assert!(b.next_for(NodeId(4)) > b);
        assert!(b.next_for(NodeId(1)) > b);
        assert!(b.next_for(NodeId(3)) > b);
    }

    #[test]
    fn initial_ballots_of_different_leaders_are_ordered_by_node() {
        assert!(Ballot::initial(NodeId(0)) < Ballot::initial(NodeId(1)));
    }

    #[test]
    fn recovered_ballot_beats_any_initial_ballot() {
        let recovered = Ballot::initial(NodeId(0)).next_for(NodeId(0));
        for n in 0..5 {
            assert!(recovered > Ballot::initial(NodeId(n)));
        }
    }
}
