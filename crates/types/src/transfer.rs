//! State-transfer summaries: the resume point a restarted replica installs.
//!
//! Snapshot-based catch-up (the `net` runtime's `SnapshotRequest` /
//! `SnapshotChunk` flow, see `docs/RECOVERY.md`) has to tell the restarted
//! replica's **protocol layer** what the transferred state already covers.
//! Two different kinds of protocol need two different answers:
//!
//! * dependency-tracked protocols (CAESAR, EPaxos) gate execution on *sets of
//!   command ids* — they need to know which ids are applied so dependency
//!   closures stop waiting for them;
//! * slot-based protocols (Multi-Paxos, Mencius, M²Paxos) gate execution on a
//!   *cursor* — the next log slot (or per-leader / per-object slot vector) to
//!   execute — and must fast-forward it past everything the snapshot covers,
//!   or they stall at their slot gap forever.
//!
//! [`StateTransfer`] carries both: an [`AppliedSummary`] (the applied-id set,
//! compacted to per-origin runs of contiguous sequences — the 1-anchored
//! leading run is the classic *floor*, later runs are the run-length-encoded
//! residue — so a checkpoint ships O(replicas + runs) data instead of
//! O(history)) and a protocol-defined [`ExecutionCursor`] captured by the
//! donor's core loop.

use serde::{Deserialize, Serialize};

use crate::{Command, CommandId, NodeId};

/// A compact, **exact** representation of a set of applied [`CommandId`]s.
///
/// Command ids are `(origin, sequence)` pairs allocated in dense ascending
/// blocks: client sessions count from 1 (see `consensus_core::session`),
/// external `ReplicaClient`s from a caller-chosen base (500 000, …). The
/// summary therefore stores, per origin, a sorted list of disjoint
/// inclusive **runs** `(start, end)` of applied sequences. The 1-anchored
/// leading run is the classic per-origin *floor* ([`AppliedSummary::floor`]);
/// any later runs are the residue — out-of-order tails and
/// disjoint-base clients — kept run-length-encoded so even a client that
/// numbers from 500 000 costs one run, not one entry per command.
/// Membership, insertion and serialization are all O(runs), not
/// O(history).
///
/// The representation is exact: [`AppliedSummary::contains`] is true for
/// precisely the ids inserted, never a superset — over-claiming an id as
/// applied would make a replica silently skip a future execution and fork
/// its state machine.
///
/// # Example
///
/// ```
/// use consensus_types::{AppliedSummary, CommandId, NodeId};
///
/// let mut s = AppliedSummary::new();
/// for seq in [2, 1, 3, 7] {
///     s.insert(CommandId::new(NodeId(0), seq));
/// }
/// assert_eq!(s.floor(NodeId(0)), 3); // 1..=3 are contiguous
/// assert_eq!(s.run_count(), 2); // the floor run and {7}
/// assert!(s.contains(CommandId::new(NodeId(0), 2)));
/// assert!(!s.contains(CommandId::new(NodeId(0), 4)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedSummary {
    /// `runs[origin]`: disjoint inclusive `(start, end)` runs of applied
    /// sequences, sorted by `start`.
    runs: Vec<Vec<(u64, u64)>>,
}

impl AppliedSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` is in the represented set.
    #[must_use]
    pub fn contains(&self, id: CommandId) -> bool {
        let Some(list) = self.runs.get(id.origin().index()) else {
            return false;
        };
        let seq = id.sequence();
        let pos = list.partition_point(|&(start, _)| start <= seq);
        pos > 0 && list[pos - 1].1 >= seq
    }

    /// Inserts `id`; returns `false` if it was already present. Sequences
    /// adjacent to an existing run extend it (and bridge two runs into
    /// one), so dense histories stay at one run per origin.
    pub fn insert(&mut self, id: CommandId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.insert_run(id.origin().index(), id.sequence(), id.sequence());
        true
    }

    /// Unions `other` into `self`, run by run (never id by id — a merged
    /// floor of a million commands is still one run).
    pub fn merge(&mut self, other: &AppliedSummary) {
        for (index, list) in other.runs.iter().enumerate() {
            for &(start, end) in list {
                self.insert_run(index, start, end);
            }
        }
    }

    /// Inserts the inclusive run `[start, end]` for `origin`, coalescing
    /// every existing run it overlaps or adjoins.
    fn insert_run(&mut self, origin: usize, start: u64, end: u64) {
        if self.runs.len() <= origin {
            self.runs.resize(origin + 1, Vec::new());
        }
        let list = &mut self.runs[origin];
        // First run that could coalesce: its end reaches start - 1.
        let mut lo = list.partition_point(|&(s, _)| s < start);
        if lo > 0 && list[lo - 1].1.saturating_add(1) >= start {
            lo -= 1;
        }
        let mut new_start = start;
        let mut new_end = end;
        let mut hi = lo;
        while hi < list.len() && list[hi].0 <= new_end.saturating_add(1) {
            new_start = new_start.min(list[hi].0);
            new_end = new_end.max(list[hi].1);
            hi += 1;
        }
        list.splice(lo..hi, [(new_start, new_end)]);
    }

    /// The contiguous-prefix floor of `origin`: every sequence `1..=floor`
    /// from it is applied (0 when its first run is not anchored at the
    /// session allocator's base).
    #[must_use]
    pub fn floor(&self, origin: NodeId) -> u64 {
        match self.runs.get(origin.index()).and_then(|list| list.first()) {
            Some(&(start, end)) if start <= 1 => end,
            _ => 0,
        }
    }

    /// The highest applied sequence of `origin`, if any. Runtimes use this
    /// to reseed the proposer batcher's batch-lane counter after a restart
    /// (batch ids carry the `BATCH_LANE` high bit, so the per-origin maximum
    /// is the last batch id the previous incarnation allocated).
    #[must_use]
    pub fn max_sequence(&self, origin: NodeId) -> Option<u64> {
        self.runs.get(origin.index()).and_then(|list| list.last()).map(|&(_, end)| end)
    }

    /// Total number of runs across all origins — the size driver of a
    /// serialized summary. Dense histories keep it at one run per
    /// (origin, client-base) pair; it never exceeds the id count.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    /// Total number of ids in the represented set.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.runs.iter().flatten().map(|&(start, end)| end - start + 1).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.iter().all(Vec::is_empty)
    }

    /// Enumerates every represented id, sorted by `(origin, sequence)`.
    /// O(history) — meant for tests, offline tooling and once-per-restore
    /// work, not hot paths.
    #[must_use]
    pub fn ids(&self) -> Vec<CommandId> {
        let mut out: Vec<CommandId> = Vec::new();
        for (index, list) in self.runs.iter().enumerate() {
            let origin = NodeId::from_index(index);
            for &(start, end) in list {
                out.extend((start..=end).map(|seq| CommandId::new(origin, seq)));
            }
        }
        out
    }
}

impl Extend<CommandId> for AppliedSummary {
    fn extend<T: IntoIterator<Item = CommandId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl FromIterator<CommandId> for AppliedSummary {
    fn from_iter<T: IntoIterator<Item = CommandId>>(iter: T) -> Self {
        let mut summary = Self::new();
        summary.extend(iter);
        summary
    }
}

/// Per-object resume state of M²Paxos: ownership plus the object's log
/// cursor (see [`ExecutionCursor::PerObject`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectCursor {
    /// The object (conflict key) this cursor describes.
    pub key: u64,
    /// The replica that owns the key's log.
    pub owner: NodeId,
    /// Ownership epoch (bumped on acquisition).
    pub epoch: u64,
    /// Next per-key sequence number to execute.
    pub next_execute: u64,
    /// Lower bound on the next per-key sequence number the owner may assign
    /// (past everything the donor has seen decided or in flight).
    pub next_assign: u64,
    /// Decided-but-not-yet-executed commands on this key, by sequence.
    pub backlog: Vec<(u64, Command)>,
}

/// A protocol-defined execution resume point, captured by the donor's core
/// loop when it cuts a checkpoint (and refreshed when it donates) and
/// installed by the receiver's `Process::on_state_transfer`.
///
/// Each variant matches one protocol family's execution gate; the `backlog`
/// fields carry what the donor has *decided but not yet executed* — without
/// them a receiver whose peers already dropped those frames would stall.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionCursor {
    /// Dependency-tracked protocols (CAESAR, EPaxos): the
    /// [`AppliedSummary`] *is* the resume point; there is no slot cursor.
    #[default]
    Ids,
    /// A single totally ordered log (Multi-Paxos).
    Log {
        /// Next slot to execute.
        next_execute: u64,
        /// Lower bound on the next free slot a (restarted) leader may
        /// assign: past every slot the donor has seen used.
        next_free: u64,
        /// Committed slots at or above `next_execute` the donor knows.
        backlog: Vec<(u64, Command)>,
    },
    /// A round-robin log with slot ownership `slot % N` (Mencius).
    RoundRobin {
        /// Next slot to execute.
        next_execute: u64,
        /// Per-leader announced skip frontiers: leader `i`'s slots strictly
        /// below `skip_frontier[i]` carry no command unless committed.
        skip_frontier: Vec<u64>,
        /// Per-leader reuse guards: the first slot owned by `i` past
        /// everything the donor has seen proposed anywhere. A restarted
        /// replica resumes proposing at `next_own[me]` so it can never
        /// collide with its previous incarnation's slots.
        next_own: Vec<u64>,
        /// Committed slots at or above `next_execute` the donor knows.
        backlog: Vec<(u64, Command)>,
    },
    /// Per-object logs with per-key ownership (M²Paxos).
    PerObject {
        /// One cursor per object the donor has state for.
        objects: Vec<ObjectCursor>,
    },
}

impl ExecutionCursor {
    /// Total number of decided-but-unexecuted backlog entries the cursor
    /// carries (0 for [`ExecutionCursor::Ids`]).
    #[must_use]
    pub fn backlog_len(&self) -> usize {
        match self {
            ExecutionCursor::Ids => 0,
            ExecutionCursor::Log { backlog, .. } | ExecutionCursor::RoundRobin { backlog, .. } => {
                backlog.len()
            }
            ExecutionCursor::PerObject { objects } => {
                objects.iter().map(|object| object.backlog.len()).sum()
            }
        }
    }

    /// Truncates the decided backlog to at most `max` entries, keeping the
    /// lowest slots (receivers execute in slot order, so dropping the tail
    /// degrades gracefully to live redelivery while dropping the middle
    /// would open a hole). Donors use this when a transfer frame would
    /// otherwise exceed the wire's frame cap.
    pub fn truncate_backlog(&mut self, max: usize) {
        match self {
            ExecutionCursor::Ids => {}
            ExecutionCursor::Log { backlog, .. } | ExecutionCursor::RoundRobin { backlog, .. } => {
                backlog.truncate(max)
            }
            ExecutionCursor::PerObject { objects } => {
                let mut budget = max;
                for object in objects.iter_mut() {
                    object.backlog.truncate(budget);
                    budget -= object.backlog.len();
                }
            }
        }
    }

    /// Combines a checkpoint-time cursor with the (never older) cursor the
    /// donor captured when it served the transfer: per-field maxima, unioned
    /// backlogs (the newer entry wins a slot collision). Mismatched variants
    /// keep whichever side carries slot information.
    #[must_use]
    pub fn merge(self, newer: ExecutionCursor) -> ExecutionCursor {
        use ExecutionCursor::{Ids, Log, PerObject, RoundRobin};
        match (self, newer) {
            (
                Log { next_execute: a_exec, next_free: a_free, backlog: a_log },
                Log { next_execute: b_exec, next_free: b_free, backlog: b_log },
            ) => Log {
                next_execute: a_exec.max(b_exec),
                next_free: a_free.max(b_free),
                backlog: merge_backlogs(a_log, b_log),
            },
            (
                RoundRobin {
                    next_execute: a_exec,
                    skip_frontier: a_skips,
                    next_own: a_own,
                    backlog: a_log,
                },
                RoundRobin {
                    next_execute: b_exec,
                    skip_frontier: b_skips,
                    next_own: b_own,
                    backlog: b_log,
                },
            ) => RoundRobin {
                next_execute: a_exec.max(b_exec),
                skip_frontier: merge_elementwise_max(a_skips, b_skips),
                next_own: merge_elementwise_max(a_own, b_own),
                backlog: merge_backlogs(a_log, b_log),
            },
            (PerObject { objects: a }, PerObject { objects: b }) => {
                let mut merged: Vec<ObjectCursor> = a;
                for cursor in b {
                    match merged.iter_mut().find(|c| c.key == cursor.key) {
                        None => merged.push(cursor),
                        Some(existing) => {
                            if cursor.epoch >= existing.epoch {
                                existing.owner = cursor.owner;
                                existing.epoch = cursor.epoch;
                            }
                            existing.next_execute = existing.next_execute.max(cursor.next_execute);
                            existing.next_assign = existing.next_assign.max(cursor.next_assign);
                            let backlog = std::mem::take(&mut existing.backlog);
                            existing.backlog = merge_backlogs(backlog, cursor.backlog);
                        }
                    }
                }
                PerObject { objects: merged }
            }
            (Ids, other) => other,
            (other, Ids) => other,
            // Two different slot-cursor families cannot describe one
            // protocol; trust the newer capture.
            (_, other) => other,
        }
    }
}

fn merge_elementwise_max(mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (index, value) in b.into_iter().enumerate() {
        a[index] = a[index].max(value);
    }
    a
}

fn merge_backlogs(a: Vec<(u64, Command)>, b: Vec<(u64, Command)>) -> Vec<(u64, Command)> {
    let mut merged: std::collections::BTreeMap<u64, Command> = a.into_iter().collect();
    merged.extend(b);
    merged.into_iter().collect()
}

/// Everything a completed snapshot transfer tells the receiving protocol:
/// the applied-id set the transferred state covers (snapshot + replayed
/// suffix) and the donor's execution cursor. Passed to
/// `Process::on_state_transfer` by the runtime after it has restored the
/// state machine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTransfer {
    /// Ids whose effects the restored state machine already includes —
    /// **leaf** ids: the individual client commands, with proposer batches
    /// flattened. This is the state-machine dedup set.
    pub applied: AppliedSummary,
    /// Ids of the **consensus units** the transferred state covers: batch
    /// ids plus unbatched command ids. Dependency-tracked protocols (CAESAR,
    /// EPaxos) gate execution on unit ids — a predecessor set naming a
    /// pre-crash batch resolves through this summary, never through
    /// [`StateTransfer::applied`] (which only knows the batch's leaves).
    pub ordered: AppliedSummary,
    /// The donor's execution resume point.
    pub cursor: ExecutionCursor,
}

impl StateTransfer {
    /// Whether the transferred state already covers the client command `id`
    /// (leaf-level: batches flattened).
    #[must_use]
    pub fn contains(&self, id: CommandId) -> bool {
        self.applied.contains(id)
    }

    /// Whether the transferred state already covers the consensus unit `id`
    /// (a batch id or an unbatched command id). Falls back to the leaf
    /// summary so transfers recorded before batching existed — where every
    /// unit *was* a leaf — keep resolving.
    #[must_use]
    pub fn covers_unit(&self, id: CommandId) -> bool {
        self.ordered.contains(id) || self.applied.contains(id)
    }

    /// The unit-id view dependency-tracked protocols absorb: the union of
    /// [`StateTransfer::ordered`] and [`StateTransfer::applied`] (leaf ids
    /// are harmless over-coverage — nothing ever waits on a batched leaf's
    /// own id).
    #[must_use]
    pub fn unit_summary(&self) -> AppliedSummary {
        let mut units = self.ordered.clone();
        units.merge(&self.applied);
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(node: u32, seq: u64) -> CommandId {
        CommandId::new(NodeId(node), seq)
    }

    #[test]
    fn dense_histories_compact_to_pure_floors() {
        let mut summary = AppliedSummary::new();
        // Insert out of order within each origin; the prefix still compacts.
        for seq in (1..=1000u64).rev() {
            summary.insert(id(0, seq));
        }
        for seq in 1..=500u64 {
            summary.insert(id(3, seq));
        }
        // All but the newest id per origin drained into the floor.
        assert_eq!(summary.floor(NodeId(0)), 1000);
        assert_eq!(summary.floor(NodeId(3)), 500);
        assert_eq!(summary.run_count(), 2, "dense sets must be O(replicas)");
        assert_eq!(summary.len(), 1500);
    }

    #[test]
    fn disjoint_client_bases_stay_run_compact() {
        // An external `ReplicaClient` numbers from a high base (500_000…)
        // while the in-process session numbers from 1. Both blocks are
        // dense, so each costs exactly one run — never one entry per
        // command.
        let mut summary = AppliedSummary::new();
        for seq in 1..=300u64 {
            summary.insert(id(0, seq));
        }
        for seq in 500_001..=500_200u64 {
            summary.insert(id(0, seq));
        }
        assert_eq!(summary.floor(NodeId(0)), 300);
        assert_eq!(summary.run_count(), 2, "two dense blocks must be two runs");
        assert_eq!(summary.len(), 500);
        assert!(summary.contains(id(0, 500_100)));
        assert!(!summary.contains(id(0, 400_000)));
    }

    #[test]
    fn floor_compaction_round_trips_the_applied_set_exactly() {
        // Dense prefixes, gaps, out-of-order tails and a zero sequence — the
        // summary must represent precisely this set, nothing more.
        let mut original: Vec<CommandId> = Vec::new();
        original.extend((1..=40).map(|s| id(0, s)));
        original.extend([id(1, 1), id(1, 2), id(1, 7), id(1, 9)]); // gap at 3..=6
        original.extend([id(2, 0), id(2, 2)]); // sequence 0 never joins a floor
        original.extend((1..=5).map(|s| id(4, s)));
        // Shuffle deterministically (reverse + interleave) before inserting.
        let mut shuffled = original.clone();
        shuffled.reverse();
        let summary: AppliedSummary = shuffled.iter().copied().collect();

        let mut expected = original.clone();
        expected.sort();
        assert_eq!(summary.ids(), expected, "round trip must be exact");
        assert_eq!(summary.len(), expected.len() as u64);
        for &applied in &expected {
            assert!(summary.contains(applied));
        }
        // Exactness: near misses are NOT claimed.
        for absent in [id(0, 41), id(1, 3), id(1, 8), id(2, 1), id(3, 1), id(4, 6)] {
            assert!(!summary.contains(absent), "{absent} must not be claimed applied");
        }
    }

    #[test]
    fn inserting_the_missing_gap_drains_the_residue() {
        let mut summary: AppliedSummary =
            [id(1, 1), id(1, 2), id(1, 7), id(1, 9)].into_iter().collect();
        assert_eq!(summary.floor(NodeId(1)), 2);
        assert_eq!(summary.run_count(), 3);
        for seq in [4, 3, 5, 6] {
            summary.insert(id(1, seq));
        }
        // 3..=6 reconnect the prefix and pull 7 in; 9 still waits for 8.
        assert_eq!(summary.floor(NodeId(1)), 7);
        assert_eq!(summary.run_count(), 2);
        assert!(!summary.insert(id(1, 7)), "already represented by the floor");
    }

    #[test]
    fn merge_unions_and_recompacts() {
        let a: AppliedSummary = (1..=10).map(|s| id(0, s)).collect();
        let mut b: AppliedSummary = (11..=20).map(|s| id(0, s)).collect();
        assert_eq!(b.floor(NodeId(0)), 0, "11..=20 is all residue without the prefix");
        b.merge(&a);
        assert_eq!(b.floor(NodeId(0)), 20, "merge reconnects the prefix");
        assert_eq!(b.run_count(), 1);
        assert_eq!(b.len(), 20);
    }

    #[test]
    fn summary_serializes_and_round_trips() {
        let summary: AppliedSummary =
            [(0, 1), (0, 2), (0, 3), (1, 5), (2, 1)].into_iter().map(|(n, s)| id(n, s)).collect();
        let bytes = bincode::serialize(&summary).expect("serializes");
        let back: AppliedSummary = bincode::deserialize(&bytes).expect("deserializes");
        assert_eq!(back, summary);
    }

    #[test]
    fn cursor_merge_takes_the_later_resume_point() {
        let cmd = Command::put(id(0, 1), 7, 1);
        let old =
            ExecutionCursor::Log { next_execute: 5, next_free: 9, backlog: vec![(5, cmd.clone())] };
        let new = ExecutionCursor::Log { next_execute: 8, next_free: 8, backlog: vec![] };
        match old.clone().merge(new) {
            ExecutionCursor::Log { next_execute, next_free, backlog } => {
                assert_eq!(next_execute, 8);
                assert_eq!(next_free, 9);
                assert_eq!(backlog, vec![(5, cmd)]);
            }
            other => panic!("variant changed: {other:?}"),
        }
        // `Ids` never wins over a slot cursor.
        assert_eq!(old.clone().merge(ExecutionCursor::Ids), old);
    }

    #[test]
    fn round_robin_merge_is_elementwise() {
        let a = ExecutionCursor::RoundRobin {
            next_execute: 10,
            skip_frontier: vec![10, 4, 12],
            next_own: vec![15, 11, 12],
            backlog: vec![],
        };
        let b = ExecutionCursor::RoundRobin {
            next_execute: 8,
            skip_frontier: vec![3, 9, 12, 7],
            next_own: vec![10, 16, 12, 13],
            backlog: vec![],
        };
        match a.merge(b) {
            ExecutionCursor::RoundRobin { next_execute, skip_frontier, next_own, .. } => {
                assert_eq!(next_execute, 10);
                assert_eq!(skip_frontier, vec![10, 9, 12, 7]);
                assert_eq!(next_own, vec![15, 16, 12, 13]);
            }
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn per_object_merge_respects_epochs() {
        let a = ExecutionCursor::PerObject {
            objects: vec![ObjectCursor {
                key: 7,
                owner: NodeId(0),
                epoch: 1,
                next_execute: 3,
                next_assign: 4,
                backlog: vec![],
            }],
        };
        let b = ExecutionCursor::PerObject {
            objects: vec![
                ObjectCursor {
                    key: 7,
                    owner: NodeId(2),
                    epoch: 2,
                    next_execute: 2,
                    next_assign: 6,
                    backlog: vec![],
                },
                ObjectCursor {
                    key: 9,
                    owner: NodeId(1),
                    epoch: 1,
                    next_execute: 0,
                    next_assign: 0,
                    backlog: vec![],
                },
            ],
        };
        match a.merge(b) {
            ExecutionCursor::PerObject { objects } => {
                assert_eq!(objects.len(), 2);
                let seven = objects.iter().find(|o| o.key == 7).expect("key 7 present");
                assert_eq!((seven.owner, seven.epoch), (NodeId(2), 2), "newer epoch wins");
                assert_eq!(seven.next_execute, 3);
                assert_eq!(seven.next_assign, 6);
            }
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn state_transfer_contains_consults_the_summary() {
        let transfer = StateTransfer {
            applied: (1..=3).map(|s| id(0, s)).collect(),
            ordered: AppliedSummary::new(),
            cursor: ExecutionCursor::Ids,
        };
        assert!(transfer.contains(id(0, 2)));
        assert!(!transfer.contains(id(0, 4)));
        // Unit coverage falls back to the leaf summary when no unit ids were
        // recorded (pre-batching histories).
        assert!(transfer.covers_unit(id(0, 2)));
        assert!(!transfer.covers_unit(id(0, 4)));
    }

    #[test]
    fn unit_coverage_resolves_batch_ids_through_the_ordered_summary() {
        use crate::BATCH_LANE;
        let mut transfer = StateTransfer::default();
        transfer.applied.extend((1..=4).map(|s| id(0, s)));
        transfer.ordered.insert(id(1, BATCH_LANE | 1));
        assert!(transfer.covers_unit(id(1, BATCH_LANE | 1)));
        assert!(!transfer.contains(id(1, BATCH_LANE | 1)), "batch ids are not leaves");
        let units = transfer.unit_summary();
        assert!(units.contains(id(1, BATCH_LANE | 1)));
        assert!(units.contains(id(0, 3)));
        assert_eq!(transfer.ordered.max_sequence(NodeId(1)), Some(BATCH_LANE | 1));
    }
}
