//! Logical timestamps `⟨k, node⟩`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// A logical timestamp `⟨k, i⟩` as defined in Section V-A of the paper.
///
/// CAESAR associates every command with a timestamp drawn from a totally
/// ordered set. Each node `p_i` draws its timestamps from `{⟨k, i⟩ : k ∈ ℕ}`,
/// which guarantees that no two nodes ever produce the same timestamp. The
/// order is lexicographic: first on the counter `k`, then on the node id.
///
/// # Example
///
/// ```
/// use consensus_types::{NodeId, Timestamp};
///
/// let t1 = Timestamp::new(4, NodeId(0));
/// let t2 = Timestamp::new(4, NodeId(3));
/// let t3 = Timestamp::new(5, NodeId(0));
/// assert!(t1 < t2 && t2 < t3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp {
    /// Monotonically increasing counter component.
    counter: u64,
    /// Node component used to break ties; also identifies the proposer that
    /// generated the timestamp.
    node: NodeId,
}

impl Timestamp {
    /// The smallest timestamp, `⟨0, p0⟩`. Every real proposal uses a counter
    /// of at least 1, so `ZERO` sorts before all assigned timestamps.
    pub const ZERO: Timestamp = Timestamp { counter: 0, node: NodeId(0) };

    /// Creates a timestamp with the given counter and node components.
    #[must_use]
    pub fn new(counter: u64, node: NodeId) -> Self {
        Self { counter, node }
    }

    /// The counter component `k` of `⟨k, i⟩`.
    #[must_use]
    pub fn counter(self) -> u64 {
        self.counter
    }

    /// The node component `i` of `⟨k, i⟩`.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// Returns the smallest timestamp owned by `node` that is strictly greater
    /// than `self`.
    ///
    /// Used by acceptors when computing the rejection timestamp suggested in a
    /// NACK, and by leaders when picking the retry timestamp.
    #[must_use]
    pub fn next_for(self, node: NodeId) -> Self {
        if node > self.node {
            Self { counter: self.counter, node }
        } else {
            Self { counter: self.counter + 1, node }
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.counter, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_lexicographic_on_counter_then_node() {
        let a = Timestamp::new(1, NodeId(4));
        let b = Timestamp::new(2, NodeId(0));
        assert!(a < b);
        let c = Timestamp::new(2, NodeId(1));
        assert!(b < c);
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Timestamp::ZERO <= Timestamp::new(0, NodeId(0)));
        assert!(Timestamp::ZERO < Timestamp::new(0, NodeId(1)));
        assert!(Timestamp::ZERO < Timestamp::new(1, NodeId(0)));
    }

    #[test]
    fn next_for_is_strictly_greater_and_owned_by_node() {
        let t = Timestamp::new(7, NodeId(3));
        let n1 = t.next_for(NodeId(4));
        assert!(n1 > t);
        assert_eq!(n1.node(), NodeId(4));
        assert_eq!(n1.counter(), 7);

        let n2 = t.next_for(NodeId(2));
        assert!(n2 > t);
        assert_eq!(n2.node(), NodeId(2));
        assert_eq!(n2.counter(), 8);

        let n3 = t.next_for(NodeId(3));
        assert!(n3 > t);
        assert_eq!(n3.counter(), 8);
    }

    #[test]
    fn display_shows_both_components() {
        assert_eq!(Timestamp::new(9, NodeId(2)).to_string(), "<9,p2>");
    }
}
