//! Decision records reported by replicas when commands execute.

use serde::{Deserialize, Serialize};

use crate::{Command, CommandId, SimTime, Timestamp};

/// How a command reached its final (stable) decision.
///
/// The paper distinguishes *fast decisions* (two communication delays) from
/// *slow decisions* (four or more); Figure 10 plots the fraction of slow
/// decisions for CAESAR and EPaxos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionPath {
    /// Decided after the fast proposal phase alone (2 delays).
    Fast,
    /// Decided after a retry triggered by a rejection (4 delays).
    SlowRetry,
    /// Decided after the slow proposal phase that follows a fast-quorum
    /// timeout (4 delays), possibly followed by a retry (6 delays).
    SlowProposal,
    /// Decided by the recovery procedure after the original leader was
    /// suspected.
    Recovery,
    /// The protocol does not distinguish fast and slow paths (Multi-Paxos,
    /// Mencius).
    Ordered,
}

impl DecisionPath {
    /// Whether this decision counts as a slow decision in Figure 10.
    #[must_use]
    pub fn is_slow(self) -> bool {
        !matches!(self, DecisionPath::Fast | DecisionPath::Ordered)
    }
}

/// Per-command latency breakdown (Figure 11a of the paper).
///
/// All durations are in simulated microseconds and measured at the command's
/// leader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Time spent in the proposal phase(s) (fast + slow proposal).
    pub propose: SimTime,
    /// Time spent in the retry phase (zero for fast decisions).
    pub retry: SimTime,
    /// Time between the stable message and actual execution (waiting for
    /// predecessors to be delivered).
    pub deliver: SimTime,
    /// Time commands spent blocked on the wait condition at acceptors
    /// (aggregated; Figure 11b).
    pub wait: SimTime,
}

impl LatencyBreakdown {
    /// Total of the components measured at the leader (excludes `wait`, which
    /// is measured at acceptors and overlaps with `propose`).
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.propose + self.retry + self.deliver
    }
}

/// A committed-and-executed command as reported by a replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Which command was executed.
    pub command: CommandId,
    /// The final timestamp the command was decided at (protocols that are not
    /// timestamp-based report [`Timestamp::ZERO`]).
    pub timestamp: Timestamp,
    /// Whether the decision used the fast or a slow path.
    pub path: DecisionPath,
    /// Simulated time at which the command was proposed at its leader.
    pub proposed_at: SimTime,
    /// Simulated time at which the command executed at this replica.
    pub executed_at: SimTime,
    /// Phase-by-phase latency breakdown (only meaningful at the command's
    /// leader replica).
    pub breakdown: LatencyBreakdown,
}

impl Decision {
    /// End-to-end latency observed by the client co-located with the leader.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.executed_at.saturating_sub(self.proposed_at)
    }
}

/// A command execution pushed by a replica through the runtime's
/// `Context::deliver` sink: the full command payload (so runtimes can apply
/// it to their state machine and answer client reads) together with its
/// [`Decision`] record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Execution {
    /// The executed command, payload included.
    pub command: Command,
    /// The decision record describing how and when it executed.
    pub decision: Decision,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn slow_path_classification_matches_figure_10() {
        assert!(!DecisionPath::Fast.is_slow());
        assert!(!DecisionPath::Ordered.is_slow());
        assert!(DecisionPath::SlowRetry.is_slow());
        assert!(DecisionPath::SlowProposal.is_slow());
        assert!(DecisionPath::Recovery.is_slow());
    }

    #[test]
    fn latency_is_execution_minus_proposal() {
        let d = Decision {
            command: CommandId::new(NodeId(0), 1),
            timestamp: Timestamp::ZERO,
            path: DecisionPath::Fast,
            proposed_at: 1_000,
            executed_at: 91_000,
            breakdown: LatencyBreakdown::default(),
        };
        assert_eq!(d.latency(), 90_000);
    }

    #[test]
    fn breakdown_total_sums_leader_phases() {
        let b = LatencyBreakdown { propose: 10, retry: 20, deliver: 30, wait: 99 };
        assert_eq!(b.total(), 60);
    }
}
