//! Replica identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a replica (a geo-replicated site in the paper's deployment).
///
/// Nodes are numbered `0..N`. The harness maps ids to site names
/// (Virginia, Ohio, Frankfurt, Ireland, Mumbai) when printing results.
///
/// # Example
///
/// ```
/// use consensus_types::NodeId;
///
/// let node = NodeId(2);
/// assert_eq!(node.index(), 2);
/// assert_eq!(format!("{node}"), "p2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize`, convenient for indexing vectors of
    /// per-node state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a vector index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("node index fits in u32"))
    }

    /// Enumerates the ids of a cluster of `n` nodes: `p0, p1, ..., p(n-1)`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId::from_index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in 0..10 {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = NodeId::all(5).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn display_is_p_prefixed() {
        assert_eq!(NodeId(3).to_string(), "p3");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(4), NodeId(4));
    }
}
