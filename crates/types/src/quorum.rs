//! Classic and fast quorum arithmetic.

use serde::{Deserialize, Serialize};

/// Quorum sizes for a cluster of `N` nodes, as defined in Section III of the
/// paper.
///
/// * classic quorum `CQ = ⌊N/2⌋ + 1`
/// * fast quorum    `FQ = ⌈3N/4⌉`
///
/// Fast quorums are required for deciding in two communication delays (the
/// lower bound of Lamport's *Lower Bounds for Asynchronous Consensus*); the
/// classic quorum suffices for the slow-proposal, retry and recovery phases.
///
/// # Example
///
/// ```
/// use consensus_types::QuorumSpec;
///
/// let q = QuorumSpec::new(5);
/// assert_eq!(q.classic(), 3);
/// assert_eq!(q.fast(), 4);
/// assert_eq!(q.max_failures(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuorumSpec {
    nodes: usize,
    classic: usize,
    fast: usize,
}

impl QuorumSpec {
    /// Builds the quorum specification for a cluster of `nodes` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Self { nodes, classic: nodes / 2 + 1, fast: (3 * nodes).div_ceil(4) }
    }

    /// Builds a specification with an explicit fast-quorum size, used by the
    /// quorum-size ablation benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `fast` is smaller than the classic quorum or larger than `nodes`.
    #[must_use]
    pub fn with_fast_quorum(nodes: usize, fast: usize) -> Self {
        let base = Self::new(nodes);
        assert!(
            fast >= base.classic && fast <= nodes,
            "fast quorum must lie in [classic quorum, N]"
        );
        Self { fast, ..base }
    }

    /// Total number of replicas `N`.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Classic quorum size `⌊N/2⌋ + 1`.
    #[must_use]
    pub fn classic(&self) -> usize {
        self.classic
    }

    /// Fast quorum size `⌈3N/4⌉` (unless overridden for an ablation).
    #[must_use]
    pub fn fast(&self) -> usize {
        self.fast
    }

    /// The maximum number of crash failures `f = N - CQ` the cluster tolerates.
    #[must_use]
    pub fn max_failures(&self) -> usize {
        self.nodes - self.classic
    }

    /// Minimum size of the intersection between any classic quorum and any
    /// fast quorum: `CQ + FQ - N`.
    ///
    /// The recovery procedure relies on this being at least `⌊CQ/2⌋ + 1` so a
    /// recovering leader can tell whether a fast decision may have been taken.
    #[must_use]
    pub fn classic_fast_intersection(&self) -> usize {
        self.classic + self.fast - self.nodes
    }

    /// The `⌊CQ/2⌋ + 1` threshold used by the recovery whitelist computation
    /// (Figure 5, lines 21–24 of the paper).
    #[must_use]
    pub fn recovery_majority(&self) -> usize {
        self.classic / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_node_cluster_matches_paper() {
        let q = QuorumSpec::new(5);
        assert_eq!(q.classic(), 3);
        assert_eq!(q.fast(), 4);
        assert_eq!(q.max_failures(), 2);
        assert_eq!(q.recovery_majority(), 2);
    }

    #[test]
    fn quorum_sizes_for_small_clusters() {
        // (N, CQ, FQ)
        let expected =
            [(1, 1, 1), (2, 2, 2), (3, 2, 3), (4, 3, 3), (5, 3, 4), (7, 4, 6), (9, 5, 7)];
        for (n, cq, fq) in expected {
            let q = QuorumSpec::new(n);
            assert_eq!(q.classic(), cq, "classic quorum for N={n}");
            assert_eq!(q.fast(), fq, "fast quorum for N={n}");
        }
    }

    #[test]
    fn classic_quorums_always_intersect() {
        for n in 1..=20 {
            let q = QuorumSpec::new(n);
            assert!(2 * q.classic() > n, "two classic quorums must intersect for N={n}");
        }
    }

    #[test]
    fn fast_quorum_intersection_supports_recovery() {
        // Any two fast quorums and a classic quorum must share a node, and the
        // CQ∩FQ intersection must reach the recovery majority (N >= 3).
        for n in 3..=20 {
            let q = QuorumSpec::new(n);
            assert!(2 * q.fast() + q.classic() > 2 * n, "FQ∩FQ∩CQ must be non-empty for N={n}");
            assert!(
                q.classic_fast_intersection() >= q.recovery_majority(),
                "|CQ∩FQ| >= floor(CQ/2)+1 must hold for N={n}"
            );
        }
    }

    #[test]
    fn explicit_fast_quorum_override() {
        let q = QuorumSpec::with_fast_quorum(5, 5);
        assert_eq!(q.fast(), 5);
        assert_eq!(q.classic(), 3);
    }

    #[test]
    #[should_panic(expected = "fast quorum must lie")]
    fn fast_quorum_below_classic_is_rejected() {
        let _ = QuorumSpec::with_fast_quorum(5, 2);
    }
}
