//! Command-lifecycle span events and the fixed-capacity per-replica ring
//! that keeps the most recent of them.

use std::collections::VecDeque;

use consensus_types::{CommandId, NodeId};
use serde::{Deserialize, Serialize};

/// One step of a command's lifecycle.
///
/// The protocol layer records the consensus phases through
/// `Context::trace`; the runtime records the edges it owns (receipt of the
/// client request, application to the state machine, the reply leaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TracePhase {
    /// The client's request reached a replica (runtime-recorded).
    Submit,
    /// The replica proposed the command to its peers.
    Propose,
    /// The proposal gathered its quorum of acknowledgements.
    QuorumReached,
    /// The command's position became stable/committed locally.
    Commit,
    /// The command was applied to the state machine (runtime-recorded).
    Execute,
    /// The reply left for the client (runtime-recorded).
    Reply,
    /// The command entered a retry round (CAESAR slow path).
    Retry,
    /// A recovery procedure started for the command.
    Recovery,
}

impl TracePhase {
    /// Stable lowercase name, used in metric output and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Submit => "submit",
            TracePhase::Propose => "propose",
            TracePhase::QuorumReached => "quorum",
            TracePhase::Commit => "commit",
            TracePhase::Execute => "execute",
            TracePhase::Reply => "reply",
            TracePhase::Retry => "retry",
            TracePhase::Recovery => "recovery",
        }
    }
}

/// One timestamped event in a command's lifecycle, as seen by one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// The command this event belongs to.
    pub command: CommandId,
    /// Which lifecycle step happened.
    pub phase: TracePhase,
    /// When it happened, in microseconds. Within one ring all events share
    /// one clock; rings joined across replicas must share a cluster-wide
    /// clock (simulated time, or [`crate::wall_clock_us`]).
    pub at: u64,
    /// The replica that observed the event.
    pub node: NodeId,
}

/// A fixed-capacity ring of the most recent [`SpanEvent`]s.
///
/// When full, recording a new span evicts the **oldest** one; `recorded`
/// and `evicted` keep running totals so a consumer can tell how much
/// history it lost.
#[derive(Debug)]
pub struct SpanRing {
    buf: VecDeque<SpanEvent>,
    capacity: usize,
    recorded: u64,
    evicted: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Records one span, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: SpanEvent) {
        if self.capacity == 0 {
            self.evicted += 1;
            self.recorded += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(event);
        self.recorded += 1;
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total spans ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Total spans evicted to make room.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Copies the retained spans (oldest first) into a plain-data snapshot.
    #[must_use]
    pub fn snapshot(&self) -> SpanRingSnapshot {
        SpanRingSnapshot {
            events: self.buf.iter().copied().collect(),
            recorded: self.recorded,
            evicted: self.evicted,
        }
    }
}

/// A plain-data copy of a [`SpanRing`], serializable over the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRingSnapshot {
    /// Retained spans, oldest first.
    pub events: Vec<SpanEvent>,
    /// Total spans ever recorded at the source replica.
    pub recorded: u64,
    /// Spans lost to eviction at the source replica.
    pub evicted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, at: u64) -> SpanEvent {
        SpanEvent {
            command: CommandId::new(NodeId(0), seq),
            phase: TracePhase::Submit,
            at,
            node: NodeId(0),
        }
    }

    #[test]
    fn overflow_evicts_oldest_first() {
        let mut ring = SpanRing::new(3);
        for seq in 0..5u64 {
            ring.push(span(seq, seq * 10));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.evicted(), 2);
        let snap = ring.snapshot();
        // Spans 0 and 1 were evicted; 2, 3, 4 survive in arrival order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.command.sequence()).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.evicted, 2);
    }

    #[test]
    fn zero_capacity_ring_counts_but_keeps_nothing() {
        let mut ring = SpanRing::new(0);
        ring.push(span(1, 1));
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 1);
        assert_eq!(ring.evicted(), 1);
    }

    #[test]
    fn snapshot_round_trips_through_bincode() {
        let mut ring = SpanRing::new(8);
        ring.push(span(1, 5));
        ring.push(SpanEvent {
            command: CommandId::new(NodeId(2), 9),
            phase: TracePhase::Recovery,
            at: 77,
            node: NodeId(2),
        });
        let snap = ring.snapshot();
        let bytes = bincode::serialize(&snap).unwrap();
        let back: SpanRingSnapshot = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
