//! The per-replica metric registry: named handles, the span ring, and the
//! mergeable snapshot of both.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::{SpanEvent, SpanRing, SpanRingSnapshot};

/// Default capacity of the embedded span ring (~7 spans per command, so
/// roughly the last two thousand command lifecycles).
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

/// A named-metric registry plus one span ring, shared per replica.
///
/// Registration takes a short mutex; the returned handles record through
/// atomics with no further locking. Re-registering a name returns the
/// existing handle, so independent subsystems can share a metric by name.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<SpanRing>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl Registry {
    /// Creates an empty registry with the default span-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry whose span ring holds `capacity` events.
    #[must_use]
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanRing::new(capacity)),
        }
    }

    /// Returns the counter registered as `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.lock().entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered as `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges.lock().entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered as `name`, creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms.lock().entry(name.to_string()).or_default().clone()
    }

    /// Records one span into the ring.
    pub fn record_span(&self, event: SpanEvent) {
        self.spans.lock().push(event);
    }

    /// Drains `buffer` into the ring, preserving order. The buffer is the
    /// per-callback scratch the runtimes hand to `Context`; draining in one
    /// lock acquisition keeps the hot path cheap.
    pub fn record_spans(&self, buffer: &mut Vec<SpanEvent>) {
        if buffer.is_empty() {
            return;
        }
        let mut ring = self.spans.lock();
        for event in buffer.drain(..) {
            ring.push(event);
        }
    }

    /// Copies the span ring into a plain-data snapshot.
    #[must_use]
    pub fn spans(&self) -> SpanRingSnapshot {
        self.spans.lock().snapshot()
    }

    /// Copies every registered metric into a plain-data snapshot.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Registry`]'s metrics at one moment.
///
/// Snapshots serialize over the wire (the `net` runtime's `StatsReply`
/// carries one) and merge by addition across replicas or moments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The named counter's value, or 0 if it was never registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, or 0 if it was never registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Adds `other` into `self`: counters and gauges sum, histograms merge.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TracePhase;
    use consensus_types::{CommandId, NodeId};
    use std::sync::Arc;

    #[test]
    fn reregistration_returns_the_same_handle() {
        let registry = Registry::new();
        registry.counter("x").inc();
        registry.counter("x").add(2);
        assert_eq!(registry.snapshot().counter("x"), 3);
    }

    #[test]
    fn snapshot_covers_all_three_kinds_and_round_trips() {
        let registry = Registry::new();
        registry.counter("c").add(7);
        registry.gauge("g").set(11);
        registry.histogram("h").record(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauge("g"), 11);
        assert_eq!(snap.histograms["h"].count(), 1);
        assert_eq!(snap.counter("missing"), 0);

        let bytes = bincode::serialize(&snap).unwrap();
        let back: RegistrySnapshot = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let a_reg = Registry::new();
        a_reg.counter("decisions.fast").add(3);
        a_reg.histogram("lat").record(10);
        let b_reg = Registry::new();
        b_reg.counter("decisions.fast").add(4);
        b_reg.counter("decisions.slow").inc();
        b_reg.histogram("lat").record(20);

        let mut total = a_reg.snapshot();
        total.merge(&b_reg.snapshot());
        assert_eq!(total.counter("decisions.fast"), 7);
        assert_eq!(total.counter("decisions.slow"), 1);
        assert_eq!(total.histograms["lat"].count(), 2);
        assert_eq!(total.histograms["lat"].sum, 30);
    }

    #[test]
    fn concurrent_registration_and_recording_is_consistent() {
        let registry = Arc::new(Registry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let registry = registry.clone();
                std::thread::spawn(move || {
                    // Every thread re-registers the same names — the handles
                    // must alias one underlying atomic each.
                    let counter = registry.counter("shared");
                    let hist = registry.histogram("shared_h");
                    for i in 0..PER_THREAD {
                        counter.inc();
                        hist.record(i % 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("shared"), THREADS as u64 * PER_THREAD);
        assert_eq!(snap.histograms["shared_h"].count(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn spans_drain_in_order() {
        let registry = Registry::with_span_capacity(4);
        let mut scratch: Vec<SpanEvent> = (0..6u64)
            .map(|seq| SpanEvent {
                command: CommandId::new(NodeId(1), seq),
                phase: TracePhase::Propose,
                at: seq,
                node: NodeId(1),
            })
            .collect();
        registry.record_spans(&mut scratch);
        assert!(scratch.is_empty());
        let snap = registry.spans();
        assert_eq!(snap.recorded, 6);
        assert_eq!(snap.evicted, 2);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.command.sequence()).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }
}
