//! Joining per-replica span rings into end-to-end command traces and a
//! per-phase latency breakdown — the live-cluster equivalent of the paper's
//! Figure 11.
//!
//! Each replica only sees its own slice of a command's life: the origin
//! records submit/propose/quorum/commit/reply, every replica records its
//! own execute. [`assemble`] groups the events of any number of ring
//! snapshots by [`CommandId`]; [`phase_breakdown`] turns the joined traces
//! into one histogram per lifecycle phase:
//!
//! | phase | interval |
//! |---|---|
//! | `propose` | submit → propose |
//! | `quorum` | propose → quorum |
//! | `commit` | quorum → commit |
//! | `execute` | commit → execute (at the origin replica) |
//! | `reply` | execute → reply |
//!
//! Commands whose trace misses either endpoint of an interval (evicted from
//! a ring, or still in flight at scrape time) simply don't contribute to
//! that phase; `TraceSet::incomplete` counts them.

use std::collections::BTreeMap;

use consensus_types::CommandId;

use crate::metric::{Histogram, HistogramSnapshot};
use crate::span::{SpanEvent, SpanRingSnapshot, TracePhase};

/// All span events observed for one command, across every scraped replica,
/// sorted by timestamp.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The command.
    pub command: CommandId,
    /// Its events, ascending by `at`.
    pub events: Vec<SpanEvent>,
}

impl Trace {
    /// The first occurrence of `phase`, preferring the command's origin
    /// replica (phases every replica records, like execute, happen at
    /// different wall times per replica; the origin's is the one on the
    /// client's critical path).
    #[must_use]
    pub fn first(&self, phase: TracePhase) -> Option<&SpanEvent> {
        self.events
            .iter()
            .find(|e| e.phase == phase && e.node == self.command.origin())
            .or_else(|| self.events.iter().find(|e| e.phase == phase))
    }

    /// Whether the trace covers the full client-visible lifecycle.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.first(TracePhase::Submit).is_some() && self.first(TracePhase::Reply).is_some()
    }
}

/// The result of joining ring snapshots: per-command traces plus loss
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    /// Traces keyed by command, each sorted by timestamp.
    pub traces: BTreeMap<CommandId, Trace>,
    /// Commands whose trace is missing submit or reply (evicted history or
    /// still in flight).
    pub incomplete: usize,
    /// Total spans evicted across the source rings — nonzero means the
    /// rings were too small for the scrape interval.
    pub evicted: u64,
}

/// Joins any number of per-replica ring snapshots into per-command traces.
#[must_use]
pub fn assemble(rings: &[SpanRingSnapshot]) -> TraceSet {
    let mut traces: BTreeMap<CommandId, Trace> = BTreeMap::new();
    let mut evicted = 0;
    for ring in rings {
        evicted += ring.evicted;
        for &event in &ring.events {
            traces
                .entry(event.command)
                .or_insert_with(|| Trace { command: event.command, events: Vec::new() })
                .events
                .push(event);
        }
    }
    let mut incomplete = 0;
    for trace in traces.values_mut() {
        trace.events.sort_by_key(|e| (e.at, e.phase));
        if !trace.complete() {
            incomplete += 1;
        }
    }
    TraceSet { traces, incomplete, evicted }
}

/// Latency statistics for one lifecycle phase across many traces.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name (`propose`, `quorum`, `commit`, `execute`, `reply`).
    pub name: &'static str,
    /// Traces that contributed an interval.
    pub count: u64,
    /// Interval distribution in microseconds.
    pub latency: HistogramSnapshot,
}

/// The five client-visible lifecycle intervals, in order.
const INTERVALS: [(&str, TracePhase, TracePhase); 5] = [
    ("propose", TracePhase::Submit, TracePhase::Propose),
    ("quorum", TracePhase::Propose, TracePhase::QuorumReached),
    ("commit", TracePhase::QuorumReached, TracePhase::Commit),
    ("execute", TracePhase::Commit, TracePhase::Execute),
    ("reply", TracePhase::Execute, TracePhase::Reply),
];

/// Computes per-phase latency histograms over a set of joined traces.
///
/// A trace contributes to a phase only when it has both endpoints;
/// cross-replica clock skew can make an interval slightly negative, which
/// clamps to zero rather than poisoning the distribution.
#[must_use]
pub fn phase_breakdown(set: &TraceSet) -> Vec<PhaseStats> {
    let hists: Vec<Histogram> = INTERVALS.iter().map(|_| Histogram::new()).collect();
    for trace in set.traces.values() {
        for ((_, from, to), hist) in INTERVALS.iter().zip(&hists) {
            if let (Some(a), Some(b)) = (trace.first(*from), trace.first(*to)) {
                hist.record(b.at.saturating_sub(a.at));
            }
        }
    }
    INTERVALS
        .iter()
        .zip(&hists)
        .map(|((name, _, _), hist)| {
            let latency = hist.snapshot();
            PhaseStats { name, count: latency.count(), latency }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::NodeId;

    fn event(seq: u64, phase: TracePhase, at: u64, node: u32) -> SpanEvent {
        SpanEvent { command: CommandId::new(NodeId(0), seq), phase, at, node: NodeId(node) }
    }

    fn ring(events: Vec<SpanEvent>) -> SpanRingSnapshot {
        SpanRingSnapshot { events, recorded: 0, evicted: 0 }
    }

    #[test]
    fn assemble_joins_rings_by_command_and_sorts_by_time() {
        // Origin (node 0) sees submit/propose/reply; node 1 sees execute.
        let origin = ring(vec![
            event(1, TracePhase::Reply, 50, 0),
            event(1, TracePhase::Submit, 10, 0),
            event(1, TracePhase::Propose, 20, 0),
            event(1, TracePhase::QuorumReached, 30, 0),
            event(1, TracePhase::Commit, 35, 0),
            event(1, TracePhase::Execute, 40, 0),
        ]);
        let peer = ring(vec![event(1, TracePhase::Execute, 45, 1)]);
        let set = assemble(&[origin, peer]);
        assert_eq!(set.traces.len(), 1);
        assert_eq!(set.incomplete, 0);
        let trace = &set.traces[&CommandId::new(NodeId(0), 1)];
        assert_eq!(trace.events.len(), 7);
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
        // Execute prefers the origin's event (at=40), not the peer's (45).
        assert_eq!(trace.first(TracePhase::Execute).unwrap().at, 40);
        assert!(trace.complete());
    }

    #[test]
    fn phase_breakdown_measures_the_five_intervals() {
        let origin = ring(vec![
            event(1, TracePhase::Submit, 100, 0),
            event(1, TracePhase::Propose, 110, 0),
            event(1, TracePhase::QuorumReached, 160, 0),
            event(1, TracePhase::Commit, 165, 0),
            event(1, TracePhase::Execute, 185, 0),
            event(1, TracePhase::Reply, 190, 0),
        ]);
        let set = assemble(&[origin]);
        let phases = phase_breakdown(&set);
        let by_name: BTreeMap<&str, u64> =
            phases.iter().map(|p| (p.name, p.latency.percentile(0.5))).collect();
        // Bucket upper bounds: all intervals here are < 64 so error ≤ 12.5%.
        assert_eq!(phases.iter().map(|p| p.count).sum::<u64>(), 5);
        assert!(by_name["propose"] >= 10 && by_name["propose"] <= 11);
        assert!(by_name["quorum"] >= 50 && by_name["quorum"] <= 57);
        assert_eq!(by_name["commit"], 5);
        assert!(by_name["execute"] >= 20 && by_name["execute"] <= 21);
        assert_eq!(by_name["reply"], 5);
    }

    #[test]
    fn missing_endpoints_drop_the_interval_not_the_trace() {
        // No quorum/commit events (e.g. evicted): propose and reply phases
        // still measure, the middle intervals contribute nothing.
        let origin = ring(vec![
            event(2, TracePhase::Submit, 10, 0),
            event(2, TracePhase::Propose, 30, 0),
            event(2, TracePhase::Execute, 70, 0),
            event(2, TracePhase::Reply, 75, 0),
        ]);
        let set = assemble(&[origin]);
        assert_eq!(set.incomplete, 0);
        let phases = phase_breakdown(&set);
        let by_name: BTreeMap<&str, u64> = phases.iter().map(|p| (p.name, p.count)).collect();
        assert_eq!(by_name["propose"], 1);
        assert_eq!(by_name["quorum"], 0);
        assert_eq!(by_name["commit"], 0);
        assert_eq!(by_name["execute"], 0);
        assert_eq!(by_name["reply"], 1);
    }

    #[test]
    fn clock_skew_clamps_to_zero() {
        let rings =
            [ring(vec![event(3, TracePhase::Submit, 100, 0), event(3, TracePhase::Reply, 90, 0)])];
        let set = assemble(&rings);
        // submit→propose missing; the only measurable pair would be
        // execute→reply which is absent too — but a skewed submit→reply
        // trace still counts as complete.
        assert_eq!(set.incomplete, 0);
        let origin = ring(vec![
            event(4, TracePhase::Execute, 100, 0),
            event(4, TracePhase::Reply, 90, 0),
            event(4, TracePhase::Submit, 0, 0),
        ]);
        let phases = phase_breakdown(&assemble(&[origin]));
        let reply = phases.iter().find(|p| p.name == "reply").unwrap();
        assert_eq!(reply.count, 1);
        assert_eq!(reply.latency.percentile(1.0), 0, "negative interval clamps to 0");
    }
}
