//! Unified telemetry for the CAESAR workspace: a lock-free metrics registry,
//! command-lifecycle span tracing, and mergeable snapshots.
//!
//! Every replica — whatever protocol it runs and whatever runtime hosts it —
//! owns one [`Registry`]. The registry hands out cheap shared handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) that record through atomics on the
//! hot path (no lock is taken after registration), and it embeds one
//! fixed-capacity [`SpanRing`] of timestamped [`SpanEvent`]s keyed by
//! [`CommandId`](consensus_types::CommandId), so a command's lifecycle
//! (submit → propose → quorum →
//! commit → execute → reply, plus retry/recovery detours) can be replayed
//! after the fact.
//!
//! Everything observable is exported as a plain-data *snapshot*
//! ([`RegistrySnapshot`], [`SpanRingSnapshot`]) that serializes over the
//! workspace's bincode wire format and **merges**: snapshots from different
//! replicas (or different moments) combine by addition, which is what lets a
//! scraper sum a cluster's counters or join per-replica span rings into
//! end-to-end traces (see [`trace`]).
//!
//! # Metric naming
//!
//! Names are dotted paths. Cross-protocol metrics use shared names so
//! generic tooling (the stats scraper, the harness) can read any replica:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `decisions.fast` | counter | commands decided on the fast path |
//! | `decisions.slow` | counter | commands decided on a slow path |
//! | `commands.executed` | counter | commands applied locally |
//! | `recoveries.started` | counter | recovery procedures initiated |
//!
//! Protocol- or runtime-specific metrics live under their own prefix
//! (`caesar.*`, `epaxos.*`, `net.*`, `sim.*`). The full catalogue is in
//! `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use telemetry::{Registry, SpanEvent, TracePhase};
//! use consensus_types::{CommandId, NodeId};
//!
//! let registry = Registry::new();
//! let fast = registry.counter("decisions.fast");
//! fast.inc();
//! let lat = registry.histogram("latency_us");
//! lat.record(1_250);
//!
//! registry.record_span(SpanEvent {
//!     command: CommandId::new(NodeId(0), 1),
//!     phase: TracePhase::Submit,
//!     at: 10,
//!     node: NodeId(0),
//! });
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("decisions.fast"), 1);
//! assert_eq!(snap.histograms["latency_us"].count(), 1);
//! assert_eq!(registry.spans().events.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod metric;
mod registry;
mod span;
pub mod trace;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Registry, RegistrySnapshot};
pub use span::{SpanEvent, SpanRing, SpanRingSnapshot, TracePhase};

/// Microseconds since the UNIX epoch, from the system wall clock.
///
/// Span timestamps must be comparable **across replicas** for the trace
/// assembler to subtract them; runtimes whose native clock is
/// replica-relative (the `net` runtime's per-replica epoch) normalize span
/// times onto this clock before committing them to the ring.
#[must_use]
pub fn wall_clock_us() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_micros() as u64)
}
