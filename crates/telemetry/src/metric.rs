//! The three metric kinds: atomic counters, gauges, and log-linear-bucket
//! histograms with mergeable snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
///
/// Cloning is cheap and every clone observes the same value; recording is a
/// single relaxed atomic add.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, connection counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two: values land in buckets of relative width
/// 1/8, bounding the quantile error at 12.5%.
const SUB_BUCKETS: u64 = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;
/// Values `0..8` get one exact bucket each; larger values get
/// [`SUB_BUCKETS`] buckets per power of two up to `u64::MAX`.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Maps a recorded value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1);
        (u64::from(exp - SUB_BITS) * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
    }
}

/// The inclusive `(low, high)` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS as usize {
        (index as u64, index as u64)
    } else {
        let group = (index - SUB_BUCKETS as usize) as u64 / SUB_BUCKETS;
        let sub = (index - SUB_BUCKETS as usize) as u64 % SUB_BUCKETS;
        let exp = group as u32 + SUB_BITS;
        let low = (SUB_BUCKETS + sub) << (exp - SUB_BITS);
        let width = 1u64 << (exp - SUB_BITS);
        (low, low + (width - 1))
    }
}

/// A log-linear-bucket histogram: fixed bucket layout covering all of `u64`
/// with ≤ 12.5% relative bucket width, recorded through relaxed atomics.
///
/// There is no separate length field — the count *is* the sum of the bucket
/// counts, so a snapshot taken concurrently with recorders is internally
/// consistent (every observed recording is in exactly one bucket).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values, for means. Updated after the bucket, so a
    /// concurrent snapshot's mean can lag by in-flight recordings.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `v`.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copies the current state into a plain-data snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot { buckets, sum: self.0.sum.load(Ordering::Relaxed) }
    }
}

/// A plain-data copy of a [`Histogram`]: sparse `(bucket, count)` pairs plus
/// the value sum. Snapshots merge by addition and serialize over the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket holding that rank (within 12.5% of the true value).
    /// Returns 0 for an empty snapshot.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index as usize).1;
            }
        }
        self.buckets.last().map_or(0, |&(index, _)| bucket_bounds(index as usize).1)
    }

    /// Largest recorded bucket's upper bound (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.buckets.last().map_or(0, |&(index, _)| bucket_bounds(index as usize).1)
    }

    /// Adds `other`'s observations into `self`. Merging is commutative and
    /// associative, so per-replica snapshots fold into cluster totals in any
    /// order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, an)), Some(&&(bi, bn))) => {
                    if ai < bi {
                        merged.push((ai, an));
                        a.next();
                    } else if bi < ai {
                        merged.push((bi, bn));
                        b.next();
                    } else {
                        merged.push((ai, an + bn));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        // Atomic recording already wraps on overflow; merging matches.
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // Every probe value must land in a bucket whose range contains it.
        let probes = [0, 1, 7, 8, 9, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX];
        for &v in &probes {
            let index = bucket_index(v);
            let (low, high) = bucket_bounds(index);
            assert!(low <= v && v <= high, "value {v} outside bucket {index} = [{low}, {high}]");
            // Relative bucket width stays within 1/8 for values ≥ 8.
            if v >= 8 {
                assert!(high - low < low / 4, "bucket {index} too wide: [{low}, {high}]");
            }
        }
    }

    #[test]
    fn buckets_tile_the_domain_without_gaps() {
        let mut expected_low = 0u64;
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "gap or overlap at bucket {index}");
            if high == u64::MAX {
                assert_eq!(index, BUCKETS - 1);
                return;
            }
            expected_low = high + 1;
        }
        panic!("buckets never reached u64::MAX");
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let hist = Histogram::new();
        for v in 1..=10_000u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 10_000);
        // True p50 = 5000, p99 = 9900; the reported value is the holding
        // bucket's upper bound, so it is ≥ the true value and within 12.5%.
        for (q, truth) in [(0.50, 5_000u64), (0.90, 9_000), (0.99, 9_900)] {
            let got = snap.percentile(q);
            assert!(got >= truth, "p{q} reported {got} below true {truth}");
            assert!(
                (got - truth) as f64 <= truth as f64 * 0.125,
                "p{q} reported {got}, more than 12.5% above true {truth}"
            );
        }
        assert_eq!(snap.percentile(0.0), 1, "p0 is the first non-empty bucket");
    }

    #[test]
    fn mean_is_exact() {
        let hist = Histogram::new();
        for v in [10u64, 20, 30] {
            hist.record(v);
        }
        assert!((hist.snapshot().mean() - 20.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 2, 3, 100, 5_000]);
        let b = mk(&[3, 4, 900, 900, u64::MAX]);
        let c = mk(&[0, 0, 77, 1 << 40]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum, a.sum.wrapping_add(b.sum));
    }

    #[test]
    fn concurrent_recording_keeps_snapshots_consistent() {
        use std::sync::atomic::AtomicBool;

        let hist = Histogram::new();
        let stop = Arc::new(AtomicBool::new(false));
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 20_000;

        let recorders: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        hist.record(t as u64 * 1_000 + i % 997);
                    }
                })
            })
            .collect();

        // Snapshot continuously while recorders run: the count (sum of
        // bucket counts) must be monotonically non-decreasing — a torn or
        // double-counted bucket would break monotonicity or the final total.
        let observer = {
            let hist = hist.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let count = hist.snapshot().count();
                    assert!(count >= last, "snapshot count went backwards: {count} < {last}");
                    last = count;
                }
            })
        };

        for r in recorders {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        observer.join().unwrap();

        let final_snap = hist.snapshot();
        assert_eq!(final_snap.count(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge subtraction saturates");
    }

    #[test]
    fn snapshot_round_trips_through_bincode() {
        let hist = Histogram::new();
        for v in [1u64, 50, 1_000_000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let bytes = bincode::serialize(&snap).unwrap();
        let back: HistogramSnapshot = bincode::deserialize(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
