//! Live telemetry scraping over the wire.
//!
//! Exercises the `WireMessage::StatsRequest` → `Event::StatsReply` flow
//! end to end: a real cluster serves real client traffic, then an external
//! scrape connection pulls one replica's metric registry and span ring over
//! TCP and the test checks three things —
//!
//! 1. the scraped counters agree with the replica's in-process registry
//!    (the wire path adds or loses nothing),
//! 2. the scraped span ring assembles into a complete submit→reply trace
//!    for a known command, with the intermediate lifecycle phases present
//!    and in causal order,
//! 3. transport counters (`net.*`) prove the data really crossed sockets.

use std::time::Duration;

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::NodeId;
use net::{scrape_stats, NetCluster, NetConfig};
use telemetry::trace::assemble;
use telemetry::{RegistrySnapshot, TracePhase};

const NODES: usize = 3;
const OPS: u64 = 25;

/// Commands this replica led to a decision, over any path.
fn led_decisions(snap: &RegistrySnapshot) -> u64 {
    snap.counter("decisions.fast")
        + snap.counter("caesar.decisions.slow_retry")
        + snap.counter("caesar.decisions.slow_proposal")
        + snap.counter("caesar.decisions.recovered")
}

#[test]
fn scraped_stats_cover_submit_to_reply_and_match_the_registry() {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    let client = cluster.client(NodeId(0));
    let mut known = None;
    for i in 0..OPS {
        let reply = client
            .submit(Op::put(100 + i, i))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .expect("replies");
        known = Some(reply.command);
    }
    let known = known.expect("at least one reply");

    let scrape = scrape_stats(cluster.addr(NodeId(0))).expect("scrape answers");
    assert_eq!(scrape.from, NodeId(0));

    // Every command was submitted to (and thus led by) replica 0, and all
    // replies are in, so its decision counters are quiescent: the wire
    // snapshot must agree exactly with the in-process registry.
    let offline = cluster.replica_registry(NodeId(0)).snapshot();
    assert!(
        led_decisions(&scrape.snapshot) >= OPS,
        "replica 0 led every command: {:?}",
        scrape.snapshot.counters
    );
    assert_eq!(
        led_decisions(&scrape.snapshot),
        led_decisions(&offline),
        "wire-scraped decision counts must match the in-process registry"
    );
    assert!(scrape.snapshot.counter("commands.executed") >= OPS);
    assert!(scrape.snapshot.counter("net.frames_received") > 0, "scrape went over real sockets");

    // The span ring joins into an end-to-end trace for the last command.
    let set = assemble(std::slice::from_ref(&scrape.spans));
    let trace = set.traces.get(&known).expect("scraped ring holds the known command");
    assert!(trace.complete(), "trace must cover submit->reply: {:?}", trace.events);
    let submit = trace.first(TracePhase::Submit).expect("submit span").at;
    let reply = trace.first(TracePhase::Reply).expect("reply span").at;
    assert!(submit <= reply, "submit at {submit} must not follow reply at {reply}");
    for phase in
        [TracePhase::Propose, TracePhase::QuorumReached, TracePhase::Commit, TracePhase::Execute]
    {
        let event = trace.first(phase).unwrap_or_else(|| panic!("{phase:?} span missing"));
        assert!(
            (submit..=reply).contains(&event.at),
            "{phase:?} at {} outside submit..=reply ({submit}..={reply})",
            event.at
        );
    }

    cluster.shutdown();
}
