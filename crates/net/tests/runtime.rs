//! Transport-level integration tests: reconnect to late-starting peers, WAN
//! emulation through the delay shim, outbox batching, the external
//! TCP client protocol (`ClientRequest`/`ClientReply` framing, reconnect,
//! and abort-on-shutdown), frame-corruption teardown, and crash/restart of
//! a live replica on its original address.

use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op, SessionError};
use consensus_types::{Command, CommandId, NodeId};
use net::{DelayShim, NetCluster, NetConfig, NetReplica, NetReplicaConfig, ReplicaClient};
use simnet::{Context, LatencyMatrix, Process};

/// A minimal process: broadcasts each client command's value to the other
/// replicas and records every peer message it receives.
struct Relay {
    seen: Arc<Mutex<Vec<(NodeId, u64)>>>,
}

impl Process for Relay {
    type Message = u64;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, u64>) {
        ctx.broadcast_others(cmd.value());
    }

    fn on_message(&mut self, from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
        self.seen.lock().expect("seen lock").push((from, msg));
    }
}

/// Grabs an OS-assigned loopback port and releases it, so a replica can be
/// started on a *known* address later than its peers.
fn reserve_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("reserved addr")
}

#[test]
fn writer_reconnects_to_a_late_starting_peer() {
    let late_addr = reserve_addr();

    // Replica 0 comes up immediately with an address book that points at a
    // port nobody is listening on yet.
    let seen0 = Arc::new(Mutex::new(Vec::new()));
    let mut early = NetReplica::spawn(
        NetReplicaConfig::loopback(NodeId(0), 2),
        Relay { seen: Arc::clone(&seen0) },
    )
    .expect("early replica binds");
    let early_addr = early.local_addr();
    early.start(vec![early_addr, late_addr]);

    // A client command makes replica 0 broadcast while its only peer is still
    // down; the writer thread must retry until the peer appears.
    early
        .mailbox()
        .send(net::WireMessage::Client { cmd: Command::put(CommandId::new(NodeId(0), 1), 1, 42) })
        .expect("local submit");
    std::thread::sleep(Duration::from_millis(150));

    // Now the late replica binds the reserved address and joins.
    let seen1 = Arc::new(Mutex::new(Vec::new()));
    let mut config = NetReplicaConfig::loopback(NodeId(1), 2);
    config.bind = late_addr;
    let mut late =
        NetReplica::spawn(config, Relay { seen: Arc::clone(&seen1) }).expect("late replica binds");
    late.start(vec![early_addr, late_addr]);

    // A second command proves the link; the first may or may not have been
    // queued long enough — both are fine, reconnect just has to deliver one.
    early
        .mailbox()
        .send(net::WireMessage::Client { cmd: Command::put(CommandId::new(NodeId(0), 2), 1, 43) })
        .expect("local submit");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let seen = seen1.lock().expect("seen lock").clone();
        if seen.iter().any(|&(from, value)| from == NodeId(0) && value >= 42) {
            break;
        }
        assert!(Instant::now() < deadline, "late replica never heard from the early one: {seen:?}");
        std::thread::sleep(Duration::from_millis(5));
    }

    assert!(early.stats().connects.get() >= 1, "early replica never established the outbound link");
    early.shutdown();
    late.shutdown();
}

#[test]
fn delay_shim_emulates_wan_latency_on_loopback() {
    // 40 ms RTT everywhere → 20 ms one-way; a fast decision needs two
    // communication delays, so no command can finish in under ~40 ms even
    // though the sockets are loopback.
    let shim = DelayShim::new(LatencyMatrix::uniform(3, 40.0), 1.0);
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster = NetCluster::start(NetConfig::new(3).with_delay(shim), move |id| {
        CaesarReplica::new(id, caesar.clone())
    })
    .expect("cluster starts");

    cluster
        .submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 5, 1))
        .expect("submit over TCP");
    let decisions = cluster.wait_for_decisions(NodeId(0), 1, Duration::from_secs(20));
    assert_eq!(decisions.len(), 1);
    let latency_us = decisions[0].latency();
    assert!(
        latency_us >= 35_000,
        "decision latency {latency_us} µs is below the emulated 2×20 ms WAN floor"
    );
    assert!(
        latency_us < 2_000_000,
        "decision latency {latency_us} µs is wildly above the emulated WAN"
    );
    cluster.shutdown();
}

#[test]
fn external_client_gets_read_your_writes_and_survives_reconnect() {
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(3), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    let addr = cluster.addr(NodeId(1));

    // An "external" client: a fresh TCP connection speaking only the wire
    // protocol (ClientRequest frames out, ClientReply events back).
    let client = ReplicaClient::connect(addr, NodeId(1), 10_000).expect("client connects");
    let write = client.put(7, 42).expect("write replies");
    assert_eq!(write.node, NodeId(1));
    let read = client.get(7).expect("read replies");
    assert_eq!(read.output, Some(42), "the read must observe the write");
    let resume_from = client.last_seq();
    client.shutdown();

    // Reconnect (same replica, disjoint sequence range) and read again: the
    // replica's state machine survived the client connection.
    let client = ReplicaClient::connect(addr, NodeId(1), resume_from).expect("client reconnects");
    let read = client.get(7).expect("read after reconnect replies");
    assert_eq!(read.output, Some(42), "state must survive a client reconnect");
    client.shutdown();
    cluster.shutdown();
}

#[test]
fn session_clients_submit_through_the_cluster_handle_over_tcp() {
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(3), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    let client = cluster.client(NodeId(0));
    let write = client.submit(Op::put(5, 9)).expect("submits").wait().expect("replies");
    assert_eq!(write.node, NodeId(0));
    let read = client.submit(Op::get(5)).expect("submits").wait().expect("replies");
    assert_eq!(read.output, Some(9));
    cluster.shutdown();
}

#[test]
fn tickets_fail_instead_of_hanging_when_the_cluster_shuts_down_mid_run() {
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(3), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    // Take down a quorum so new commands can never commit, then submit.
    cluster.stop_replica(NodeId(1));
    cluster.stop_replica(NodeId(2));
    std::thread::sleep(Duration::from_millis(100));
    let ticket = cluster.client(NodeId(0)).submit(Op::put(1, 1)).expect("submits");
    let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(100));
    cluster.shutdown();
    match waiter.join().expect("waiter thread") {
        Err(SessionError::Disconnected(_)) => {}
        other => panic!("expected a disconnect error, got {other:?}"),
    }
}

#[test]
fn corrupt_frames_tear_down_the_connection_and_are_counted() {
    use std::io::{Read as _, Write as _};

    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut replica = NetReplica::spawn(
        NetReplicaConfig::loopback(NodeId(0), 1),
        Relay { seen: Arc::clone(&seen) },
    )
    .expect("replica binds");
    let addr = replica.local_addr();
    replica.start(vec![addr]);

    // A raw socket sends a frame whose length prefix is valid but whose
    // payload was flipped in flight: only the CRC-32 can catch it.
    let mut framed = net::wire::frame_bytes(&net::WireMessage::<u64>::Hello { from: NodeId(9) })
        .expect("frame encodes");
    let last = framed.len() - 1;
    framed[last] ^= 0x40;
    let mut sock = std::net::TcpStream::connect(addr).expect("client connects");
    sock.write_all(&framed).expect("corrupt frame sent");

    // The replica must sever the connection (EOF on our side) …
    sock.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout set");
    let mut buf = [0u8; 16];
    match sock.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("replica kept talking on a poisoned stream ({n} bytes)"),
        Err(err) => panic!("expected clean EOF, got {err}"),
    }
    // … and account the corruption.
    assert_eq!(replica.stats().corrupt_frames.get(), 1);

    // A healthy connection afterwards still works: the replica survived.
    let mut sock = std::net::TcpStream::connect(addr).expect("reconnect");
    let clean = net::wire::frame_bytes(&net::WireMessage::<u64>::Hello { from: NodeId(9) })
        .expect("frame encodes");
    sock.write_all(&clean).expect("clean frame sent");
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.stats().frames_received.get() == 0 {
        assert!(Instant::now() < deadline, "replica never decoded the clean frame");
        std::thread::sleep(Duration::from_millis(5));
    }
    replica.shutdown();
}

#[test]
fn killed_replica_restarts_on_its_address_and_rejoins() {
    const NODES: usize = 5;
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let make = {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    };
    let mut cluster = NetCluster::start(NetConfig::new(NODES), make).expect("cluster starts");
    let crash_node = NodeId(4);
    let crash_addr = cluster.addr(crash_node);

    // Pre-crash traffic: every reply awaited, so all of it is committed
    // before the crash (distinct keys keep dependencies empty, which lets
    // the fresh post-restart replica execute later commands immediately).
    for i in 0..5u64 {
        let reply = cluster
            .client(NodeId(0))
            .submit(Op::put(100 + i, i))
            .expect("submits")
            .wait_timeout(Duration::from_secs(30))
            .expect("replies before the crash");
        assert_eq!(reply.node, NodeId(0));
    }

    // Crash: the replica goes away mid-run; the remaining four keep quorum.
    cluster.stop_replica(crash_node);
    std::thread::sleep(Duration::from_millis(100));
    for i in 0..5u64 {
        cluster
            .client(NodeId(1))
            .submit(Op::put(200 + i, i))
            .expect("submits during downtime")
            .wait_timeout(Duration::from_secs(30))
            .expect("quorum of four still decides");
    }

    // Restart on the **same address** with a fresh process; surviving peers
    // re-dial it through their reconnect backoff.
    let executed_before_restart = cluster.decisions(crash_node).len();
    cluster
        .restart_replica(crash_node, CaesarReplica::new(crash_node, caesar.clone()))
        .expect("replica restarts on its old address");
    assert_eq!(cluster.addr(crash_node), crash_addr, "restart must reuse the address");

    // Replies resume for commands submitted at a survivor …
    for i in 0..5u64 {
        cluster
            .client(NodeId(0))
            .submit(Op::put(300 + i, i))
            .expect("submits after restart")
            .wait_timeout(Duration::from_secs(30))
            .expect("replies resume after restart");
    }
    // … the restarted replica rejoins execution (its decision stream grows
    // with the post-restart commands) …
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let executed = cluster.decisions(crash_node).len();
        if executed >= executed_before_restart + 5 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted replica stuck at {executed} of {} executions",
            executed_before_restart + 5
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // … and it serves external clients again, end to end through itself.
    let client =
        ReplicaClient::connect(crash_addr, crash_node, 900_000).expect("client reaches restart");
    let write = client.put(400, 7).expect("write through the restarted replica");
    assert_eq!(write.node, crash_node);
    let read = client.get(400).expect("read through the restarted replica");
    assert_eq!(read.output, Some(7), "read-your-writes at the restarted replica");
    client.shutdown();
    cluster.shutdown();
}

#[test]
fn requests_during_restore_fail_fast_with_an_abort() {
    // A replica started in catch-up mode whose peers are all unreachable
    // stays in the *restoring* state until its catch-up timeout. Client
    // requests submitted meanwhile must be answered with an immediate
    // Reply-level error — not parked until the 60 s session timeout.
    let dead_peer_a = reserve_addr();
    let dead_peer_b = reserve_addr();
    let mut config = NetReplicaConfig::loopback(NodeId(0), 3);
    config.catch_up = true;
    config.catch_up_timeout = Duration::from_secs(30);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut replica =
        NetReplica::spawn(config, Relay { seen: Arc::clone(&seen) }).expect("replica binds");
    let addr = replica.local_addr();
    replica.start(vec![addr, dead_peer_a, dead_peer_b]);

    let client = ReplicaClient::connect(addr, NodeId(0), 0).expect("client connects");
    let started = Instant::now();
    match client.put(1, 1) {
        Err(SessionError::Disconnected(reason)) => {
            assert!(reason.contains("restoring"), "unexpected abort reason: {reason}");
        }
        other => panic!("expected a restoring abort, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the abort took {:?} — restoring replicas must fail requests immediately",
        started.elapsed()
    );
    client.shutdown();
    replica.shutdown();
}

#[test]
fn peer_writers_batch_bursts_into_fewer_flushes() {
    let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(3), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    // A burst of non-conflicting commands: many frames per link, queued
    // back-to-back, so writers get the chance to flush several per wakeup.
    for i in 0..60u64 {
        let origin = NodeId::from_index((i % 3) as usize);
        cluster
            .submit(origin, Command::put(CommandId::new(origin, i + 1), 1_000 + i, i))
            .expect("submit over TCP");
    }
    let per_node = cluster.wait_for_all(60, Duration::from_secs(30));
    for decisions in &per_node {
        assert_eq!(decisions.len(), 60);
    }
    let (sent, _, dropped) = cluster.transport_totals();
    let batches = cluster.batches_flushed();
    assert_eq!(dropped, 0);
    assert!(batches > 0, "writers must account their flushes");
    assert!(batches <= sent, "a flush writes at least one frame (sent {sent}, batches {batches})");
    assert!(
        cluster.writev_flushes() > 0,
        "a burst of {sent} frames across {batches} flushes must have gathered \
         at least one multi-frame writev"
    );
    cluster.shutdown();
}
