//! The replica's single I/O thread: an epoll event loop over the
//! [`reactor`] crate.
//!
//! One `EventLoop` owns **every** socket of a replica — the listener, the
//! outbound peer links, inbound peer connections, decision-stream
//! subscribers, and external client connections — as nonblocking descriptors
//! registered with a [`reactor::Poller`]. That replaces the seed transport's
//! reader-thread-per-connection and writer-thread-per-peer model: a replica
//! now runs O(1) threads (this loop plus the core loop) no matter how many
//! clients connect.
//!
//! Data flow:
//!
//! * **inbound bytes** are read on readability into a per-connection
//!   [`FrameBuffer`], decoded incrementally (partial frames survive until
//!   the next readability), and forwarded to the core loop's mailbox;
//! * **outbound frames** arrive pre-serialized from the core loop through
//!   the [`IoQueue`] (an [`reactor::Waker`]-signalled command queue), are
//!   appended to per-connection write buffers **as whole frames** — no
//!   copy into a contiguous staging buffer — and are flushed
//!   interest-driven with `writev` scatter-gather (`write_vectored`): all
//!   frames queued for one wakeup leave in a single syscall, each gathered
//!   straight from its own allocation (`writev_flushes` counts the
//!   multi-frame gathers). A buffer that does not drain in one call
//!   registers write interest and finishes when epoll reports writability;
//! * **artificial WAN delays** (the [`crate::DelayShim`]) become epoll-wait
//!   deadlines: a delayed frame sits in its peer link's queue and the loop's
//!   `epoll_wait` timeout is the earliest pending deadline — no thread ever
//!   sleeps per frame;
//! * **peer links** (re)connect with nonblocking `connect`: completion is a
//!   writability event, refusal re-arms a backoff deadline. Frames queued
//!   while a link is down wait (bounded) and flush on reconnect.
//!
//! Frames that fail their CRC-32 check poison the stream: the connection is
//! torn down and `corrupt_frames` incremented — resynchronizing with a
//! corrupted byte stream is not possible, reconnecting is.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use consensus_types::{CommandId, NodeId};
use reactor::{Events, Interest, PollEvent, Poller, Token, Waker};

use crate::replica::NetReplicaStats;
use crate::wire::{frame_bytes, is_checksum_error, Event, FrameBuffer, WireMessage};
use telemetry::Registry;

/// Token of the [`IoQueue`] waker.
const WAKER: Token = Token(0);
/// Token of the listener.
const LISTENER: Token = Token(1);
/// First token handed to connections.
const FIRST_CONN: u64 = 2;

/// Hard cap on one connection's buffered outbound bytes; a sink that stalls
/// past this is torn down instead of growing the buffer forever.
const MAX_WRITE_BUFFER: usize = 64 * 1024 * 1024;

/// Most frames gathered into one `writev` call (Linux caps an iovec array at
/// `IOV_MAX` = 1024; staying far below it keeps the stack allocation small).
const MAX_IOV: usize = 64;

/// Cap on frames queued for a peer whose link is down. The protocols
/// tolerate message loss (their timeouts re-drive agreement), so beyond this
/// the oldest frames are dropped and counted.
const MAX_DOWN_QUEUE: usize = 100_000;

/// How long a nonblocking peer dial may stay in flight before it is torn
/// down and re-armed. Without this, a peer host that blackholes SYNs (no
/// RST) would pin the link in `connecting` for the kernel's multi-minute
/// SYN timeout; with it, re-linking after the host returns takes a backoff,
/// not a kernel retry cycle.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Commands the core loop (or the replica handle) sends to the I/O thread.
/// Frames arrive pre-serialized so the event loop never touches the
/// (protocol-generic) message type on the send path.
pub(crate) enum IoCmd {
    /// The cluster address book: dial every remote peer and keep the links
    /// alive from now on.
    DialPeers(Vec<(NodeId, SocketAddr)>),
    /// A framed peer envelope, to be written to `to`'s link once
    /// `deliver_at` has passed (the delay shim's artificial WAN deadline).
    SendPeer {
        /// Destination replica.
        to: NodeId,
        /// Artificial delivery deadline (now, when no shim is configured).
        deliver_at: Instant,
        /// The length-prefixed, checksummed frame.
        frame: Vec<u8>,
    },
    /// A framed [`Event::ClientReply`] for whichever connection submitted
    /// `command`. Dropped silently if that connection is gone.
    ClientReply {
        /// The command the reply answers.
        command: CommandId,
        /// The framed reply event.
        frame: Vec<u8>,
    },
    /// A framed [`Event::Decisions`] batch for every subscriber (the frame
    /// is reference-counted onto each subscriber's write buffer, not
    /// copied).
    Publish {
        /// The framed decision event.
        frame: Vec<u8>,
    },
    /// Flush what can be flushed without blocking, abort still-pending
    /// client requests, close every socket, and exit the loop.
    Shutdown,
}

/// The cross-thread command queue into the event loop: push commands, the
/// eventfd waker makes the poller return, the I/O thread drains.
pub(crate) struct IoQueue {
    cmds: Mutex<Vec<IoCmd>>,
    waker: Waker,
}

impl IoQueue {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(Self { cmds: Mutex::new(Vec::new()), waker: Waker::new()? })
    }

    /// Enqueues one command and wakes the loop.
    pub(crate) fn push(&self, cmd: IoCmd) {
        self.cmds.lock().expect("io queue lock").push(cmd);
        let _ = self.waker.wake();
    }

    /// Enqueues a batch with a single wakeup (the flush path pushes every
    /// frame of one core-loop step together).
    pub(crate) fn push_many(&self, cmds: impl IntoIterator<Item = IoCmd>) {
        let mut queue = self.cmds.lock().expect("io queue lock");
        let before = queue.len();
        queue.extend(cmds);
        let pushed = queue.len() > before;
        drop(queue);
        if pushed {
            let _ = self.waker.wake();
        }
    }

    fn drain(&self) -> Vec<IoCmd> {
        std::mem::take(&mut *self.cmds.lock().expect("io queue lock"))
    }
}

/// What a registered connection is.
#[derive(Clone, Copy)]
enum ConnKind {
    /// Accepted by the listener: a peer's outbound link, a subscriber, or an
    /// external client — the first frames tell us which.
    Inbound,
    /// Our outbound link to a peer replica.
    Peer(NodeId),
}

/// Pending outbound frames of one connection. Frames are queued **whole**,
/// by reference count — never copied into a contiguous staging buffer — and
/// flushed with scatter-gather `writev` ([`Write::write_vectored`]), so a
/// frame produced once by the core loop travels zero-copy to every socket
/// it goes to (a decision batch shared by N subscribers is one allocation,
/// not N). Frame boundaries keep the `frames_sent` / `frames_dropped` stats
/// exact across partial writes: a frame counts as *sent* the moment its
/// last byte reaches the socket, and only frames never fully written count
/// as dropped on teardown.
#[derive(Default)]
struct WriteBuf {
    /// Queued frames, oldest first. The front frame may be partially
    /// written ([`WriteBuf::front_written`] bytes of it already left).
    frames: VecDeque<Arc<Vec<u8>>>,
    /// Bytes of the front frame already written in an earlier call.
    front_written: usize,
    /// Total unwritten bytes across all queued frames.
    queued_bytes: usize,
}

impl WriteBuf {
    fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    fn push_frame(&mut self, frame: Arc<Vec<u8>>) {
        self.queued_bytes += frame.len();
        self.frames.push_back(frame);
    }

    /// Unwritten bytes queued (the back-pressure measure capped by
    /// [`MAX_WRITE_BUFFER`]).
    fn pending_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Fills `slices` with the unwritten tail of every queued frame (at
    /// most [`MAX_IOV`]), ready for one `writev`.
    fn gather<'a>(&'a self, slices: &mut Vec<IoSlice<'a>>) {
        slices.clear();
        for (index, frame) in self.frames.iter().take(MAX_IOV).enumerate() {
            let bytes = if index == 0 { &frame[self.front_written..] } else { &frame[..] };
            slices.push(IoSlice::new(bytes));
        }
    }

    /// Accounts `written` bytes accepted by the socket; returns how many
    /// frames that completed.
    fn consume(&mut self, written: usize) -> u64 {
        self.queued_bytes -= written;
        let mut acc = self.front_written + written;
        let mut completed = 0;
        while let Some(front) = self.frames.front() {
            if acc < front.len() {
                break;
            }
            acc -= front.len();
            self.frames.pop_front();
            completed += 1;
        }
        self.front_written = acc;
        completed
    }

    /// Frames with at least one byte still unwritten (lost if the
    /// connection dies now).
    fn unsent_frames(&self) -> u64 {
        self.frames.len() as u64
    }
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    /// A peer link whose nonblocking `connect` has not completed yet;
    /// writability (or an error event) resolves it.
    connecting: bool,
    read: FrameBuffer,
    write: WriteBuf,
    /// Whether write interest is currently registered.
    wants_write: bool,
    /// This connection asked for the decision stream.
    subscribed: bool,
    /// Reply routes this connection registered (cleared on teardown so a
    /// dead client does not leak routes).
    registered: Vec<CommandId>,
}

/// Our outbound link to one peer replica, across reconnects.
struct PeerLink {
    addr: SocketAddr,
    /// Token of the live (or connecting) connection, if any.
    token: Option<u64>,
    /// When to dial again while down.
    retry_at: Option<Instant>,
    /// While a dial is in flight: when to give up on it.
    connect_deadline: Option<Instant>,
    /// Frames waiting for their delivery deadline or for the link to come
    /// up. Deadlines are monotone per link, so this is a FIFO.
    queued: VecDeque<(Instant, Arc<Vec<u8>>)>,
}

pub(crate) struct EventLoop<M> {
    id: NodeId,
    poller: Poller,
    listener: TcpListener,
    queue: Arc<IoQueue>,
    mailbox: Sender<WireMessage<M>>,
    conns: HashMap<u64, Conn>,
    peers: HashMap<NodeId, PeerLink>,
    /// Which connection answers each in-flight `ClientRequest`.
    routes: HashMap<CommandId, u64>,
    next_token: u64,
    reconnect_backoff: Duration,
    /// The replica's telemetry registry, snapshotted to answer
    /// [`WireMessage::StatsRequest`] frames without a core-loop round trip.
    registry: Arc<Registry>,
    stats: Arc<NetReplicaStats>,
    /// Live decision-stream subscribers, shared with the core loop so it
    /// can skip serializing `Event::Decisions` batches nobody will read.
    subscriber_count: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    /// Set by [`IoCmd::Shutdown`] (or a dead core loop): exit after this
    /// iteration's flush. Shutdown travels through the command queue — never
    /// the flag alone — so every frame the core loop pushed before stopping
    /// is flushed first.
    stop: bool,
}

impl<M> EventLoop<M>
where
    M: serde::Serialize + serde::Deserialize,
{
    // One constructor, one internal call site; the alternative is a
    // parameter struct that would only be destructured right back.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        listener: TcpListener,
        queue: Arc<IoQueue>,
        mailbox: Sender<WireMessage<M>>,
        reconnect_backoff: Duration,
        registry: Arc<Registry>,
        stats: Arc<NetReplicaStats>,
        subscriber_count: Arc<AtomicUsize>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<Self> {
        let poller = Poller::new()?;
        poller.register(queue.waker.fd(), WAKER, Interest::READABLE)?;
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        Ok(Self {
            id,
            poller,
            listener,
            queue,
            mailbox,
            conns: HashMap::new(),
            peers: HashMap::new(),
            routes: HashMap::new(),
            next_token: FIRST_CONN,
            reconnect_backoff,
            registry,
            stats,
            subscriber_count,
            shutdown,
            stop: false,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            let fired: Vec<PollEvent> = events.iter().collect();
            for event in fired {
                match event.token {
                    WAKER => self.queue.waker.drain(),
                    LISTENER => self.accept_ready(),
                    Token(token) => self.conn_ready(token, event),
                }
            }
            self.drain_queue();
            let now = Instant::now();
            self.redial_due_peers(now);
            self.enqueue_due_frames(now);
            self.flush_dirty();
            if self.stop {
                break;
            }
        }
        self.teardown_all();
    }

    /// The `epoll_wait` deadline: the earliest delayed-frame delivery or
    /// peer redial, capped so a missed edge can never wedge the loop.
    fn next_timeout(&self) -> Duration {
        let mut deadline: Option<Instant> = None;
        let mut consider = |at: Instant| match deadline {
            Some(current) if current <= at => {}
            _ => deadline = Some(at),
        };
        for link in self.peers.values() {
            if let Some(at) = link.retry_at {
                consider(at);
            }
            if let Some(at) = link.connect_deadline {
                consider(at);
            }
            // A frame deadline only matters once the link is up: while the
            // connect is in flight, the wake-up is its writability event
            // (or the connect deadline above), and a due frame must not
            // spin the loop with a zero timeout.
            let live = link
                .token
                .is_some_and(|token| self.conns.get(&token).is_some_and(|conn| !conn.connecting));
            if live {
                if let Some(&(at, _)) = link.queued.front() {
                    consider(at);
                }
            }
        }
        let cap = Duration::from_millis(500);
        match deadline {
            Some(at) => at.saturating_duration_since(Instant::now()).min(cap),
            None => cap,
        }
    }

    // ---- command queue ---------------------------------------------------

    /// Applies every queued command, in order; [`IoCmd::Shutdown`] arms
    /// [`Self::stop`] after the commands before it have been applied.
    fn drain_queue(&mut self) {
        for cmd in self.queue.drain() {
            match cmd {
                IoCmd::DialPeers(book) => {
                    let now = Instant::now();
                    for (to, addr) in book {
                        self.peers.insert(
                            to,
                            PeerLink {
                                addr,
                                token: None,
                                retry_at: Some(now),
                                connect_deadline: None,
                                queued: VecDeque::new(),
                            },
                        );
                    }
                }
                IoCmd::SendPeer { to, deliver_at, frame } => {
                    if let Some(link) = self.peers.get_mut(&to) {
                        if link.queued.len() >= MAX_DOWN_QUEUE {
                            link.queued.pop_front();
                            self.stats.frames_dropped.inc();
                        }
                        link.queued.push_back((deliver_at, Arc::new(frame)));
                    }
                }
                IoCmd::ClientReply { command, frame } => {
                    if let Some(&token) = self.routes.get(&command) {
                        self.append_frame(token, Arc::new(frame));
                    }
                    self.routes.remove(&command);
                }
                IoCmd::Publish { frame } => {
                    let subscribed: Vec<u64> = self
                        .conns
                        .iter()
                        .filter(|(_, conn)| conn.subscribed)
                        .map(|(&token, _)| token)
                        .collect();
                    let frame = Arc::new(frame);
                    for token in subscribed {
                        self.append_frame(token, Arc::clone(&frame));
                    }
                }
                IoCmd::Shutdown => self.stop = true,
            }
        }
    }

    // ---- accept / read ---------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let _ = self.insert_conn(stream, ConnKind::Inbound, false);
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // EMFILE & friends: the connection stays in the backlog
                    // and the level-triggered listener would refire
                    // instantly; a brief pause keeps a fd-exhausted replica
                    // from spinning a core while it degrades.
                    std::thread::sleep(Duration::from_millis(2));
                    return;
                }
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream, kind: ConnKind, connecting: bool) -> Option<u64> {
        let token = self.next_token;
        self.next_token += 1;
        let interest = if connecting { Interest::WRITABLE } else { Interest::READABLE };
        if self.poller.register(stream.as_raw_fd(), Token(token), interest).is_err() {
            return None; // fd broken; the stream drops and closes here
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                kind,
                connecting,
                read: FrameBuffer::new(),
                write: WriteBuf::default(),
                wants_write: connecting,
                subscribed: false,
                registered: Vec::new(),
            },
        );
        Some(token)
    }

    fn conn_ready(&mut self, token: u64, event: PollEvent) {
        if !self.conns.contains_key(&token) {
            return; // torn down earlier in this batch
        }
        if self.conns[&token].connecting {
            // Any readiness on a connecting socket resolves the connect.
            self.finish_connect(token);
            return;
        }
        if event.readable {
            self.read_ready(token);
        }
        if event.writable && self.conns.contains_key(&token) {
            self.write_ready(token);
        }
        if event.error && !event.readable && self.conns.contains_key(&token) {
            self.teardown(token);
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(conn) => conn,
                None => return,
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.teardown(token);
                    return;
                }
                Ok(n) => {
                    conn.read.extend(&chunk[..n]);
                    if !self.decode_ready_frames(token) {
                        return; // connection torn down or core loop gone
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.teardown(token);
                    return;
                }
            }
        }
    }

    /// Decodes and dispatches every complete frame buffered on `token`.
    /// Returns `false` if the connection was torn down.
    fn decode_ready_frames(&mut self, token: u64) -> bool {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(conn) => conn,
                None => return false,
            };
            let message: WireMessage<M> = match conn.read.next_msg() {
                Ok(Some(message)) => message,
                Ok(None) => return true,
                Err(err) => {
                    if is_checksum_error(&err) {
                        self.stats.corrupt_frames.inc();
                    }
                    self.teardown(token);
                    return false;
                }
            };
            match message {
                WireMessage::Subscribe => {
                    if !conn.subscribed {
                        conn.subscribed = true;
                        self.subscriber_count.fetch_add(1, Ordering::Relaxed);
                    }
                }
                WireMessage::ClientRequest { cmd } => {
                    let id = cmd.id();
                    conn.registered.push(id);
                    self.routes.insert(id, token);
                    self.stats.frames_received.inc();
                    if self.mailbox.send(WireMessage::ClientRequest { cmd }).is_err() {
                        self.stop = true; // core loop is gone
                        return false;
                    }
                }
                WireMessage::StatsRequest => {
                    // Answered right here on the requesting connection: the
                    // registry is lock-free to snapshot, so a scrape never
                    // queues behind — or perturbs — the consensus core loop.
                    self.stats.frames_received.inc();
                    let reply = Event::StatsReply {
                        from: self.id,
                        snapshot: self.registry.snapshot(),
                        spans: self.registry.spans(),
                    };
                    if let Ok(frame) = frame_bytes(&reply) {
                        self.append_frame(token, Arc::new(frame));
                    }
                }
                message => {
                    self.stats.frames_received.inc();
                    if self.mailbox.send(message).is_err() {
                        self.stop = true; // core loop is gone
                        return false;
                    }
                }
            }
        }
    }

    // ---- peer links ------------------------------------------------------

    fn redial_due_peers(&mut self, now: Instant) {
        // Give up on dials that outlived their deadline (a blackholed SYN
        // never produces a readiness event); teardown re-arms the backoff.
        let stale: Vec<u64> = self
            .peers
            .values()
            .filter(|link| link.connect_deadline.is_some_and(|at| at <= now))
            .filter_map(|link| link.token)
            .collect();
        for token in stale {
            self.teardown(token);
        }
        let due: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(_, link)| link.retry_at.is_some_and(|at| at <= now))
            .map(|(&to, _)| to)
            .collect();
        for to in due {
            self.dial(to);
        }
    }

    fn dial(&mut self, to: NodeId) {
        let link = match self.peers.get_mut(&to) {
            Some(link) => link,
            None => return,
        };
        link.retry_at = None;
        let dialed = reactor::connect_stream(link.addr)
            .ok()
            .and_then(|stream| self.insert_conn(stream, ConnKind::Peer(to), true));
        if let Some(link) = self.peers.get_mut(&to) {
            match dialed {
                Some(token) => {
                    link.token = Some(token);
                    link.connect_deadline =
                        Some(Instant::now() + CONNECT_TIMEOUT.max(self.reconnect_backoff));
                }
                None => link.retry_at = Some(Instant::now() + self.reconnect_backoff),
            }
        }
    }

    /// Resolves a nonblocking connect once epoll reports the socket ready.
    fn finish_connect(&mut self, token: u64) {
        let conn = match self.conns.get_mut(&token) {
            Some(conn) => conn,
            None => return,
        };
        if !matches!(conn.kind, ConnKind::Peer(_)) {
            return;
        }
        if reactor::take_socket_error(conn.stream.as_raw_fd()).is_err() {
            self.teardown(token);
            return;
        }
        let _ = conn.stream.set_nodelay(true);
        conn.connecting = false;
        conn.wants_write = false;
        let _ = self.poller.reregister(conn.stream.as_raw_fd(), Token(token), Interest::READABLE);
        self.stats.connects.inc();
        if let ConnKind::Peer(to) = conn.kind {
            if let Some(link) = self.peers.get_mut(&to) {
                link.connect_deadline = None;
            }
        }
        // Announce ourselves, then let any frames that queued while the link
        // was down flow in the next flush pass.
        match frame_bytes(&WireMessage::<M>::Hello { from: self.id }) {
            Ok(hello) => self.append_frame(token, Arc::new(hello)),
            Err(_) => self.teardown(token),
        }
    }

    /// Moves every due frame from peer queues into the live links' write
    /// buffers. All frames due at one wakeup join one buffer — one `write`.
    fn enqueue_due_frames(&mut self, now: Instant) {
        let live: Vec<NodeId> =
            self.peers.iter().filter(|(_, link)| link.token.is_some()).map(|(&to, _)| to).collect();
        for to in live {
            let link = match self.peers.get_mut(&to) {
                Some(link) => link,
                None => continue,
            };
            let Some(token) = link.token else { continue };
            if self.conns.get(&token).is_none_or(|conn| conn.connecting) {
                continue;
            }
            let mut due: Vec<Arc<Vec<u8>>> = Vec::new();
            while let Some(&(at, _)) = link.queued.front() {
                if at > now {
                    break;
                }
                due.push(link.queued.pop_front().expect("frame present").1);
            }
            for frame in due {
                self.append_frame(token, frame);
            }
        }
    }

    // ---- writes ----------------------------------------------------------

    /// Appends a frame to `token`'s write buffer (flushed by
    /// [`EventLoop::flush_dirty`] or on writability). The frame is queued by
    /// reference — shared frames (decision batches) are not copied per
    /// connection.
    fn append_frame(&mut self, token: u64, frame: Arc<Vec<u8>>) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.write.pending_bytes() + frame.len() > MAX_WRITE_BUFFER {
            self.teardown(token);
            return;
        }
        conn.write.push_frame(frame);
    }

    /// One flush attempt for every connection with buffered output.
    fn flush_dirty(&mut self) {
        let dirty: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| !conn.connecting && !conn.write.is_empty())
            .map(|(&token, _)| token)
            .collect();
        for token in dirty {
            self.write_ready(token);
        }
    }

    /// Writes as much buffered output as the socket accepts, gathering every
    /// queued frame into one `writev` (scatter-gather) call per pass — the
    /// frames go from their own allocations straight to the kernel, with no
    /// intermediate copy. Registers write interest on a partial write,
    /// drops it once the buffer drains.
    fn write_ready(&mut self, token: u64) {
        let mut completed: u64 = 0;
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(conn) => conn,
                None => return,
            };
            if conn.write.is_empty() {
                break;
            }
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(conn.write.frames.len().min(MAX_IOV));
            conn.write.gather(&mut slices);
            let gathered = slices.len();
            let result = conn.stream.write_vectored(&slices);
            match result {
                Ok(0) => {
                    self.teardown(token);
                    return;
                }
                Ok(n) => {
                    completed += conn.write.consume(n);
                    if gathered > 1 {
                        self.stats.writev_flushes.inc();
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.teardown(token);
                    return;
                }
            }
        }
        let conn = match self.conns.get_mut(&token) {
            Some(conn) => conn,
            None => return,
        };
        if completed > 0 {
            self.stats.frames_sent.add(completed);
            self.stats.batches_flushed.inc();
        }
        if conn.write.is_empty() {
            if conn.wants_write {
                conn.wants_write = false;
                let _ = self.poller.reregister(
                    conn.stream.as_raw_fd(),
                    Token(token),
                    Interest::READABLE,
                );
            }
        } else if !conn.wants_write {
            conn.wants_write = true;
            let _ = self.poller.reregister(conn.stream.as_raw_fd(), Token(token), Interest::BOTH);
        }
    }

    // ---- teardown --------------------------------------------------------

    /// Closes one connection: deregisters the fd, drops its reply routes and
    /// subscription, and re-arms the redial timer if it was a peer link.
    fn teardown(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.write.unsent_frames() > 0 {
            self.stats.frames_dropped.add(conn.write.unsent_frames());
        }
        if conn.subscribed {
            self.subscriber_count.fetch_sub(1, Ordering::Relaxed);
        }
        for id in &conn.registered {
            if self.routes.get(id) == Some(&token) {
                self.routes.remove(id);
            }
        }
        if let ConnKind::Peer(to) = conn.kind {
            if let Some(link) = self.peers.get_mut(&to) {
                if link.token == Some(token) {
                    link.token = None;
                    link.connect_deadline = None;
                    link.retry_at = Some(Instant::now() + self.reconnect_backoff);
                }
            }
        }
    }

    /// Shutdown: answer every pending client request with an abort, attempt
    /// one last nonblocking flush everywhere, and close all sockets.
    fn teardown_all(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let pending: Vec<(CommandId, u64)> = self.routes.drain().collect();
        for (command, token) in pending {
            let abort = Event::ClientAbort {
                from: self.id,
                command,
                reason: "replica shut down before the command executed".to_string(),
            };
            if let Ok(frame) = frame_bytes(&abort) {
                self.append_frame(token, Arc::new(frame));
            }
        }
        self.flush_dirty();
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(len: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; len])
    }

    #[test]
    fn write_buf_tracks_frame_boundaries_across_partial_writes() {
        let mut buf = WriteBuf::default();
        buf.push_frame(frame(10, 1));
        buf.push_frame(frame(5, 2));
        buf.push_frame(frame(8, 3));
        assert_eq!(buf.pending_bytes(), 23);
        assert_eq!(buf.unsent_frames(), 3);

        // A partial write through the first frame completes nothing.
        assert_eq!(buf.consume(7), 0);
        assert_eq!(buf.pending_bytes(), 16);
        // Finishing frame 1 and all of frame 2 completes two frames.
        assert_eq!(buf.consume(8), 2);
        assert_eq!(buf.unsent_frames(), 1);
        // The rest of frame 3.
        assert_eq!(buf.consume(8), 1);
        assert!(buf.is_empty());
        assert_eq!(buf.pending_bytes(), 0);
    }

    #[test]
    fn gather_offsets_the_partially_written_front_frame() {
        let mut buf = WriteBuf::default();
        buf.push_frame(frame(10, 1));
        buf.push_frame(frame(4, 2));
        assert_eq!(buf.consume(6), 0); // 6 of the first frame already left

        let mut slices: Vec<IoSlice<'_>> = Vec::new();
        buf.gather(&mut slices);
        assert_eq!(slices.len(), 2, "both frames gather into one writev");
        assert_eq!(slices[0].len(), 4, "front frame offset by the written prefix");
        assert_eq!(slices[1].len(), 4);
        assert_eq!(slices.iter().map(|s| s.len()).sum::<usize>(), buf.pending_bytes());
    }

    #[test]
    fn gather_caps_the_iovec_count() {
        let mut buf = WriteBuf::default();
        for _ in 0..(MAX_IOV + 10) {
            buf.push_frame(frame(3, 9));
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::new();
        buf.gather(&mut slices);
        assert_eq!(slices.len(), MAX_IOV);
        // Consuming everything the capped gather covered leaves the rest.
        let covered: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(buf.consume(covered), MAX_IOV as u64);
        assert_eq!(buf.unsent_frames(), 10);
    }

    #[test]
    fn shared_frames_are_not_copied_per_connection() {
        let shared = frame(64, 7);
        let mut a = WriteBuf::default();
        let mut b = WriteBuf::default();
        a.push_frame(Arc::clone(&shared));
        b.push_frame(Arc::clone(&shared));
        // One allocation, three handles: the two buffers queue the same bytes.
        assert_eq!(Arc::strong_count(&shared), 3);
        assert_eq!(a.pending_bytes(), 64);
        assert_eq!(b.pending_bytes(), 64);
    }
}
