//! Socket-based TCP transport runtime: the third runtime of the CAESAR
//! reproduction, next to the `simnet` discrete-event simulator and the
//! `cluster` in-process thread runtime.
//!
//! The paper evaluates CAESAR on five real EC2 sites. This crate closes the
//! gap between the simulator and such a deployment: it takes **any**
//! [`simnet::Process`] implementation — CAESAR, EPaxos, Multi-Paxos,
//! Mencius, M²Paxos, unchanged — and runs an N-node cluster over real TCP
//! sockets with real serialization, real kernel buffers and real
//! backpressure:
//!
//! * [`wire`] — length-prefixed bincode framing with the
//!   [`WireMessage`] envelope (peer messages, client commands, timer
//!   wakeups) and the [`Event`] decision stream;
//! * [`NetReplica`] — one replica: a listener plus reader threads feeding a
//!   mailbox, a core loop driving the process through
//!   [`simnet::Context::for_runtime`], per-peer writer threads with
//!   automatic reconnect, and a timer wheel mapping `SimTime` timeouts onto
//!   wall-clock deadlines;
//! * [`NetCluster`] — an orchestrator that spawns N replicas on loopback
//!   ports, submits client commands and collects decisions **over the
//!   wire**, supports clean shutdown, and can emulate the paper's EC2
//!   latency matrix on loopback via the [`DelayShim`].
//!
//! The implementation is deliberately runtime-agnostic std networking
//! (threads + blocking sockets) rather than an async stack: the offline
//! build environment has no tokio, and at the cluster sizes the paper
//! studies (N ≤ 11) a thread-per-link design measures the same protocol
//! behaviour. The wire protocol and public API would be unchanged by an
//! async internals swap.
//!
//! # Example
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_types::{Command, CommandId, NodeId};
//! use net::{NetCluster, NetConfig};
//!
//! let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
//! let cluster = NetCluster::start(NetConfig::new(3), move |id| {
//!     CaesarReplica::new(id, caesar.clone())
//! })
//! .expect("cluster starts");
//! cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1)).unwrap();
//! let decisions = cluster.wait_for_decisions(NodeId(0), 1, std::time::Duration::from_secs(10));
//! assert_eq!(decisions.len(), 1);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod cluster;
mod replica;
pub mod wire;

pub use client::ReplicaClient;
pub use cluster::{NetCluster, NetConfig};
pub use replica::{DelayShim, NetReplica, NetReplicaConfig, NetReplicaStats};
pub use wire::{Event, WireMessage};
