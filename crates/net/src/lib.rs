//! Socket-based TCP transport runtime: the third runtime of the CAESAR
//! reproduction, next to the `simnet` discrete-event simulator and the
//! `cluster` in-process thread runtime.
//!
//! The paper evaluates CAESAR on five real EC2 sites. This crate closes the
//! gap between the simulator and such a deployment: it takes **any**
//! [`simnet::Process`] implementation — CAESAR, EPaxos, Multi-Paxos,
//! Mencius, M²Paxos, unchanged — and runs an N-node cluster over real TCP
//! sockets with real serialization, real kernel buffers and real
//! backpressure:
//!
//! * [`wire`] — checksummed, length-prefixed bincode framing (`u32`
//!   length, CRC-32, payload) with the [`WireMessage`] envelope (peer
//!   messages, client commands, timer wakeups) and the [`Event`] decision
//!   stream;
//!   decoding is incremental ([`wire::FrameBuffer`]) so nonblocking reads
//!   never desynchronize a stream;
//! * [`NetReplica`] — one replica, running **O(1) threads regardless of
//!   connection count**: an epoll *event loop* (built on the `reactor`
//!   crate's `Poller`/`Token`/`Interest` layer) owns the listener, every
//!   peer link, subscriber, and client connection as nonblocking sockets
//!   with per-connection read/write buffers and interest-driven flushing;
//!   a *core loop* drives the process through
//!   [`simnet::Context::for_runtime`] and maps `SimTime` timeouts onto
//!   wall-clock deadlines;
//! * [`NetCluster`] — an orchestrator that spawns N replicas on loopback
//!   ports, submits client commands and collects decisions **over the
//!   wire**, supports clean shutdown plus crash/restart of individual
//!   replicas, and can emulate the paper's EC2 latency matrix on loopback
//!   via the [`DelayShim`].
//!
//! Each replica executes decided commands against a pluggable
//! [`consensus_core::StateMachine`] (the `kvstore` reference implementation
//! unless [`NetConfig::with_state_machine`] installs another), checkpoints
//! it every `checkpoint_interval` commands, and retains the decided suffix
//! since. That powers **snapshot-based state transfer**: a replica
//! restarted via [`NetCluster::restart_replica`] comes back empty,
//! broadcasts [`WireMessage::SnapshotRequest`], installs the first complete
//! [`WireMessage::SnapshotChunk`] transfer (checkpoint + suffix replay +
//! the donor's dedup window), and hands its protocol a
//! `consensus_types::StateTransfer` (`Process::on_state_transfer`): the
//! floor-compacted applied-id summary plus the donor's execution cursor, so
//! dependency-tracked protocols (CAESAR, EPaxos) stop waiting on covered
//! ids and slot-based ones (Multi-Paxos, Mencius, M²Paxos) fast-forward
//! their next-execute slot / per-leader slots / per-object slot vectors
//! instead of stalling at their slot gap. All five protocols then serve
//! reads that reflect pre-crash writes (`tests/restart_catch_up.rs` runs
//! the matrix). While restoring a replica fails client requests fast with
//! an abort; submissions to a replica the orchestrator stopped fail at
//! submit time. The full lifecycle is documented in `docs/RECOVERY.md`.
//!
//! Snapshot transfer needs a live donor. [`NetConfig::with_data_dir`] (or
//! [`NetReplicaConfig::data_dir`] directly) removes that dependency: each
//! replica keeps a durable write-ahead log (the `wal` crate) in its own
//! subdirectory, appending decided commands before execution and committing
//! them — under the configured [`FsyncPolicy`] — before client replies go
//! out. A restarted replica replays its own log first and uses snapshot
//! transfer only as the fallback for whatever disk could not provide, so
//! [`NetCluster::power_cycle`] can stop **every** replica and bring the
//! whole cluster back from its data dirs with zero live donors. See
//! `docs/DURABILITY.md` for the log format and recovery decision tree.
//!
//! The event-loop internals replaced the seed's thread-per-link blocking
//! I/O precisely because the paper's headline result is throughput at scale:
//! hundreds of concurrent clients per replica are two file descriptors per
//! connection, not two OS threads. The wire protocol and the public
//! `NetReplica`/`NetCluster`/[`ReplicaClient`] API survived the swap
//! unchanged (the frames merely gained the CRC-32 header field). There is
//! still no async runtime underneath — just epoll, raw and readable.
//!
//! # Example
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_types::{Command, CommandId, NodeId};
//! use net::{NetCluster, NetConfig};
//!
//! let caesar = CaesarConfig::new(3).with_recovery_timeout(None);
//! let cluster = NetCluster::start(NetConfig::new(3), move |id| {
//!     CaesarReplica::new(id, caesar.clone())
//! })
//! .expect("cluster starts");
//! cluster.submit(NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1)).unwrap();
//! let decisions = cluster.wait_for_decisions(NodeId(0), 1, std::time::Duration::from_secs(10));
//! assert_eq!(decisions.len(), 1);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod cluster;
mod event_loop;
mod replica;
pub mod wire;

pub use client::{scrape_stats, scrape_stats_deadline, ReplicaClient, StatsScrape};
pub use cluster::{NetCluster, NetConfig};
pub use replica::{DelayShim, NetReplica, NetReplicaConfig, NetReplicaStats};
pub use wal::FsyncPolicy;
pub use wire::{Event, WireMessage};
