//! Orchestration of an N-replica cluster over loopback TCP.
//!
//! [`NetCluster`] is the socket-runtime analogue of `cluster::Cluster` and
//! the simulator: it spawns one [`NetReplica`] per node on an OS-assigned
//! loopback port, distributes the address book, opens one *client*
//! connection per replica for command submission, and subscribes to every
//! replica's decision stream so tests and examples can assert on delivery
//! orders observed **over the wire** — not through shared memory.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_types::{Command, Decision, NodeId};
use simnet::Process;

use crate::replica::{DelayShim, NetReplica, NetReplicaConfig};
use crate::wire::{send_msg, Event, FrameReader, WireMessage};

/// Configuration of a socket-backed cluster.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of replicas to spawn.
    pub nodes: usize,
    /// Optional artificial WAN delay applied to every replica's outbound
    /// frames (and self-deliveries), emulating the paper's EC2 matrix.
    pub delay: Option<DelayShim>,
    /// Multiplier mapping `SimTime` protocol timeouts onto wall-clock time.
    pub timer_scale: f64,
}

impl NetConfig {
    /// A loopback cluster with no artificial delay and real-time timers.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self { nodes, delay: None, timer_scale: 1.0 }
    }

    /// Installs an artificial-delay shim.
    #[must_use]
    pub fn with_delay(mut self, delay: DelayShim) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Sets the timer scale factor.
    #[must_use]
    pub fn with_timer_scale(mut self, scale: f64) -> Self {
        self.timer_scale = scale;
        self
    }
}

/// A per-replica client connection: the write half submits commands, a
/// background reader collects decision events.
struct ClientLink {
    writer: Mutex<TcpStream>,
}

/// A running cluster of socket-backed replicas.
pub struct NetCluster<P: Process> {
    replicas: Vec<NetReplica<P>>,
    links: Vec<ClientLink>,
    decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    readers: Vec<JoinHandle<()>>,
    reader_stop: Arc<AtomicBool>,
    started_at: Instant,
}

impl<P> NetCluster<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    /// Spawns `config.nodes` replicas on loopback, links them, and connects
    /// a submission/subscription client to each.
    pub fn start(config: NetConfig, mut make: impl FnMut(NodeId) -> P) -> io::Result<Self> {
        let epoch = Instant::now();
        // Phase 1: bind every listener so the address book is complete.
        let mut replicas = Vec::with_capacity(config.nodes);
        for index in 0..config.nodes {
            let id = NodeId::from_index(index);
            let mut replica_config = NetReplicaConfig::loopback(id, config.nodes);
            replica_config.delay = config.delay.clone();
            replica_config.timer_scale = config.timer_scale;
            replica_config.epoch = epoch;
            replicas.push(NetReplica::spawn(replica_config, make(id))?);
        }
        let addrs: Vec<SocketAddr> = replicas.iter().map(NetReplica::local_addr).collect();
        // Phase 2: hand out the address book; peer links dial lazily.
        for replica in &mut replicas {
            replica.start(addrs.clone());
        }
        // Phase 3: one client connection per replica; subscribe first so no
        // decision event can precede registration.
        let decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let reader_stop = Arc::new(AtomicBool::new(false));
        let mut links = Vec::with_capacity(config.nodes);
        let mut readers = Vec::with_capacity(config.nodes);
        for &addr in &addrs {
            let mut writer = TcpStream::connect(addr)?;
            writer.set_nodelay(true)?;
            send_msg(&mut writer, &WireMessage::<P::Message>::Subscribe)?;
            let read_half = writer.try_clone()?;
            let sink = Arc::clone(&decisions);
            let stop = Arc::clone(&reader_stop);
            readers.push(std::thread::spawn(move || client_reader(read_half, &sink, &stop)));
            links.push(ClientLink { writer: Mutex::new(writer) });
        }
        Ok(Self { replicas, links, decisions, readers, reader_stop, started_at: epoch })
    }

    /// Submits a client command to `node` over its TCP client connection.
    pub fn submit(&self, node: NodeId, cmd: Command) -> io::Result<()> {
        let link = &self.links[node.index()];
        let mut writer = link.writer.lock().expect("client writer lock");
        send_msg(&mut *writer, &WireMessage::<P::Message>::Client { cmd })
    }

    /// Decisions received from `node`'s decision stream so far, in the order
    /// that replica executed them.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> Vec<Decision> {
        self.decisions.lock().expect("decision map lock").get(&node).cloned().unwrap_or_default()
    }

    /// Blocks until `node` has reported at least `count` executed commands or
    /// the timeout elapses; returns whatever has been reported by then.
    #[must_use]
    pub fn wait_for_decisions(
        &self,
        node: NodeId,
        count: usize,
        timeout: Duration,
    ) -> Vec<Decision> {
        let deadline = Instant::now() + timeout;
        loop {
            let current = self.decisions(node);
            if current.len() >= count || Instant::now() >= deadline {
                return current;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Waits until **every** replica has reported at least `count` executed
    /// commands (or the timeout elapses) and returns the per-node decision
    /// vectors indexed by node.
    #[must_use]
    pub fn wait_for_all(&self, count: usize, timeout: Duration) -> Vec<Vec<Decision>> {
        let deadline = Instant::now() + timeout;
        (0..self.replicas.len())
            .map(|index| {
                let node = NodeId::from_index(index);
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.wait_for_decisions(node, count, remaining)
            })
            .collect()
    }

    /// Number of replicas in the cluster.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.replicas.len()
    }

    /// The listen address of `node` (loopback, OS-assigned port).
    #[must_use]
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.replicas[node.index()].local_addr()
    }

    /// Total frames sent/received/dropped across all replicas.
    #[must_use]
    pub fn transport_totals(&self) -> (u64, u64, u64) {
        let mut sent = 0;
        let mut received = 0;
        let mut dropped = 0;
        for replica in &self.replicas {
            let stats = replica.stats();
            sent += stats.frames_sent.load(Ordering::Relaxed);
            received += stats.frames_received.load(Ordering::Relaxed);
            dropped += stats.frames_dropped.load(Ordering::Relaxed);
        }
        (sent, received, dropped)
    }

    /// Wall-clock time since the cluster started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops every replica and joins all cluster threads.
    pub fn shutdown(self) {
        for link in &self.links {
            let mut writer = link.writer.lock().expect("client writer lock");
            let _ = send_msg(&mut *writer, &WireMessage::<P::Message>::Shutdown);
        }
        for replica in self.replicas {
            replica.shutdown();
        }
        self.reader_stop.store(true, Ordering::SeqCst);
        drop(self.links); // closes client sockets; readers see EOF
        for reader in self.readers {
            let _ = reader.join();
        }
    }
}

fn client_reader(
    mut stream: TcpStream,
    sink: &Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    stop: &Arc<AtomicBool>,
) {
    // Timeout-tolerant decoding: a read timeout mid-frame must not lose the
    // partial bytes (see wire::FrameReader).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut decoder = FrameReader::new();
    loop {
        match decoder.read_msg::<_, Event>(&mut stream) {
            Ok(Some(Event::Decisions { from, batch })) => {
                sink.lock().expect("decision map lock").entry(from).or_default().extend(batch);
            }
            Ok(None) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
