//! Orchestration of an N-replica cluster over loopback TCP.
//!
//! [`NetCluster`] is the socket-runtime analogue of `cluster::Cluster` and
//! the simulator: it spawns one [`NetReplica`] per node on an OS-assigned
//! loopback port, distributes the address book, opens one *client*
//! connection per replica, and subscribes to every replica's decision stream
//! so tests and examples can assert on delivery orders observed **over the
//! wire** — not through shared memory.
//!
//! It also implements the runtime-agnostic
//! [`consensus_core::session::ClusterHandle`]: session clients submit
//! [`WireMessage::ClientRequest`] frames and receive
//! [`Event::ClientReply`] frames on the same connection, exactly like a
//! fully external process would (see [`crate::ReplicaClient`]).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_core::batch::BatchConfig;
use consensus_core::session::{
    ClientHandle, ClusterHandle, ParkDrive, Reply, SessionCore, SessionError, SubmitTransport,
    DEFAULT_IN_FLIGHT,
};
use consensus_core::state_machine::StateMachineFactory;
use consensus_types::{Command, Decision, NodeId};
use kvstore::KvStore;
use simnet::Process;
use wal::FsyncPolicy;

use crate::replica::{DelayShim, NetReplica, NetReplicaConfig, NetReplicaStats};
use crate::wire::{send_msg, Event, FrameReader, WireMessage};

/// Configuration of a socket-backed cluster.
#[derive(Clone)]
pub struct NetConfig {
    /// Number of replicas to spawn.
    pub nodes: usize,
    /// Optional artificial WAN delay applied to every replica's outbound
    /// frames (and self-deliveries), emulating the paper's EC2 matrix.
    pub delay: Option<DelayShim>,
    /// Multiplier mapping `SimTime` protocol timeouts onto wall-clock time.
    pub timer_scale: f64,
    /// Bound on client-session commands in flight before `submit` pushes
    /// back.
    pub max_in_flight: usize,
    /// Builds each replica's state machine (the `kvstore` reference
    /// implementation by default). A restarted replica gets a **fresh**
    /// machine from this factory and fills it through snapshot catch-up.
    pub state_machine: StateMachineFactory,
    /// Per-replica checkpoint cadence (applied commands between snapshot
    /// cuts); see `NetReplicaConfig::checkpoint_interval`.
    pub checkpoint_interval: u64,
    /// How long a restarted replica waits for a complete snapshot transfer
    /// before serving with empty state.
    pub catch_up_timeout: Duration,
    /// Root directory for per-replica write-ahead logs: replica *i* logs
    /// into `<root>/replica-<i>`. When set, every replica appends decided
    /// commands durably and recovers disk-first on restart — which is what
    /// makes [`NetCluster::power_cycle`] (stop *everything*, restart from
    /// data dirs, zero live donors) possible. `None` keeps the cluster
    /// memory-only.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the write-ahead logs (per-record, per-batch, or
    /// interval); only consulted when [`NetConfig::data_dir`] is set.
    pub fsync: FsyncPolicy,
    /// Proposer batching knobs, forwarded to every replica (see
    /// [`NetReplicaConfig::batch`]). Disabled by default.
    pub batch: BatchConfig,
    /// Execution workers per replica (see [`NetReplicaConfig::exec_workers`]).
    pub exec_workers: usize,
    /// Per-node override of [`NetConfig::exec_workers`], for clusters that
    /// mix serial and sharded replicas (parity tests rely on this).
    pub exec_workers_per_node: Option<Vec<usize>>,
}

impl std::fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConfig")
            .field("nodes", &self.nodes)
            .field("delay", &self.delay)
            .field("timer_scale", &self.timer_scale)
            .field("max_in_flight", &self.max_in_flight)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("catch_up_timeout", &self.catch_up_timeout)
            .field("data_dir", &self.data_dir)
            .field("fsync", &self.fsync)
            .field("batch", &self.batch)
            .field("exec_workers", &self.exec_workers)
            .finish_non_exhaustive()
    }
}

impl NetConfig {
    /// A loopback cluster with no artificial delay and real-time timers.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            delay: None,
            timer_scale: 1.0,
            max_in_flight: DEFAULT_IN_FLIGHT,
            state_machine: KvStore::factory(),
            checkpoint_interval: 64,
            catch_up_timeout: Duration::from_secs(10),
            data_dir: None,
            fsync: FsyncPolicy::PerBatch,
            batch: BatchConfig::disabled(),
            exec_workers: 1,
            exec_workers_per_node: None,
        }
    }

    /// Enables proposer batching with the given maximum batch size.
    #[must_use]
    pub fn with_batch(mut self, max_batch: usize) -> Self {
        self.batch = BatchConfig { max_batch: max_batch.max(1), ..BatchConfig::default() };
        self
    }

    /// Sets the number of execution workers per replica.
    #[must_use]
    pub fn with_exec_workers(mut self, workers: usize) -> Self {
        self.exec_workers = workers.max(1);
        self
    }

    /// Overrides the worker count per node (missing entries fall back to
    /// [`NetConfig::exec_workers`]).
    #[must_use]
    pub fn with_exec_workers_per_node(mut self, workers: Vec<usize>) -> Self {
        self.exec_workers_per_node = Some(workers);
        self
    }

    /// The executor worker count for replica `index`.
    #[must_use]
    pub fn exec_workers_for(&self, index: usize) -> usize {
        self.exec_workers_per_node
            .as_ref()
            .and_then(|w| w.get(index).copied())
            .unwrap_or(self.exec_workers)
            .max(1)
    }

    /// Installs an artificial-delay shim.
    #[must_use]
    pub fn with_delay(mut self, delay: DelayShim) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Sets the timer scale factor.
    #[must_use]
    pub fn with_timer_scale(mut self, scale: f64) -> Self {
        self.timer_scale = scale;
        self
    }

    /// Sets the client-session in-flight bound.
    #[must_use]
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max;
        self
    }

    /// Replaces the per-replica state-machine factory (defaults to the
    /// `kvstore` reference implementation).
    #[must_use]
    pub fn with_state_machine(mut self, factory: StateMachineFactory) -> Self {
        self.state_machine = factory;
        self
    }

    /// Sets the checkpoint cadence (applied commands between snapshot cuts).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Gives every replica a durable write-ahead log under
    /// `<root>/replica-<i>` (see [`NetConfig::data_dir`]).
    #[must_use]
    pub fn with_data_dir(mut self, root: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(root.into());
        self
    }

    /// Sets the write-ahead-log fsync policy (per-batch by default).
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// The write-ahead-log directory of replica `node`, if the cluster is
    /// durable.
    #[must_use]
    pub fn replica_data_dir(&self, node: NodeId) -> Option<PathBuf> {
        self.data_dir.as_ref().map(|root| root.join(format!("replica-{}", node.index())))
    }
}

/// A per-replica client connection: the write half submits commands, a
/// background reader collects decision events and routes client replies.
struct ClientLink {
    writer: Mutex<TcpStream>,
}

/// A running cluster of socket-backed replicas.
pub struct NetCluster<P: Process> {
    replicas: Vec<NetReplica<P>>,
    links: Arc<Vec<ClientLink>>,
    decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    session: Arc<SessionCore>,
    /// One decision-stream reader thread per node (slot replaced on
    /// restart, after the previous incarnation's reader was joined).
    readers: Vec<Option<JoinHandle<()>>>,
    reader_stop: Arc<AtomicBool>,
    /// Per-replica down markers: set by [`NetCluster::stop_replica`],
    /// cleared by [`NetCluster::restart_replica`]. Session submissions to a
    /// marked replica fail immediately instead of writing into a dead
    /// socket's buffer and hanging until the ticket timeout.
    down: Arc<Vec<AtomicBool>>,
    started_at: Instant,
    config: NetConfig,
}

impl<P> NetCluster<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    /// Spawns `config.nodes` replicas on loopback, links them, and connects
    /// a submission/subscription client to each.
    pub fn start(config: NetConfig, mut make: impl FnMut(NodeId) -> P) -> io::Result<Self> {
        let epoch = Instant::now();
        // Phase 1: bind every listener so the address book is complete.
        let mut replicas = Vec::with_capacity(config.nodes);
        for index in 0..config.nodes {
            let id = NodeId::from_index(index);
            let mut replica_config = NetReplicaConfig::loopback(id, config.nodes);
            replica_config.delay = config.delay.clone();
            replica_config.timer_scale = config.timer_scale;
            replica_config.epoch = epoch;
            replica_config.state_machine = Arc::clone(&config.state_machine);
            replica_config.checkpoint_interval = config.checkpoint_interval;
            replica_config.catch_up_timeout = config.catch_up_timeout;
            replica_config.data_dir =
                config.data_dir.as_ref().map(|root| root.join(format!("replica-{index}")));
            replica_config.fsync = config.fsync.clone();
            replica_config.batch = config.batch;
            replica_config.exec_workers = config.exec_workers_for(index);
            replicas.push(NetReplica::spawn(replica_config, make(id))?);
        }
        let addrs: Vec<SocketAddr> = replicas.iter().map(NetReplica::local_addr).collect();
        // Phase 2: hand out the address book; peer links dial lazily.
        for replica in &mut replicas {
            replica.start(addrs.clone());
        }
        // Phase 3: one client connection per replica; subscribe first so no
        // decision event can precede registration.
        let decisions: Arc<Mutex<HashMap<NodeId, Vec<Decision>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let session = SessionCore::new(config.max_in_flight);
        let reader_stop = Arc::new(AtomicBool::new(false));
        let down = Arc::new((0..config.nodes).map(|_| AtomicBool::new(false)).collect::<Vec<_>>());
        let mut links = Vec::with_capacity(config.nodes);
        let mut readers = Vec::with_capacity(config.nodes);
        for (index, &addr) in addrs.iter().enumerate() {
            let node = NodeId::from_index(index);
            let mut writer = TcpStream::connect(addr)?;
            writer.set_nodelay(true)?;
            send_msg(&mut writer, &WireMessage::<P::Message>::Subscribe)?;
            let read_half = writer.try_clone()?;
            let sink = Arc::clone(&decisions);
            let stop = Arc::clone(&reader_stop);
            let session = Arc::clone(&session);
            readers.push(Some(std::thread::spawn(move || {
                client_reader(read_half, node, &sink, &session, &stop);
            })));
            links.push(ClientLink { writer: Mutex::new(writer) });
        }
        Ok(Self {
            replicas,
            links: Arc::new(links),
            decisions,
            session,
            readers,
            reader_stop,
            down,
            started_at: epoch,
            config,
        })
    }

    /// Submits a client command to `node` over its TCP client connection,
    /// without waiting for a reply. Session clients obtained through
    /// [`ClusterHandle::client`] additionally route the reply back.
    pub fn submit(&self, node: NodeId, cmd: Command) -> io::Result<()> {
        let link = &self.links[node.index()];
        let mut writer = link.writer.lock().expect("client writer lock");
        send_msg(&mut *writer, &WireMessage::<P::Message>::Client { cmd })
    }

    /// Decisions received from `node`'s decision stream so far, in the order
    /// that replica executed them.
    #[must_use]
    pub fn decisions(&self, node: NodeId) -> Vec<Decision> {
        self.decisions.lock().expect("decision map lock").get(&node).cloned().unwrap_or_default()
    }

    /// Blocks until `node` has reported at least `count` executed commands or
    /// the timeout elapses; returns whatever has been reported by then.
    #[must_use]
    pub fn wait_for_decisions(
        &self,
        node: NodeId,
        count: usize,
        timeout: Duration,
    ) -> Vec<Decision> {
        let deadline = Instant::now() + timeout;
        loop {
            let current = self.decisions(node);
            if current.len() >= count || Instant::now() >= deadline {
                return current;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Waits until **every** replica has reported at least `count` executed
    /// commands (or the timeout elapses) and returns the per-node decision
    /// vectors indexed by node.
    #[must_use]
    pub fn wait_for_all(&self, count: usize, timeout: Duration) -> Vec<Vec<Decision>> {
        let deadline = Instant::now() + timeout;
        (0..self.replicas.len())
            .map(|index| {
                let node = NodeId::from_index(index);
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.wait_for_decisions(node, count, remaining)
            })
            .collect()
    }

    /// Number of replicas in the cluster.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.replicas.len()
    }

    /// The listen address of `node` (loopback, OS-assigned port). External
    /// clients ([`crate::ReplicaClient`]) connect here.
    #[must_use]
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.replicas[node.index()].local_addr()
    }

    /// Requests shutdown of a single replica without stopping the cluster —
    /// for tests that take a node down mid-run. The replica aborts its
    /// pending client requests as it exits.
    pub fn stop_replica(&self, node: NodeId) {
        self.down[node.index()].store(true, Ordering::SeqCst);
        self.replicas[node.index()].request_shutdown();
    }

    /// Restarts a stopped replica **on its original address** with a fresh
    /// process instance, re-links it into the cluster, and re-establishes
    /// the orchestrator's client connection and decision subscription.
    ///
    /// The listener binds with `SO_REUSEADDR`, so lingering `TIME_WAIT`
    /// connections from the replica's previous life do not block the
    /// rebind; surviving peers re-dial the address automatically through
    /// their event loops' reconnect backoff. Decisions the replica reports
    /// after the restart append to the same per-node decision stream.
    pub fn restart_replica(&mut self, node: NodeId, process: P) -> io::Result<()> {
        let index = node.index();
        // Make sure the previous incarnation is fully down (port released),
        // **including its decision-stream reader**: the old reader fails
        // this node's pending session tickets when its connection dies, and
        // joining it here guarantees that happens before any ticket is
        // submitted against the restarted replica — a late `fail_node`
        // must not shoot down fresh, healthy submissions.
        self.replicas[index].stop();
        if let Some(reader) = self.readers[index].take() {
            let _ = reader.join();
        }
        // The new incarnation re-reports everything its snapshot transfer
        // covers on the decision stream (restore completion publishes a
        // synthesized batch); reset this node's sink so the stream shows
        // the new incarnation's history exactly once instead of appending
        // duplicates of the decisions the previous life already streamed.
        self.decisions.lock().expect("decision map lock").insert(node, Vec::new());
        let addrs: Vec<SocketAddr> = self.replicas.iter().map(NetReplica::local_addr).collect();

        let mut replica_config = NetReplicaConfig::loopback(node, self.replicas.len());
        replica_config.bind = addrs[index];
        replica_config.delay = self.config.delay.clone();
        replica_config.timer_scale = self.config.timer_scale;
        replica_config.epoch = self.started_at;
        replica_config.state_machine = Arc::clone(&self.config.state_machine);
        replica_config.checkpoint_interval = self.config.checkpoint_interval;
        replica_config.catch_up_timeout = self.config.catch_up_timeout;
        // With a data dir the incarnation replays its own write-ahead log
        // first (disk-first recovery); without one it starts empty. Either
        // way it also requests snapshot transfer from live peers — the
        // hybrid path: disk provides the pre-crash prefix, a donor provides
        // whatever was decided during the downtime (a donor offering less
        // than disk already recovered is ignored).
        replica_config.data_dir = self.config.replica_data_dir(node);
        replica_config.fsync = self.config.fsync.clone();
        replica_config.batch = self.config.batch;
        replica_config.exec_workers = self.config.exec_workers_for(index);
        replica_config.catch_up = true;
        let mut replica = NetReplica::spawn(replica_config, process)?;

        // Fresh client connection + subscription, established **before** the
        // core loop starts: the restore's synthesized decision batch is
        // published the moment a snapshot transfer completes, and the
        // subscription must already be registered by then (the event loop
        // has been accepting since `spawn`; the transfer cannot finish
        // before the core loop even begins requesting it).
        let mut writer = connect_with_retry(addrs[index], Duration::from_secs(5))?;
        writer.set_nodelay(true)?;
        send_msg(&mut writer, &WireMessage::<P::Message>::Subscribe)?;
        replica.start(addrs.clone());
        self.replicas[index] = replica;

        // A new reader resumes the decision stream into this node's sink.
        let read_half = writer.try_clone()?;
        let sink = Arc::clone(&self.decisions);
        let stop = Arc::clone(&self.reader_stop);
        let session = Arc::clone(&self.session);
        self.readers[index] = Some(std::thread::spawn(move || {
            client_reader(read_half, node, &sink, &session, &stop);
        }));
        *self.links[index].writer.lock().expect("client writer lock") = writer;
        self.down[index].store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Stops **every** replica, then restarts the whole cluster from its
    /// write-ahead logs — a full power cycle with zero live donors.
    ///
    /// Unlike [`NetCluster::restart_replica`], the fresh incarnations do
    /// *not* request snapshot transfer: while all replicas restart together
    /// there is nobody to donate, so each one serves straight from its own
    /// disk-first recovery (latest durable checkpoint + logged suffix +
    /// cursor marks). Pre-crash reads work again as soon as the protocols
    /// re-form a quorum. The cluster should be quiesced (every replica at
    /// the same watermark) before cycling: a command some replicas executed
    /// and others never saw has no live donor to close the gap afterwards —
    /// see `docs/DURABILITY.md`.
    ///
    /// Session sequence counters survive the cycle, so clients keep
    /// submitting fresh command ids. Decision sinks are reset the same way
    /// a single restart resets them: each recovered replica re-reports its
    /// disk-covered history once, as a synthesized batch.
    pub fn power_cycle(&mut self, mut make: impl FnMut(NodeId) -> P) -> io::Result<()> {
        let addrs: Vec<SocketAddr> = self.replicas.iter().map(NetReplica::local_addr).collect();
        // Take everything down: mark nodes down (fail-fast submissions),
        // stop every replica, and join every reader so stale `fail_node`
        // calls land before any new ticket exists.
        for index in 0..self.replicas.len() {
            self.down[index].store(true, Ordering::SeqCst);
            self.replicas[index].stop();
        }
        for reader in self.readers.iter_mut() {
            if let Some(handle) = reader.take() {
                let _ = handle.join();
            }
        }
        {
            let mut sinks = self.decisions.lock().expect("decision map lock");
            for index in 0..addrs.len() {
                sinks.insert(NodeId::from_index(index), Vec::new());
            }
        }
        // Bind every listener first (original addresses; SO_REUSEADDR
        // clears TIME_WAIT), so the address book is valid before any core
        // loop starts dialing.
        let mut fresh = Vec::with_capacity(addrs.len());
        for (index, &addr) in addrs.iter().enumerate() {
            let node = NodeId::from_index(index);
            let mut replica_config = NetReplicaConfig::loopback(node, addrs.len());
            replica_config.bind = addr;
            replica_config.delay = self.config.delay.clone();
            replica_config.timer_scale = self.config.timer_scale;
            replica_config.epoch = self.started_at;
            replica_config.state_machine = Arc::clone(&self.config.state_machine);
            replica_config.checkpoint_interval = self.config.checkpoint_interval;
            replica_config.catch_up_timeout = self.config.catch_up_timeout;
            replica_config.data_dir = self.config.replica_data_dir(node);
            replica_config.fsync = self.config.fsync.clone();
            replica_config.batch = self.config.batch;
            replica_config.exec_workers = self.config.exec_workers_for(node.index());
            replica_config.catch_up = false; // no live donor exists
            fresh.push(NetReplica::spawn(replica_config, make(node))?);
        }
        // Subscribe before starting each core loop: disk recovery publishes
        // its synthesized decision batch immediately, and the subscription
        // must already be registered (the event loops accept since spawn).
        let mut writers = Vec::with_capacity(addrs.len());
        for &addr in &addrs {
            let mut writer = connect_with_retry(addr, Duration::from_secs(5))?;
            writer.set_nodelay(true)?;
            send_msg(&mut writer, &WireMessage::<P::Message>::Subscribe)?;
            writers.push(writer);
        }
        for replica in &mut fresh {
            replica.start(addrs.clone());
        }
        self.replicas = fresh;
        for (index, writer) in writers.into_iter().enumerate() {
            let node = NodeId::from_index(index);
            let read_half = writer.try_clone()?;
            let sink = Arc::clone(&self.decisions);
            let stop = Arc::clone(&self.reader_stop);
            let session = Arc::clone(&self.session);
            self.readers[index] = Some(std::thread::spawn(move || {
                client_reader(read_half, node, &sink, &session, &stop);
            }));
            *self.links[index].writer.lock().expect("client writer lock") = writer;
            self.down[index].store(false, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Total OS threads across all replicas — constant (two per replica:
    /// event loop + core loop) no matter how many clients are connected.
    #[must_use]
    pub fn replica_threads(&self) -> usize {
        self.replicas.iter().map(NetReplica::thread_count).sum()
    }

    /// Total frames sent/received/dropped across all replicas.
    #[must_use]
    pub fn transport_totals(&self) -> (u64, u64, u64) {
        let mut sent = 0;
        let mut received = 0;
        let mut dropped = 0;
        for replica in &self.replicas {
            let stats = replica.stats();
            sent += stats.frames_sent.get();
            received += stats.frames_received.get();
            dropped += stats.frames_dropped.get();
        }
        (sent, received, dropped)
    }

    /// Total batched peer writes across all replicas (each flushes every
    /// frame due at one writer wakeup with a single write call).
    #[must_use]
    pub fn batches_flushed(&self) -> u64 {
        self.replicas.iter().map(|replica| replica.stats().batches_flushed.get()).sum()
    }

    /// The live transport counters of `node`'s current incarnation (reset
    /// on restart).
    #[must_use]
    pub fn replica_stats(&self, node: NodeId) -> &Arc<NetReplicaStats> {
        self.replicas[node.index()].stats()
    }

    /// The telemetry registry of `node`'s current incarnation: protocol
    /// counters, `net.*` transport counters, and the span ring — the same
    /// data a live [`crate::scrape_stats`] of that replica returns.
    #[must_use]
    pub fn replica_registry(&self, node: NodeId) -> &Arc<telemetry::Registry> {
        self.replicas[node.index()].registry()
    }

    /// Total `writev` scatter-gather flushes (two or more frames leaving in
    /// one syscall) across all replicas.
    #[must_use]
    pub fn writev_flushes(&self) -> u64 {
        self.replicas.iter().map(|replica| replica.stats().writev_flushes.get()).sum()
    }

    /// The state-machine digest of `node` (see
    /// [`consensus_core::StateMachine::fingerprint`]).
    #[must_use]
    pub fn state_fingerprint(&self, node: NodeId) -> u64 {
        self.replicas[node.index()].state_fingerprint()
    }

    /// Number of commands `node`'s state machine has applied so far
    /// (including commands replayed through snapshot catch-up).
    #[must_use]
    pub fn applied_through(&self, node: NodeId) -> u64 {
        self.replicas[node.index()].applied_through()
    }

    /// Blocks until `node`'s state machine has applied at least `target`
    /// commands or the timeout elapses; returns the watermark reached.
    pub fn wait_for_applied(&self, node: NodeId, target: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        loop {
            let applied = self.applied_through(node);
            if applied >= target || Instant::now() >= deadline {
                return applied;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Wall-clock time since the cluster started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// Stops every replica, joins all cluster threads, and fails any session
    /// tickets still waiting for a reply.
    pub fn shutdown(self) {
        for link in self.links.iter() {
            let mut writer = link.writer.lock().expect("client writer lock");
            let _ = send_msg(&mut *writer, &WireMessage::<P::Message>::Shutdown);
        }
        for replica in self.replicas {
            replica.shutdown();
        }
        self.reader_stop.store(true, Ordering::SeqCst);
        drop(self.links); // closes client sockets; readers see EOF
        for reader in self.readers.into_iter().flatten() {
            let _ = reader.join();
        }
        self.session.close("cluster shut down");
    }
}

/// Session transport: submissions travel as `ClientRequest` frames over the
/// per-replica client connection, exactly like an external TCP client.
struct NetTransport<M> {
    links: Arc<Vec<ClientLink>>,
    down: Arc<Vec<AtomicBool>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> SubmitTransport for NetTransport<M>
where
    M: serde::Serialize + Send + 'static,
{
    fn submit(&self, node: NodeId, cmd: Command, _delay_us: u64) -> Result<(), SessionError> {
        let link = self
            .links
            .get(node.index())
            .ok_or_else(|| SessionError::Rejected(format!("no replica {node}")))?;
        // Fail fast on a replica the orchestrator took down: a write into
        // the dead connection's kernel buffer would "succeed" and leave the
        // ticket hanging until its timeout.
        if self.down.get(node.index()).is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            return Err(SessionError::Disconnected(format!(
                "replica {node} is down (stopped by the orchestrator)"
            )));
        }
        let mut writer = link.writer.lock().expect("client writer lock");
        send_msg(&mut *writer, &WireMessage::<M>::ClientRequest { cmd })
            .map_err(|err| SessionError::Disconnected(format!("submit to {node} failed: {err}")))
    }
}

impl<P> ClusterHandle for NetCluster<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    fn nodes(&self) -> usize {
        self.replicas.len()
    }

    fn client(&self, node: NodeId) -> ClientHandle {
        ClientHandle::new(
            node,
            Arc::clone(&self.session),
            Arc::new(NetTransport::<P::Message> {
                links: Arc::clone(&self.links),
                down: Arc::clone(&self.down),
                _marker: std::marker::PhantomData,
            }),
            Arc::new(ParkDrive),
        )
    }
}

/// Dials `addr` until it accepts or `timeout` elapses (a restarted replica's
/// listener is bound before `spawn` returns, but the dial can still race the
/// kernel's accept queue under load).
fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(err) if Instant::now() >= deadline => return Err(err),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn client_reader(
    mut stream: TcpStream,
    node: NodeId,
    sink: &Arc<Mutex<HashMap<NodeId, Vec<Decision>>>>,
    session: &Arc<SessionCore>,
    stop: &Arc<AtomicBool>,
) {
    // Timeout-tolerant decoding: a read timeout mid-frame must not lose the
    // partial bytes (see wire::FrameReader).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut decoder = FrameReader::new();
    loop {
        match decoder.read_msg::<_, Event>(&mut stream) {
            Ok(Some(Event::Decisions { from, batch })) => {
                sink.lock().expect("decision map lock").entry(from).or_default().extend(batch);
            }
            Ok(Some(Event::ClientReply { from, command, output, decision })) => {
                session.complete(Reply { command, node: from, output, decision });
            }
            Ok(Some(Event::ClientAbort { command, reason, .. })) => {
                session.fail(command, SessionError::Disconnected(reason));
            }
            // Stats scrapes run over their own connections; a reply here
            // is unsolicited and carries nothing this reader needs.
            Ok(Some(Event::StatsReply { .. })) => {}
            Ok(None) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => {
                // The link died: every command submitted to this replica and
                // still pending will never be answered over it.
                session.fail_node(node, "client connection to the replica was lost");
                return;
            }
        }
    }
}
