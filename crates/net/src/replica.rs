//! One replica running over real sockets.
//!
//! A [`NetReplica`] owns a single [`simnet::Process`] implementation and
//! drives it exactly the way the simulator does — through
//! [`Context::for_runtime`] — but with TCP in place of the event queue. The
//! replica runs **O(1) threads regardless of connection count**:
//!
//! * an **event-loop thread** (see [`crate::event_loop`]) owns every socket
//!   — listener, peer links, subscribers, client connections — as
//!   nonblocking descriptors on one epoll [`reactor::Poller`]; it decodes
//!   inbound frames into the replica's mailbox and flushes per-connection
//!   write buffers interest-driven;
//! * a **core-loop thread** drains the mailbox, invokes the process
//!   callbacks, applies executions to the replica's key-value store, and
//!   maps the process's `SimTime` timers onto wall-clock deadlines in a
//!   local timer wheel (its mailbox wait *is* the timer sleep — it blocks
//!   until the earliest deadline, not on a polling interval).
//!
//! Outbound frames are serialized on the core loop and handed to the event
//! loop pre-framed; the optional [`DelayShim`] attaches an artificial
//! delivery deadline which the event loop honours as an epoll-wait timeout,
//! emulating a WAN latency matrix on loopback without any sleeping thread.
//!
//! Client connections submit [`WireMessage::ClientRequest`] frames; when the
//! command executes at this replica, the core loop emits an
//! [`Event::ClientReply`] carrying the store output and the event loop
//! routes it to the submitting connection. A replica that shuts down with
//! requests still pending answers them with [`Event::ClientAbort`] so no
//! client waits forever.

use std::collections::HashSet;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_types::{CommandId, Execution, NodeId, SimTime};
use kvstore::KvStore;
use simnet::{Context, LatencyMatrix, Process};

use crate::event_loop::{EventLoop, IoCmd, IoQueue};
use crate::wire::{frame_bytes, Event, WireMessage};

/// Emulates a WAN latency matrix on a fast local network by delaying each
/// outbound frame until `one_way(src, dst) × scale` has elapsed since it was
/// produced (the paper's five-site EC2 matrix scaled down keeps tests fast).
#[derive(Debug, Clone)]
pub struct DelayShim {
    latency: LatencyMatrix,
    scale: f64,
}

impl DelayShim {
    /// Creates a shim from a latency matrix and a scale factor (`0.01` turns
    /// a 93 ms one-way delay into 0.93 ms).
    #[must_use]
    pub fn new(latency: LatencyMatrix, scale: f64) -> Self {
        Self { latency, scale }
    }

    /// The artificial one-way delay from `src` to `dst`.
    #[must_use]
    pub fn one_way(&self, src: NodeId, dst: NodeId) -> Duration {
        let us = self.latency.one_way(src, dst) as f64 * self.scale;
        Duration::from_micros(us as u64)
    }
}

/// Configuration of one socket-backed replica.
#[derive(Debug, Clone)]
pub struct NetReplicaConfig {
    /// This replica's identity.
    pub id: NodeId,
    /// Total number of replicas in the cluster.
    pub nodes: usize,
    /// Address to listen on; use port 0 to let the OS pick one. The
    /// listener binds with `SO_REUSEADDR`, so a restarted replica can
    /// reclaim the address of its previous life immediately.
    pub bind: SocketAddr,
    /// Optional artificial-delay shim applied to outbound frames (including
    /// self-deliveries).
    pub delay: Option<DelayShim>,
    /// Multiplier mapping the process's `SimTime` timer delays (µs) onto
    /// wall-clock time; `1.0` means a 500 ms protocol timeout sleeps 500 ms.
    pub timer_scale: f64,
    /// Delay between outbound reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Epoch used for `Context::now`; share one across the cluster so
    /// timestamps are comparable.
    pub epoch: Instant,
}

impl NetReplicaConfig {
    /// A loopback configuration with OS-assigned port and real-time timers.
    #[must_use]
    pub fn loopback(id: NodeId, nodes: usize) -> Self {
        Self {
            id,
            nodes,
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            delay: None,
            timer_scale: 1.0,
            reconnect_backoff: Duration::from_millis(10),
            epoch: Instant::now(),
        }
    }
}

/// Counters exposed by a running replica (all monotone).
#[derive(Debug, Default)]
pub struct NetReplicaStats {
    /// Frames flushed to peer/client sockets (counted when their write
    /// buffer drains).
    pub frames_sent: AtomicU64,
    /// Frames received and enqueued from any connection.
    pub frames_received: AtomicU64,
    /// Outbound frames abandoned: buffered on a connection that died, or
    /// displaced from an over-full down-link queue.
    pub frames_dropped: AtomicU64,
    /// Successful outbound connection establishments (first + re-connects).
    pub connects: AtomicU64,
    /// Write-buffer flush passes that put at least one complete frame on
    /// the wire; all frames buffered on a connection leave in one such pass
    /// ([`Self::frames_sent`] ÷ this is the average batch size).
    pub batches_flushed: AtomicU64,
    /// Frames whose CRC-32 check failed on decode; each one also tears its
    /// connection down (a corrupted stream cannot be resynchronized).
    pub corrupt_frames: AtomicU64,
}

/// A consensus replica served over TCP.
///
/// Returned by [`NetReplica::spawn`] in a *bound but not yet linked* state:
/// the event loop is accepting (so peers can dial in at any time) but the
/// core loop only starts once [`NetReplica::start`] provides the peer
/// address book. This two-phase bring-up lets an orchestrator bind N
/// replicas on OS-assigned ports first and distribute the resulting
/// addresses second.
pub struct NetReplica<P: Process> {
    id: NodeId,
    local_addr: SocketAddr,
    config: NetReplicaConfig,
    process: Option<P>,
    mailbox_tx: Sender<WireMessage<P::Message>>,
    mailbox_rx: Option<Receiver<WireMessage<P::Message>>>,
    io: Arc<IoQueue>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetReplicaStats>,
    subscriber_count: Arc<AtomicUsize>,
    threads: Vec<JoinHandle<()>>,
}

impl<P> NetReplica<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    /// Binds the listener and starts the event-loop thread, which accepts
    /// connections immediately. The process is not driven until
    /// [`NetReplica::start`] is called.
    pub fn spawn(config: NetReplicaConfig, process: P) -> io::Result<Self> {
        let listener = reactor::bind_reusable(config.bind, 1024)?;
        let local_addr = listener.local_addr()?;
        let (mailbox_tx, mailbox_rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetReplicaStats::default());
        let subscriber_count = Arc::new(AtomicUsize::new(0));
        let io = Arc::new(IoQueue::new()?);

        let event_loop = EventLoop::new(
            config.id,
            listener,
            Arc::clone(&io),
            mailbox_tx.clone(),
            config.reconnect_backoff,
            Arc::clone(&stats),
            Arc::clone(&subscriber_count),
            Arc::clone(&shutdown),
        )?;
        let io_thread = std::thread::spawn(move || event_loop.run());

        Ok(Self {
            id: config.id,
            local_addr,
            config,
            process: Some(process),
            mailbox_tx,
            mailbox_rx: Some(mailbox_rx),
            io,
            shutdown,
            stats,
            subscriber_count,
            threads: vec![io_thread],
        })
    }

    /// The address the replica is listening on (useful with port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This replica's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Live transport counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<NetReplicaStats> {
        &self.stats
    }

    /// Number of OS threads this replica runs. Constant — event loop plus
    /// core loop — independent of how many peers or clients are connected.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// A handle for injecting envelopes into the local mailbox without a
    /// socket (used by in-process orchestration and tests).
    #[must_use]
    pub fn mailbox(&self) -> Sender<WireMessage<P::Message>> {
        self.mailbox_tx.clone()
    }

    /// Starts the core loop given the full cluster address book
    /// (`peers[i]` is replica *i*'s listen address; this replica's own entry
    /// is ignored — self-sends short-circuit through the timer wheel).
    ///
    /// # Panics
    ///
    /// Panics if called twice or if `peers.len()` disagrees with the
    /// configured cluster size.
    pub fn start(&mut self, peers: Vec<SocketAddr>) {
        assert_eq!(peers.len(), self.config.nodes, "address book size mismatch");
        let process = self.process.take().expect("NetReplica::start called twice");
        let mailbox_rx = self.mailbox_rx.take().expect("mailbox receiver present");

        // Hand the event loop its address book; it dials (and keeps
        // redialing) every remote peer from its own thread.
        let book: Vec<(NodeId, SocketAddr)> = peers
            .iter()
            .enumerate()
            .map(|(index, &addr)| (NodeId::from_index(index), addr))
            .filter(|&(to, _)| to != self.id)
            .collect();
        self.io.push(IoCmd::DialPeers(book));

        let core = CoreLoop {
            id: self.id,
            nodes: self.config.nodes,
            process,
            mailbox: mailbox_rx,
            io: Arc::clone(&self.io),
            timers: TimerWheel::default(),
            delay: self.config.delay.clone(),
            timer_scale: self.config.timer_scale,
            epoch: self.config.epoch,
            shutdown: Arc::clone(&self.shutdown),
            store: KvStore::new(),
            reply_wanted: HashSet::new(),
            subscribers: Arc::clone(&self.subscriber_count),
        };
        self.threads.push(std::thread::spawn(move || core.run()));
    }

    /// Requests shutdown without blocking (the core loop exits at its next
    /// mailbox wakeup and the event loop follows).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.mailbox_tx.send(WireMessage::Shutdown);
        // If the core loop never started, the event loop still has to exit.
        if self.process.is_some() {
            self.io.push(IoCmd::Shutdown);
        }
    }

    /// Requests shutdown and joins every thread the replica spawned.
    /// Also used internally when a replica is replaced in-place (see
    /// `NetCluster::restart_replica`).
    pub fn stop(&mut self) {
        self.request_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Requests shutdown and joins every thread the replica spawned.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

/// Pending self-deliveries: protocol timers and loopback (self-addressed)
/// sends, ordered by wall-clock deadline.
struct TimerWheel<M> {
    entries: Vec<(Instant, M)>,
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self { entries: Vec::new() }
    }
}

impl<M> TimerWheel<M> {
    fn push(&mut self, at: Instant, msg: M) {
        self.entries.push((at, msg));
    }

    /// Deadline of the soonest pending entry.
    fn next_deadline(&self) -> Option<Instant> {
        self.entries.iter().map(|(at, _)| *at).min()
    }

    /// Removes and returns every entry due at `now`, in deadline order.
    fn pop_due(&mut self, now: Instant) -> Vec<M> {
        let mut due: Vec<(Instant, M)> = Vec::new();
        let mut index = 0;
        while index < self.entries.len() {
            if self.entries[index].0 <= now {
                due.push(self.entries.swap_remove(index));
            } else {
                index += 1;
            }
        }
        due.sort_by_key(|(at, _)| *at);
        due.into_iter().map(|(_, msg)| msg).collect()
    }
}

struct CoreLoop<P: Process> {
    id: NodeId,
    nodes: usize,
    process: P,
    mailbox: Receiver<WireMessage<P::Message>>,
    io: Arc<IoQueue>,
    timers: TimerWheel<P::Message>,
    delay: Option<DelayShim>,
    timer_scale: f64,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    /// The replica's deterministic state machine; every execution is applied
    /// here, and its output answers `ClientRequest` submissions.
    store: KvStore,
    /// Commands submitted to **this** replica as `ClientRequest`s, i.e. the
    /// only ones a connection here may be waiting on. Every replica executes
    /// every command, so without this filter (N−1)/N of the reply frames
    /// would be serialized just to be dropped by the event loop.
    reply_wanted: HashSet<CommandId>,
    /// Live decision-stream subscribers (maintained by the event loop);
    /// when zero, `Event::Decisions` batches are not even serialized.
    subscribers: Arc<AtomicUsize>,
}

impl<P> CoreLoop<P>
where
    P: Process,
    P::Message: serde::Serialize,
{
    fn now_us(&self) -> SimTime {
        self.epoch.elapsed().as_micros() as SimTime
    }

    fn run(mut self) {
        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
        let mut new_timers: Vec<(SimTime, P::Message)> = Vec::new();
        let mut executions: Vec<Execution> = Vec::new();

        {
            let now = self.now_us();
            let mut ctx = Context::for_runtime(
                self.id,
                self.nodes,
                now,
                &mut outbox,
                &mut new_timers,
                &mut executions,
            );
            self.process.on_start(&mut ctx);
        }
        self.flush(&mut outbox, &mut new_timers, &mut executions);

        loop {
            // Block until the earliest timer deadline (the mailbox wait *is*
            // the timer sleep); a long backstop covers the no-timer case —
            // shutdown arrives as a mailbox message, not a poll.
            let timeout = self
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_secs(1));
            match self.mailbox.recv_timeout(timeout) {
                Ok(envelope) => {
                    if !self.dispatch(envelope, &mut outbox, &mut new_timers, &mut executions) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Fire due timers and self-deliveries through the same envelope
            // path the mailbox uses.
            for msg in self.timers.pop_due(Instant::now()) {
                self.dispatch(
                    WireMessage::Timer { msg },
                    &mut outbox,
                    &mut new_timers,
                    &mut executions,
                );
            }
            self.flush(&mut outbox, &mut new_timers, &mut executions);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }

        self.shutdown.store(true, Ordering::SeqCst);
        // Final flush so subscribers see everything executed, then hand the
        // event loop its shutdown command: it aborts the client requests
        // still awaiting replies and closes every socket.
        self.publish(&mut executions);
        self.io.push(IoCmd::Shutdown);
    }

    /// Handles one envelope; returns `false` when the loop should stop.
    fn dispatch(
        &mut self,
        envelope: WireMessage<P::Message>,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
    ) -> bool {
        match envelope {
            WireMessage::Shutdown => return false,
            WireMessage::Hello { .. } | WireMessage::Subscribe => {}
            WireMessage::Peer { from, msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_message(from, msg, &mut ctx);
            }
            WireMessage::ClientRequest { cmd } => {
                self.reply_wanted.insert(cmd.id());
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_client_command(cmd, &mut ctx);
            }
            WireMessage::Client { cmd } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_client_command(cmd, &mut ctx);
            }
            WireMessage::Timer { msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_message(self.id, msg, &mut ctx);
            }
        }
        true
    }

    /// Routes buffered sends and timers, then publishes fresh executions.
    ///
    /// Peer messages are serialized here (the event loop deals in opaque
    /// frames) and pushed to the I/O thread in one batch — one waker write,
    /// and every frame of this step lands in the same flush.
    fn flush(
        &mut self,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
    ) {
        let now = Instant::now();
        let mut cmds: Vec<IoCmd> = Vec::new();
        for (to, msg) in outbox.drain(..) {
            let deliver_at = match &self.delay {
                Some(shim) => now + shim.one_way(self.id, to),
                None => now,
            };
            if to == self.id {
                // Loopback: no socket, but the artificial delay still applies.
                self.timers.push(deliver_at, msg);
            } else if let Ok(frame) = frame_bytes(&WireMessage::Peer { from: self.id, msg }) {
                cmds.push(IoCmd::SendPeer { to, deliver_at, frame });
            }
        }
        for (delay_us, msg) in new_timers.drain(..) {
            let scaled = Duration::from_micros((delay_us as f64 * self.timer_scale) as u64);
            self.timers.push(now + scaled, msg);
        }
        self.io.push_many(cmds);
        self.publish(executions);
    }

    /// Applies fresh executions to the store and hands the event loop the
    /// reply and decision-stream frames: one [`Event::ClientReply`] per
    /// execution (routed to whichever connection submitted the command, or
    /// dropped if none did) and one [`Event::Decisions`] batch for the
    /// subscribers. Serialization happens here; the I/O thread never blocks
    /// on a stalled sink — slow connections buffer and flush on writability.
    fn publish(&mut self, executions: &mut Vec<Execution>) {
        if executions.is_empty() {
            return;
        }
        let mut cmds: Vec<IoCmd> = Vec::with_capacity(executions.len() + 1);
        let mut batch = Vec::with_capacity(executions.len());
        for execution in executions.drain(..) {
            let output = self.store.apply(&execution.command);
            let id = execution.command.id();
            if self.reply_wanted.remove(&id) {
                let reply = Event::ClientReply {
                    from: self.id,
                    command: id,
                    output,
                    decision: execution.decision.clone(),
                };
                if let Ok(frame) = frame_bytes(&reply) {
                    cmds.push(IoCmd::ClientReply { command: id, frame });
                }
            }
            batch.push(execution.decision);
        }
        if self.subscribers.load(Ordering::Relaxed) > 0 {
            let event = Event::Decisions { from: self.id, batch };
            if let Ok(frame) = frame_bytes(&event) {
                cmds.push(IoCmd::Publish { frame });
            }
        }
        self.io.push_many(cmds);
    }
}
