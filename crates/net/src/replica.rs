//! One replica running over real sockets.
//!
//! A [`NetReplica`] owns a single [`simnet::Process`] implementation and
//! drives it exactly the way the simulator does — through
//! [`Context::for_runtime`] — but with TCP in place of the event queue:
//!
//! * a **listener** accepts inbound connections; each gets a reader thread
//!   that decodes [`WireMessage`] frames into the replica's mailbox;
//! * a **core loop** drains the mailbox, invokes the process callbacks,
//!   applies executions to the replica's key-value store, answers client
//!   requests, flushes the outbox to per-peer writer threads, and maps the
//!   process's `SimTime` timers onto wall-clock deadlines in a local timer
//!   wheel;
//! * per-peer **writer** threads own one outbound connection each, with
//!   automatic reconnect + backoff, so a replica that comes up late or drops
//!   a link is re-linked transparently; all frames due at a wakeup are
//!   flushed in **one batched write** instead of a syscall per frame;
//! * an optional [`DelayShim`] holds outbound frames until an artificial
//!   delivery deadline, emulating a WAN latency matrix on loopback.
//!
//! Client connections submit [`WireMessage::ClientRequest`] frames; when the
//! command executes at this replica, the core loop answers the submitting
//! connection with an [`Event::ClientReply`] carrying the store output. A
//! replica that shuts down with requests still pending answers them with
//! [`Event::ClientAbort`] so no client waits forever.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_types::{CommandId, Execution, NodeId, SimTime};
use kvstore::KvStore;
use simnet::{Context, LatencyMatrix, Process};

use crate::wire::{send_msg, Event, FrameReader, WireMessage};

/// An outbound frame queued for a peer writer: artificial delivery deadline
/// plus the envelope to put on the wire.
type Outbound<M> = (Instant, WireMessage<M>);

/// Emulates a WAN latency matrix on a fast local network by delaying each
/// outbound frame until `one_way(src, dst) × scale` has elapsed since it was
/// produced (the paper's five-site EC2 matrix scaled down keeps tests fast).
#[derive(Debug, Clone)]
pub struct DelayShim {
    latency: LatencyMatrix,
    scale: f64,
}

impl DelayShim {
    /// Creates a shim from a latency matrix and a scale factor (`0.01` turns
    /// a 93 ms one-way delay into 0.93 ms).
    #[must_use]
    pub fn new(latency: LatencyMatrix, scale: f64) -> Self {
        Self { latency, scale }
    }

    /// The artificial one-way delay from `src` to `dst`.
    #[must_use]
    pub fn one_way(&self, src: NodeId, dst: NodeId) -> Duration {
        let us = self.latency.one_way(src, dst) as f64 * self.scale;
        Duration::from_micros(us as u64)
    }
}

/// Configuration of one socket-backed replica.
#[derive(Debug, Clone)]
pub struct NetReplicaConfig {
    /// This replica's identity.
    pub id: NodeId,
    /// Total number of replicas in the cluster.
    pub nodes: usize,
    /// Address to listen on; use port 0 to let the OS pick one.
    pub bind: SocketAddr,
    /// Optional artificial-delay shim applied to outbound frames (including
    /// self-deliveries).
    pub delay: Option<DelayShim>,
    /// Multiplier mapping the process's `SimTime` timer delays (µs) onto
    /// wall-clock time; `1.0` means a 500 ms protocol timeout sleeps 500 ms.
    pub timer_scale: f64,
    /// Delay between outbound reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Epoch used for `Context::now`; share one across the cluster so
    /// timestamps are comparable.
    pub epoch: Instant,
}

impl NetReplicaConfig {
    /// A loopback configuration with OS-assigned port and real-time timers.
    #[must_use]
    pub fn loopback(id: NodeId, nodes: usize) -> Self {
        Self {
            id,
            nodes,
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            delay: None,
            timer_scale: 1.0,
            reconnect_backoff: Duration::from_millis(10),
            epoch: Instant::now(),
        }
    }
}

/// Counters exposed by a running replica (all monotone).
#[derive(Debug, Default)]
pub struct NetReplicaStats {
    /// Frames successfully written to peers.
    pub frames_sent: AtomicU64,
    /// Frames received and enqueued from any connection.
    pub frames_received: AtomicU64,
    /// Outbound frames dropped after a write failed twice (pre- and
    /// post-reconnect).
    pub frames_dropped: AtomicU64,
    /// Successful outbound connection establishments (first + re-connects).
    pub connects: AtomicU64,
    /// Batched peer writes: each is one `write` call flushing every frame
    /// that was due at that writer wakeup ([`Self::frames_sent`] ÷ this is
    /// the average batch size).
    pub batches_flushed: AtomicU64,
}

/// A consensus replica served over TCP.
///
/// Returned by [`NetReplica::spawn`] in a *bound but not yet linked* state:
/// the listener is accepting (so peers can dial in at any time) but the core
/// loop only starts once [`NetReplica::start`] provides the peer address
/// book. This two-phase bring-up lets an orchestrator bind N replicas on
/// OS-assigned ports first and distribute the resulting addresses second.
pub struct NetReplica<P: Process> {
    id: NodeId,
    local_addr: SocketAddr,
    config: NetReplicaConfig,
    process: Option<P>,
    mailbox_tx: Sender<WireMessage<P::Message>>,
    mailbox_rx: Option<Receiver<WireMessage<P::Message>>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetReplicaStats>,
    subscribers: Arc<Mutex<Vec<TcpStream>>>,
    /// Write halves of client connections awaiting a reply, keyed by the
    /// command they submitted via [`WireMessage::ClientRequest`].
    client_replies: Arc<Mutex<HashMap<CommandId, TcpStream>>>,
    threads: Vec<JoinHandle<()>>,
}

impl<P> NetReplica<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    /// Binds the listener and starts accepting connections. The process is
    /// not driven until [`NetReplica::start`] is called.
    pub fn spawn(config: NetReplicaConfig, process: P) -> io::Result<Self> {
        let listener = TcpListener::bind(config.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (mailbox_tx, mailbox_rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetReplicaStats::default());
        let subscribers = Arc::new(Mutex::new(Vec::new()));
        let client_replies = Arc::new(Mutex::new(HashMap::new()));

        let accept_thread = {
            let mailbox = mailbox_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let subscribers = Arc::clone(&subscribers);
            let client_replies = Arc::clone(&client_replies);
            std::thread::spawn(move || {
                accept_loop(&listener, &mailbox, &shutdown, &stats, &subscribers, &client_replies);
            })
        };

        Ok(Self {
            id: config.id,
            local_addr,
            config,
            process: Some(process),
            mailbox_tx,
            mailbox_rx: Some(mailbox_rx),
            shutdown: Arc::clone(&shutdown),
            stats,
            subscribers,
            client_replies,
            threads: vec![accept_thread],
        })
    }

    /// The address the replica is listening on (useful with port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This replica's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Live transport counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<NetReplicaStats> {
        &self.stats
    }

    /// A handle for injecting envelopes into the local mailbox without a
    /// socket (used by in-process orchestration and tests).
    #[must_use]
    pub fn mailbox(&self) -> Sender<WireMessage<P::Message>> {
        self.mailbox_tx.clone()
    }

    /// Starts the core loop given the full cluster address book
    /// (`peers[i]` is replica *i*'s listen address; this replica's own entry
    /// is ignored — self-sends short-circuit through the timer wheel).
    ///
    /// # Panics
    ///
    /// Panics if called twice or if `peers.len()` disagrees with the
    /// configured cluster size.
    pub fn start(&mut self, peers: Vec<SocketAddr>) {
        assert_eq!(peers.len(), self.config.nodes, "address book size mismatch");
        let process = self.process.take().expect("NetReplica::start called twice");
        let mailbox_rx = self.mailbox_rx.take().expect("mailbox receiver present");

        // One writer thread + queue per remote peer.
        let mut peer_txs: HashMap<NodeId, Sender<Outbound<P::Message>>> = HashMap::new();
        for (index, &addr) in peers.iter().enumerate() {
            let to = NodeId::from_index(index);
            if to == self.id {
                continue;
            }
            let (tx, rx) = mpsc::channel::<Outbound<P::Message>>();
            peer_txs.insert(to, tx);
            let shutdown = Arc::clone(&self.shutdown);
            let stats = Arc::clone(&self.stats);
            let me = self.id;
            let backoff = self.config.reconnect_backoff;
            self.threads.push(std::thread::spawn(move || {
                writer_loop(me, addr, &rx, &shutdown, &stats, backoff);
            }));
        }

        let core = CoreLoop {
            id: self.id,
            nodes: self.config.nodes,
            process,
            mailbox: mailbox_rx,
            peer_txs,
            timers: TimerWheel::default(),
            delay: self.config.delay.clone(),
            timer_scale: self.config.timer_scale,
            epoch: self.config.epoch,
            shutdown: Arc::clone(&self.shutdown),
            subscribers: Arc::clone(&self.subscribers),
            client_replies: Arc::clone(&self.client_replies),
            store: KvStore::new(),
        };
        self.threads.push(std::thread::spawn(move || core.run()));
    }

    /// Requests shutdown without blocking (the core loop exits at its next
    /// mailbox wakeup).
    pub fn request_shutdown(&self) {
        let _ = self.mailbox_tx.send(WireMessage::Shutdown);
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests shutdown and joins every thread the replica spawned.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop<M>(
    listener: &TcpListener,
    mailbox: &Sender<WireMessage<M>>,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<NetReplicaStats>,
    subscribers: &Arc<Mutex<Vec<TcpStream>>>,
    client_replies: &Arc<Mutex<HashMap<CommandId, TcpStream>>>,
) where
    M: serde::Deserialize + Send + 'static,
{
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mailbox = mailbox.clone();
                let shutdown = Arc::clone(shutdown);
                let stats = Arc::clone(stats);
                let subscribers = Arc::clone(subscribers);
                let client_replies = Arc::clone(client_replies);
                // Reader threads exit on EOF, decode error, or shutdown;
                // the read timeout bounds how long shutdown can take.
                std::thread::spawn(move || {
                    reader_loop(stream, &mailbox, &shutdown, &stats, &subscribers, &client_replies);
                });
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn reader_loop<M>(
    mut stream: TcpStream,
    mailbox: &Sender<WireMessage<M>>,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<NetReplicaStats>,
    subscribers: &Arc<Mutex<Vec<TcpStream>>>,
    client_replies: &Arc<Mutex<HashMap<CommandId, TcpStream>>>,
) where
    M: serde::Deserialize,
{
    let _ = stream.set_nodelay(true);
    // The read timeout only bounds how long shutdown can take; the
    // FrameReader keeps partial frames across timeouts, so a timeout firing
    // mid-frame never desynchronizes the stream.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let peer = stream.peer_addr().ok();
    // Commands this connection registered reply routes for, so they can be
    // unregistered when the connection goes away (otherwise every
    // never-executed request would leak its cloned socket for the replica's
    // lifetime).
    let mut registered: Vec<CommandId> = Vec::new();
    let mut decoder = FrameReader::new();
    while !shutdown.load(Ordering::SeqCst) {
        match decoder.read_msg::<_, WireMessage<M>>(&mut stream) {
            Ok(Some(WireMessage::Subscribe)) => {
                // Register the write half of this connection as a decision
                // sink; the core loop publishes Event frames to it. The write
                // timeout makes sure a stalled subscriber is dropped instead
                // of blocking the core loop.
                if let Ok(write_half) = stream.try_clone() {
                    let _ = write_half.set_write_timeout(Some(Duration::from_secs(1)));
                    subscribers.lock().expect("subscriber list lock").push(write_half);
                }
            }
            Ok(Some(WireMessage::ClientRequest { cmd })) => {
                // Route the eventual reply back over this connection: the
                // core loop looks the command up when it executes.
                stats.frames_received.fetch_add(1, Ordering::Relaxed);
                if let Ok(write_half) = stream.try_clone() {
                    let _ = write_half.set_write_timeout(Some(Duration::from_secs(1)));
                    registered.push(cmd.id());
                    client_replies
                        .lock()
                        .expect("client reply registry lock")
                        .insert(cmd.id(), write_half);
                }
                if mailbox.send(WireMessage::ClientRequest { cmd }).is_err() {
                    break; // core loop gone
                }
            }
            Ok(Some(message)) => {
                stats.frames_received.fetch_add(1, Ordering::Relaxed);
                if mailbox.send(message).is_err() {
                    break; // core loop gone
                }
            }
            Ok(None) => continue, // timeout: poll the shutdown flag again
            Err(_) => break,      // EOF or protocol error: drop the connection
        }
    }
    // The connection is gone: drop the reply routes it still owns. A route
    // is only removed if it still points at this connection (same peer), so
    // a newer connection that re-registered an id keeps its route.
    if !registered.is_empty() {
        let mut routes = client_replies.lock().expect("client reply registry lock");
        for id in registered {
            if routes.get(&id).is_some_and(|sink| sink.peer_addr().ok() == peer) {
                routes.remove(&id);
            }
        }
    }
}

/// Owns one outbound link, (re)connecting as needed and honouring the
/// artificial delivery deadlines attached by the core loop. All frames due
/// at a wakeup are flushed in **one** batched write (the ROADMAP's
/// "one writev instead of frame-per-message" item): each frame is
/// length-prefix-encoded into a single buffer and written with one syscall.
fn writer_loop<M: serde::Serialize>(
    me: NodeId,
    addr: SocketAddr,
    queue: &Receiver<Outbound<M>>,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<NetReplicaStats>,
    backoff: Duration,
) {
    let mut stream: Option<TcpStream> = None;
    // Frames taken off the queue whose artificial deadline has not passed
    // yet (deadlines are monotone per link, so this is a FIFO).
    let mut pending: std::collections::VecDeque<Outbound<M>> = std::collections::VecDeque::new();
    loop {
        if pending.is_empty() {
            match queue.recv_timeout(Duration::from_millis(50)) {
                Ok(entry) => pending.push_back(entry),
                Err(RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        // Honour the artificial delivery deadline of the oldest frame…
        let wait = pending[0].0.saturating_duration_since(Instant::now());
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        // …then absorb everything else already queued so one write flushes
        // the whole burst.
        loop {
            match queue.try_recv() {
                Ok(entry) => pending.push_back(entry),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        // Encode every due frame into one buffer.
        let now = Instant::now();
        let mut batch = Vec::new();
        let mut count: u64 = 0;
        while let Some((at, _)) = pending.front() {
            if *at > now {
                break;
            }
            let (_, message) = pending.pop_front().expect("frame present");
            // `Vec<u8>` implements `io::Write`, so the standard frame writer
            // appends the length-prefixed encoding to the batch buffer.
            if send_msg(&mut batch, &message).is_err() {
                stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            count += 1;
        }
        if count == 0 {
            continue;
        }
        // Write the batch; on failure reconnect once and retry, then drop it
        // (protocols recover from message loss via their timeouts).
        let mut attempts = 0;
        loop {
            if stream.is_none() {
                stream = connect::<M>(me, addr, shutdown, stats, backoff);
                if stream.is_none() {
                    return; // shutdown while reconnecting
                }
            }
            let sock = stream.as_mut().expect("connected stream");
            match sock.write_all(&batch).and_then(|()| sock.flush()) {
                Ok(()) => {
                    stats.frames_sent.fetch_add(count, Ordering::Relaxed);
                    stats.batches_flushed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(_) => {
                    stream = None;
                    attempts += 1;
                    if attempts >= 2 {
                        stats.frames_dropped.fetch_add(count, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
    }
}

/// Dials `addr` until it succeeds or shutdown is requested, announcing the
/// sender with a `Hello` frame on every fresh connection.
fn connect<M: serde::Serialize>(
    me: NodeId,
    addr: SocketAddr,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<NetReplicaStats>,
    backoff: Duration,
) -> Option<TcpStream> {
    while !shutdown.load(Ordering::SeqCst) {
        if let Ok(mut sock) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            let _ = sock.set_nodelay(true);
            if send_msg(&mut sock, &WireMessage::<M>::Hello { from: me }).is_ok() {
                stats.connects.fetch_add(1, Ordering::Relaxed);
                return Some(sock);
            }
        }
        std::thread::sleep(backoff);
    }
    None
}

/// Pending self-deliveries: protocol timers and loopback (self-addressed)
/// sends, ordered by wall-clock deadline.
struct TimerWheel<M> {
    entries: Vec<(Instant, M)>,
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self { entries: Vec::new() }
    }
}

impl<M> TimerWheel<M> {
    fn push(&mut self, at: Instant, msg: M) {
        self.entries.push((at, msg));
    }

    /// Deadline of the soonest pending entry.
    fn next_deadline(&self) -> Option<Instant> {
        self.entries.iter().map(|(at, _)| *at).min()
    }

    /// Removes and returns every entry due at `now`, in deadline order.
    fn pop_due(&mut self, now: Instant) -> Vec<M> {
        let mut due: Vec<(Instant, M)> = Vec::new();
        let mut index = 0;
        while index < self.entries.len() {
            if self.entries[index].0 <= now {
                due.push(self.entries.swap_remove(index));
            } else {
                index += 1;
            }
        }
        due.sort_by_key(|(at, _)| *at);
        due.into_iter().map(|(_, msg)| msg).collect()
    }
}

struct CoreLoop<P: Process> {
    id: NodeId,
    nodes: usize,
    process: P,
    mailbox: Receiver<WireMessage<P::Message>>,
    peer_txs: HashMap<NodeId, Sender<Outbound<P::Message>>>,
    timers: TimerWheel<P::Message>,
    delay: Option<DelayShim>,
    timer_scale: f64,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    subscribers: Arc<Mutex<Vec<TcpStream>>>,
    client_replies: Arc<Mutex<HashMap<CommandId, TcpStream>>>,
    /// The replica's deterministic state machine; every execution is applied
    /// here, and its output answers `ClientRequest` submissions.
    store: KvStore,
}

impl<P> CoreLoop<P>
where
    P: Process,
    P::Message: serde::Serialize,
{
    fn now_us(&self) -> SimTime {
        self.epoch.elapsed().as_micros() as SimTime
    }

    fn run(mut self) {
        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
        let mut new_timers: Vec<(SimTime, P::Message)> = Vec::new();
        let mut executions: Vec<Execution> = Vec::new();

        {
            let now = self.now_us();
            let mut ctx = Context::for_runtime(
                self.id,
                self.nodes,
                now,
                &mut outbox,
                &mut new_timers,
                &mut executions,
            );
            self.process.on_start(&mut ctx);
        }
        self.flush(&mut outbox, &mut new_timers, &mut executions);

        loop {
            // Sleep until the next timer deadline, but never so long that a
            // shutdown request goes unnoticed.
            let timeout = self
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(25))
                .min(Duration::from_millis(25));
            match self.mailbox.recv_timeout(timeout) {
                Ok(envelope) => {
                    if !self.dispatch(envelope, &mut outbox, &mut new_timers, &mut executions) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Fire due timers and self-deliveries through the same envelope
            // path the mailbox uses.
            for msg in self.timers.pop_due(Instant::now()) {
                self.dispatch(
                    WireMessage::Timer { msg },
                    &mut outbox,
                    &mut new_timers,
                    &mut executions,
                );
            }
            self.flush(&mut outbox, &mut new_timers, &mut executions);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }

        self.shutdown.store(true, Ordering::SeqCst);
        // Final flush so subscribers see everything executed, then fail any
        // client requests that will never be answered — a waiter must not
        // hang on a replica that is gone.
        self.publish(&mut executions);
        self.abort_pending_clients();
    }

    /// Handles one envelope; returns `false` when the loop should stop.
    fn dispatch(
        &mut self,
        envelope: WireMessage<P::Message>,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
    ) -> bool {
        match envelope {
            WireMessage::Shutdown => return false,
            WireMessage::Hello { .. } | WireMessage::Subscribe => {}
            WireMessage::Peer { from, msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_message(from, msg, &mut ctx);
            }
            WireMessage::Client { cmd } | WireMessage::ClientRequest { cmd } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_client_command(cmd, &mut ctx);
            }
            WireMessage::Timer { msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions);
                self.process.on_message(self.id, msg, &mut ctx);
            }
        }
        true
    }

    /// Routes buffered sends and timers, then publishes fresh executions.
    fn flush(
        &mut self,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
    ) {
        let now = Instant::now();
        for (to, msg) in outbox.drain(..) {
            let deliver_at = match &self.delay {
                Some(shim) => now + shim.one_way(self.id, to),
                None => now,
            };
            if to == self.id {
                // Loopback: no socket, but the artificial delay still applies.
                self.timers.push(deliver_at, msg);
            } else if let Some(tx) = self.peer_txs.get(&to) {
                let _ = tx.send((deliver_at, WireMessage::Peer { from: self.id, msg }));
            }
        }
        for (delay_us, msg) in new_timers.drain(..) {
            let scaled = Duration::from_micros((delay_us as f64 * self.timer_scale) as u64);
            self.timers.push(now + scaled, msg);
        }
        self.publish(executions);
    }

    /// Applies fresh executions to the store, answers pending client
    /// requests, and streams the decision batch to subscribers.
    ///
    /// Reply and subscriber writes happen on the core-loop thread, bounded
    /// by the 1 s per-connection write timeout set at registration; a
    /// stalled client can therefore delay (not wedge) protocol processing.
    /// Decoupling them behind per-connection writer queues, like peer
    /// traffic, is the upgrade path if external clients become many.
    fn publish(&mut self, executions: &mut Vec<Execution>) {
        if executions.is_empty() {
            return;
        }
        let mut batch = Vec::with_capacity(executions.len());
        for execution in executions.drain(..) {
            let output = self.store.apply(&execution.command);
            let id = execution.command.id();
            let waiting =
                self.client_replies.lock().expect("client reply registry lock").remove(&id);
            if let Some(mut sink) = waiting {
                let event = Event::ClientReply {
                    from: self.id,
                    command: id,
                    output,
                    decision: execution.decision.clone(),
                };
                let _ = send_msg(&mut sink, &event);
            }
            batch.push(execution.decision);
        }
        let event = Event::Decisions { from: self.id, batch };
        let mut sinks = self.subscribers.lock().expect("subscriber list lock");
        // Drop sinks whose connection died; keep the rest.
        sinks.retain_mut(|sink| send_msg(sink, &event).is_ok());
    }

    /// Tells every connection still waiting for a reply that it will never
    /// come (the replica is shutting down).
    fn abort_pending_clients(&mut self) {
        let pending: Vec<(CommandId, TcpStream)> =
            self.client_replies.lock().expect("client reply registry lock").drain().collect();
        for (command, mut sink) in pending {
            let event = Event::ClientAbort {
                from: self.id,
                command,
                reason: "replica shut down before the command executed".to_string(),
            };
            let _ = send_msg(&mut sink, &event);
        }
    }
}
