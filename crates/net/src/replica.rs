//! One replica running over real sockets.
//!
//! A [`NetReplica`] owns a single [`simnet::Process`] implementation and
//! drives it exactly the way the simulator does — through
//! [`Context::for_runtime`] — but with TCP in place of the event queue. The
//! replica runs **O(1) threads regardless of connection count**:
//!
//! * an **event-loop thread** (see [`crate::event_loop`]) owns every socket
//!   — listener, peer links, subscribers, client connections — as
//!   nonblocking descriptors on one epoll [`reactor::Poller`]; it decodes
//!   inbound frames into the replica's mailbox and flushes per-connection
//!   write buffers interest-driven;
//! * a **core-loop thread** drains the mailbox, invokes the process
//!   callbacks, applies executions to the replica's pluggable
//!   [`StateMachine`] (the `kvstore` reference implementation unless the
//!   config carries a custom factory), and maps the process's `SimTime`
//!   timers onto wall-clock deadlines in a local timer wheel (its mailbox
//!   wait *is* the timer sleep — it blocks until the earliest deadline,
//!   not on a polling interval).
//!
//! Outbound frames are serialized on the core loop and handed to the event
//! loop pre-framed; the optional [`DelayShim`] attaches an artificial
//! delivery deadline which the event loop honours as an epoll-wait timeout,
//! emulating a WAN latency matrix on loopback without any sleeping thread.
//!
//! Client connections submit [`WireMessage::ClientRequest`] frames; when the
//! command executes at this replica, the core loop emits an
//! [`Event::ClientReply`] carrying the state-machine output and the event
//! loop routes it to the submitting connection. A replica that shuts down
//! with requests still pending answers them with [`Event::ClientAbort`] so
//! no client waits forever.
//!
//! # Snapshot-based state transfer
//!
//! The core loop checkpoints its state machine every
//! [`NetReplicaConfig::checkpoint_interval`] applied commands — snapshot
//! bytes, the floor-compacted `AppliedSummary` of the ids it covers, and
//! the protocol's `ExecutionCursor` at cut time — and retains the commands
//! applied since in a suffix log. A replica started with
//! [`NetReplicaConfig::catch_up`] — which is how
//! `NetCluster::restart_replica` brings a crashed node back — begins in
//! a *restoring* state: it broadcasts [`WireMessage::SnapshotRequest`] to
//! its peers, and each live peer answers with
//! [`WireMessage::SnapshotChunk`] frames carrying its latest checkpoint
//! plus the decided suffix and a donation-time cursor. The first complete
//! transfer wins: the replica `restore`s the snapshot, replays the suffix,
//! seeds its applied-id summary from the transfer, hands the protocol a
//! `StateTransfer` through `Process::on_state_transfer` (dependency
//! tracking learns what is covered; slot cursors fast-forward past the
//! restored state), and only then starts applying the executions its own
//! process produced (buffered while restoring; commands already covered
//! are deduplicated by id). While restoring, client requests are refused
//! with an immediate [`Event::ClientAbort`] — fail fast, never hang — and
//! if no transfer completes within [`NetReplicaConfig::catch_up_timeout`]
//! the replica gives up and serves with whatever it has (the pre-transfer
//! behaviour). A full walk-through of the lifecycle lives in
//! `docs/RECOVERY.md` at the repository root.
//!
//! # Durable write-ahead log
//!
//! When [`NetReplicaConfig::data_dir`] is set, the core loop opens a
//! [`wal::Wal`] in that directory and the replica becomes durable: every
//! decided command is appended to the log *before* it touches the state
//! machine, the protocol's `ExecutionCursor` is marked after each apply
//! batch, and the staged records are committed (fsynced under the
//! configured [`FsyncPolicy`]) before the client replies leave the core
//! loop. Cutting a checkpoint also writes it to the log, which rotates to a
//! fresh segment and compacts everything older away. On restart the core
//! loop replays its own log first — latest checkpoint plus the command
//! suffix after it, a torn tail truncated at the first CRC mismatch — and
//! only then runs the snapshot-transfer catch-up above for whatever disk
//! could not provide (a donor whose offer is behind the disk watermark is
//! skipped rather than allowed to regress it). With data dirs in place an
//! entire cluster can power down and come back with zero live donors; the
//! record format, fsync trade-offs, and the recovery decision tree are
//! documented in `docs/DURABILITY.md`.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_core::batch::{BatchConfig, Batcher};
use consensus_core::exec::Executor;
use consensus_core::state_machine::StateMachineFactory;
use consensus_types::{
    AppliedSummary, Command, CommandId, Decision, DecisionPath, Execution, ExecutionCursor,
    LatencyBreakdown, NodeId, SimTime, StateTransfer, Timestamp,
};
use kvstore::KvStore;
use simnet::{Context, LatencyMatrix, Process};
use telemetry::{Counter, Registry, SpanEvent, TracePhase};
use wal::{FsyncPolicy, Recovery, Wal, WalConfig};

use crate::event_loop::{EventLoop, IoCmd, IoQueue};
use crate::wire::{frame_bytes, Event, WireMessage};

/// Bytes of transfer payload per [`WireMessage::SnapshotChunk`] frame.
/// Bounded so a large state machine never produces one giant frame that
/// monopolizes the donor's write buffer (and so transfers interleave with
/// protocol traffic).
const SNAPSHOT_CHUNK: usize = 256 * 1024;

/// Emulates a WAN latency matrix on a fast local network by delaying each
/// outbound frame until `one_way(src, dst) × scale` has elapsed since it was
/// produced (the paper's five-site EC2 matrix scaled down keeps tests fast).
#[derive(Debug, Clone)]
pub struct DelayShim {
    latency: LatencyMatrix,
    scale: f64,
}

impl DelayShim {
    /// Creates a shim from a latency matrix and a scale factor (`0.01` turns
    /// a 93 ms one-way delay into 0.93 ms).
    #[must_use]
    pub fn new(latency: LatencyMatrix, scale: f64) -> Self {
        Self { latency, scale }
    }

    /// The artificial one-way delay from `src` to `dst`.
    #[must_use]
    pub fn one_way(&self, src: NodeId, dst: NodeId) -> Duration {
        let us = self.latency.one_way(src, dst) as f64 * self.scale;
        Duration::from_micros(us as u64)
    }
}

/// Configuration of one socket-backed replica.
#[derive(Clone)]
pub struct NetReplicaConfig {
    /// This replica's identity.
    pub id: NodeId,
    /// Total number of replicas in the cluster.
    pub nodes: usize,
    /// Address to listen on; use port 0 to let the OS pick one. The
    /// listener binds with `SO_REUSEADDR`, so a restarted replica can
    /// reclaim the address of its previous life immediately.
    pub bind: SocketAddr,
    /// Optional artificial-delay shim applied to outbound frames (including
    /// self-deliveries).
    pub delay: Option<DelayShim>,
    /// Multiplier mapping the process's `SimTime` timer delays (µs) onto
    /// wall-clock time; `1.0` means a 500 ms protocol timeout sleeps 500 ms.
    pub timer_scale: f64,
    /// Delay between outbound reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Epoch used for `Context::now`; share one across the cluster so
    /// timestamps are comparable.
    pub epoch: Instant,
    /// Builds this replica's state machine (the `kvstore` reference
    /// implementation by default).
    pub state_machine: StateMachineFactory,
    /// Cut a state-machine checkpoint (snapshot + watermark) every this
    /// many applied commands; the commands since the checkpoint form the
    /// replayable suffix served to catching-up peers.
    pub checkpoint_interval: u64,
    /// Start in the *restoring* state: request a snapshot from the peers
    /// and only serve once restored (or once `catch_up_timeout` passes).
    /// `NetCluster::restart_replica` sets this.
    pub catch_up: bool,
    /// How long a catching-up replica waits for a complete snapshot
    /// transfer before giving up and serving with empty state.
    pub catch_up_timeout: Duration,
    /// Directory for this replica's write-ahead log. When set, the core
    /// loop appends every decided command (and per-batch execution-cursor
    /// marks) before applying it, persists checkpoints as durable records,
    /// and on startup replays the log *first* — disk-first recovery — using
    /// snapshot transfer only for whatever disk could not provide. `None`
    /// (the default) keeps the replica memory-only.
    pub data_dir: Option<PathBuf>,
    /// When logged records reach the platter (see [`FsyncPolicy`]); only
    /// consulted when [`NetReplicaConfig::data_dir`] is set.
    pub fsync: FsyncPolicy,
    /// Proposer batching: client requests already queued in the mailbox
    /// when the core loop turns are folded into one consensus unit,
    /// amortising ordering round trips, wire frames, and WAL fsyncs
    /// (group commit). Disabled by default (`max_batch = 1`).
    pub batch: BatchConfig,
    /// Execution workers. `1` (the default) applies commands serially on
    /// the core loop; `>= 2` shards a partitionable state machine so
    /// non-conflicting commands apply in parallel (see
    /// [`consensus_core::exec::Executor`]).
    pub exec_workers: usize,
}

impl std::fmt::Debug for NetReplicaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetReplicaConfig")
            .field("id", &self.id)
            .field("nodes", &self.nodes)
            .field("bind", &self.bind)
            .field("delay", &self.delay)
            .field("timer_scale", &self.timer_scale)
            .field("reconnect_backoff", &self.reconnect_backoff)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("catch_up", &self.catch_up)
            .field("catch_up_timeout", &self.catch_up_timeout)
            .field("data_dir", &self.data_dir)
            .field("fsync", &self.fsync)
            .field("batch", &self.batch)
            .field("exec_workers", &self.exec_workers)
            .finish_non_exhaustive()
    }
}

impl NetReplicaConfig {
    /// A loopback configuration with OS-assigned port and real-time timers.
    #[must_use]
    pub fn loopback(id: NodeId, nodes: usize) -> Self {
        Self {
            id,
            nodes,
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            delay: None,
            timer_scale: 1.0,
            reconnect_backoff: Duration::from_millis(10),
            epoch: Instant::now(),
            state_machine: KvStore::factory(),
            checkpoint_interval: 64,
            catch_up: false,
            catch_up_timeout: Duration::from_secs(10),
            data_dir: None,
            fsync: FsyncPolicy::PerBatch,
            batch: BatchConfig::disabled(),
            exec_workers: 1,
        }
    }
}

/// Counters exposed by a running replica (all monotone).
///
/// The handles live in the replica's [`telemetry::Registry`] under `net.*`
/// names (e.g. `net.frames_sent`), so a [`WireMessage::StatsRequest`] scrape
/// reads the same values as the in-process accessors.
#[derive(Debug)]
pub struct NetReplicaStats {
    /// Frames flushed to peer/client sockets (counted when their write
    /// buffer drains).
    pub frames_sent: Counter,
    /// Frames received and enqueued from any connection.
    pub frames_received: Counter,
    /// Outbound frames abandoned: buffered on a connection that died, or
    /// displaced from an over-full down-link queue.
    pub frames_dropped: Counter,
    /// Successful outbound connection establishments (first + re-connects).
    pub connects: Counter,
    /// Write-buffer flush passes that put at least one complete frame on
    /// the wire; all frames buffered on a connection leave in one such pass
    /// ([`Self::frames_sent`] ÷ this is the average batch size).
    pub batches_flushed: Counter,
    /// Frames whose CRC-32 check failed on decode; each one also tears its
    /// connection down (a corrupted stream cannot be resynchronized).
    pub corrupt_frames: Counter,
    /// Flush passes that gathered two or more frames into one `writev`
    /// scatter-gather syscall (single-frame flushes are ordinary writes).
    pub writev_flushes: Counter,
    /// Snapshot transfers this replica donated to catching-up peers.
    pub snapshots_served: Counter,
    /// Snapshot payload bytes chunked out across all donations.
    pub snapshot_bytes_sent: Counter,
    /// Catch-up transfers this replica completed (snapshot restored and
    /// suffix replayed).
    pub catch_ups_completed: Counter,
    /// Commands replayed from donors' decided suffixes during catch-up.
    pub catch_up_replayed: Counter,
}

impl NetReplicaStats {
    /// Registers (or re-attaches to) the transport counters in `registry`.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self {
            frames_sent: registry.counter("net.frames_sent"),
            frames_received: registry.counter("net.frames_received"),
            frames_dropped: registry.counter("net.frames_dropped"),
            connects: registry.counter("net.connects"),
            batches_flushed: registry.counter("net.batches_flushed"),
            corrupt_frames: registry.counter("net.corrupt_frames"),
            writev_flushes: registry.counter("net.writev_flushes"),
            snapshots_served: registry.counter("net.snapshots_served"),
            snapshot_bytes_sent: registry.counter("net.snapshot_bytes_sent"),
            catch_ups_completed: registry.counter("net.catch_ups_completed"),
            catch_up_replayed: registry.counter("net.catch_up_replayed"),
        }
    }
}

/// A consensus replica served over TCP.
///
/// Returned by [`NetReplica::spawn`] in a *bound but not yet linked* state:
/// the event loop is accepting (so peers can dial in at any time) but the
/// core loop only starts once [`NetReplica::start`] provides the peer
/// address book. This two-phase bring-up lets an orchestrator bind N
/// replicas on OS-assigned ports first and distribute the resulting
/// addresses second.
pub struct NetReplica<P: Process> {
    id: NodeId,
    local_addr: SocketAddr,
    config: NetReplicaConfig,
    process: Option<P>,
    executor: Arc<Executor>,
    mailbox_tx: Sender<WireMessage<P::Message>>,
    mailbox_rx: Option<Receiver<WireMessage<P::Message>>>,
    io: Arc<IoQueue>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    stats: Arc<NetReplicaStats>,
    subscriber_count: Arc<AtomicUsize>,
    /// The open write-ahead log and what its startup scan recovered, held
    /// here between [`NetReplica::spawn`] (which opens the log so disk
    /// errors surface synchronously) and [`NetReplica::start`] (which moves
    /// both onto the core loop: the recovery is replayed before the first
    /// mailbox message is served).
    wal: Option<(Wal, Recovery)>,
    threads: Vec<JoinHandle<()>>,
}

impl<P> NetReplica<P>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    /// Binds the listener and starts the event-loop thread, which accepts
    /// connections immediately. The process is not driven until
    /// [`NetReplica::start`] is called.
    pub fn spawn(config: NetReplicaConfig, process: P) -> io::Result<Self> {
        let listener = reactor::bind_reusable(config.bind, 1024)?;
        let local_addr = listener.local_addr()?;
        let (mailbox_tx, mailbox_rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        // One registry per replica: the process's own (so protocol counters
        // and transport counters scrape together), or a fresh one when the
        // process does not expose telemetry.
        let registry = process.telemetry().unwrap_or_else(|| Arc::new(Registry::new()));
        let stats = Arc::new(NetReplicaStats::register(&registry));
        let subscriber_count = Arc::new(AtomicUsize::new(0));
        let io = Arc::new(IoQueue::new()?);
        let executor = Arc::new(Executor::new(
            config.state_machine.clone(),
            config.id,
            config.exec_workers,
            &registry,
        ));
        // Disk-first: open (and scan) the write-ahead log before any socket
        // traffic exists, so an unreadable data dir fails the spawn instead
        // of a serving replica.
        let wal = match &config.data_dir {
            Some(dir) => {
                let wal_config = WalConfig::new(dir.clone()).with_fsync(config.fsync.clone());
                Some(Wal::open(wal_config, &registry)?)
            }
            None => None,
        };

        let event_loop = EventLoop::new(
            config.id,
            listener,
            Arc::clone(&io),
            mailbox_tx.clone(),
            config.reconnect_backoff,
            Arc::clone(&registry),
            Arc::clone(&stats),
            Arc::clone(&subscriber_count),
            Arc::clone(&shutdown),
        )?;
        let io_thread = std::thread::spawn(move || event_loop.run());

        Ok(Self {
            id: config.id,
            local_addr,
            config,
            process: Some(process),
            executor,
            mailbox_tx,
            mailbox_rx: Some(mailbox_rx),
            io,
            shutdown,
            registry,
            stats,
            subscriber_count,
            wal,
            threads: vec![io_thread],
        })
    }

    /// The address the replica is listening on (useful with port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This replica's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Live transport counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<NetReplicaStats> {
        &self.stats
    }

    /// The telemetry registry this replica records into: the process's
    /// protocol counters, the `net.*` transport counters, and the
    /// command-lifecycle span ring. The same data a
    /// [`WireMessage::StatsRequest`] scrape returns.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The state-machine digest of this replica (see
    /// [`consensus_core::StateMachine::fingerprint`]); equal histories give
    /// equal fingerprints, which is how the catch-up tests compare a
    /// restarted replica against a never-crashed peer.
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        self.executor.fingerprint()
    }

    /// Number of commands this replica's state machine has applied
    /// (including commands replayed through snapshot catch-up).
    #[must_use]
    pub fn applied_through(&self) -> u64 {
        self.executor.applied_through()
    }

    /// Whether this replica's executor runs `"sharded"` or `"serial"`.
    #[must_use]
    pub fn executor_kind(&self) -> &'static str {
        self.executor.mode()
    }

    /// Number of OS threads this replica runs. Constant — event loop plus
    /// core loop — independent of how many peers or clients are connected.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// A handle for injecting envelopes into the local mailbox without a
    /// socket (used by in-process orchestration and tests).
    #[must_use]
    pub fn mailbox(&self) -> Sender<WireMessage<P::Message>> {
        self.mailbox_tx.clone()
    }

    /// Starts the core loop given the full cluster address book
    /// (`peers[i]` is replica *i*'s listen address; this replica's own entry
    /// is ignored — self-sends short-circuit through the timer wheel).
    ///
    /// # Panics
    ///
    /// Panics if called twice or if `peers.len()` disagrees with the
    /// configured cluster size.
    pub fn start(&mut self, peers: Vec<SocketAddr>) {
        assert_eq!(peers.len(), self.config.nodes, "address book size mismatch");
        let process = self.process.take().expect("NetReplica::start called twice");
        let mailbox_rx = self.mailbox_rx.take().expect("mailbox receiver present");
        let (wal, disk_recovery) = match self.wal.take() {
            Some((wal, recovery)) => (Some(wal), Some(recovery)),
            None => (None, None),
        };

        // Hand the event loop its address book; it dials (and keeps
        // redialing) every remote peer from its own thread.
        let book: Vec<(NodeId, SocketAddr)> = peers
            .iter()
            .enumerate()
            .map(|(index, &addr)| (NodeId::from_index(index), addr))
            .filter(|&(to, _)| to != self.id)
            .collect();
        self.io.push(IoCmd::DialPeers(book));

        let core = CoreLoop {
            id: self.id,
            nodes: self.config.nodes,
            process,
            mailbox: mailbox_rx,
            io: Arc::clone(&self.io),
            timers: TimerWheel::default(),
            delay: self.config.delay.clone(),
            timer_scale: self.config.timer_scale,
            epoch: self.config.epoch,
            shutdown: Arc::clone(&self.shutdown),
            executor: Arc::clone(&self.executor),
            batch: self.config.batch,
            batcher: Batcher::new(self.id),
            stash: None,
            batch_assembled: self.registry.counter("batch.assembled"),
            batch_commands: self.registry.counter("batch.commands"),
            checkpoint: None,
            checkpoint_interval: self.config.checkpoint_interval.max(1),
            suffix_log: Vec::new(),
            restore: if self.config.catch_up && self.config.nodes > 1 {
                Some(RestoreState {
                    deadline: Instant::now() + self.config.catch_up_timeout,
                    donors: HashMap::new(),
                    pending: Vec::new(),
                })
            } else {
                None
            },
            applied: AppliedSummary::default(),
            ordered: AppliedSummary::default(),
            watermark: 0,
            registry: Arc::clone(&self.registry),
            // Maps the epoch-relative `Context::now` timestamps spans carry
            // onto wall-clock microseconds, so traces scraped from
            // different replicas (different processes, shared epoch or not)
            // line up on one axis.
            wall0: telemetry::wall_clock_us()
                .saturating_sub(self.config.epoch.elapsed().as_micros() as u64),
            stats: Arc::clone(&self.stats),
            reply_wanted: HashSet::new(),
            subscribers: Arc::clone(&self.subscriber_count),
            wal,
            disk_recovery,
        };
        self.threads.push(std::thread::spawn(move || core.run()));
    }

    /// Requests shutdown without blocking (the core loop exits at its next
    /// mailbox wakeup and the event loop follows).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.mailbox_tx.send(WireMessage::Shutdown);
        // If the core loop never started, the event loop still has to exit.
        if self.process.is_some() {
            self.io.push(IoCmd::Shutdown);
        }
    }

    /// Requests shutdown and joins every thread the replica spawned.
    /// Also used internally when a replica is replaced in-place (see
    /// `NetCluster::restart_replica`).
    pub fn stop(&mut self) {
        self.request_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Requests shutdown and joins every thread the replica spawned.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

/// Pending self-deliveries: protocol timers and loopback (self-addressed)
/// sends, ordered by wall-clock deadline.
struct TimerWheel<M> {
    entries: Vec<(Instant, M)>,
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self { entries: Vec::new() }
    }
}

impl<M> TimerWheel<M> {
    fn push(&mut self, at: Instant, msg: M) {
        self.entries.push((at, msg));
    }

    /// Deadline of the soonest pending entry.
    fn next_deadline(&self) -> Option<Instant> {
        self.entries.iter().map(|(at, _)| *at).min()
    }

    /// Removes and returns every entry due at `now`, in deadline order.
    fn pop_due(&mut self, now: Instant) -> Vec<M> {
        let mut due: Vec<(Instant, M)> = Vec::new();
        let mut index = 0;
        while index < self.entries.len() {
            if self.entries[index].0 <= now {
                due.push(self.entries.swap_remove(index));
            } else {
                index += 1;
            }
        }
        due.sort_by_key(|(at, _)| *at);
        due.into_iter().map(|(_, msg)| msg).collect()
    }
}

/// The latest checkpoint: the serialized transfer payload — state-machine
/// snapshot bytes paired with the floor-compacted [`AppliedSummary`]s of
/// the command ids and consensus-unit ids it covers and the protocol's
/// [`ExecutionCursor`] at cut time — plus the watermark. `payload` is
/// reference-counted so donating never copies it.
///
/// The applied-id summary exists because applying a command twice forks a
/// replica's state machine away from its peers, and after a crash/restart
/// duplicates are real: the snapshot a restarted replica installs covers
/// commands that surviving peers *also* redeliver as queued protocol
/// traffic once their links reconnect. Every apply consults the summary,
/// and shipping it with the snapshot hands the receiver the complete dedup
/// (and dependency-satisfaction) knowledge — a transfer that shipped only a
/// recent window would leave the receiver's protocol layer waiting forever
/// on any dependency older than the window. Thanks to per-origin run
/// compaction the payload is O(replicas + clients), not O(history).
#[derive(Clone)]
struct Checkpoint {
    applied_through: u64,
    payload: Arc<Vec<u8>>,
}

/// One donor's in-flight snapshot transfer, assembled chunk by chunk.
struct DonorTransfer {
    applied_through: u64,
    total: u32,
    received: u32,
    chunks: Vec<Option<Vec<u8>>>,
    suffix: Vec<Command>,
    /// The donor's execution cursor at donation time (last chunk only;
    /// consistent with snapshot + suffix).
    cursor: ExecutionCursor,
}

/// The fields of one [`WireMessage::SnapshotChunk`], regrouped so the core
/// loop can pass them around as a unit.
struct ChunkFields {
    from: NodeId,
    applied_through: u64,
    seq: u32,
    total: u32,
    bytes: Vec<u8>,
    suffix: Vec<Command>,
    cursor: ExecutionCursor,
}

/// The catching-up phase of a restarted replica: requests are out, chunks
/// are being assembled per donor, and executions produced by the local
/// process meanwhile are buffered until the restore resolves.
struct RestoreState {
    deadline: Instant,
    donors: HashMap<NodeId, DonorTransfer>,
    pending: Vec<Execution>,
}

struct CoreLoop<P: Process> {
    id: NodeId,
    nodes: usize,
    process: P,
    mailbox: Receiver<WireMessage<P::Message>>,
    io: Arc<IoQueue>,
    timers: TimerWheel<P::Message>,
    delay: Option<DelayShim>,
    timer_scale: f64,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    /// The replica's execution engine: serial on this thread, or sharded
    /// across worker threads when the state machine is partitionable and
    /// `exec_workers >= 2`. Every execution is applied here, and its output
    /// answers `ClientRequest` submissions. Shared with the `NetReplica`
    /// handle so orchestrators can read fingerprints and watermarks.
    executor: Arc<Executor>,
    /// Proposer batching knobs (disabled ⇒ the mailbox drain never runs).
    batch: BatchConfig,
    /// Allocates this replica's batch-lane unit ids.
    batcher: Batcher,
    /// A non-client envelope pulled off the mailbox while draining a batch;
    /// dispatched before the mailbox is consulted again.
    stash: Option<WireMessage<P::Message>>,
    /// Count of multi-command units assembled.
    batch_assembled: Counter,
    /// Count of client commands that travelled inside those units.
    batch_commands: Counter,
    /// The latest snapshot cut, served to catching-up peers.
    checkpoint: Option<Checkpoint>,
    /// Cut a new checkpoint every this many applied commands.
    checkpoint_interval: u64,
    /// Commands applied since the checkpoint, in execution order — the
    /// replayable suffix a donor sends alongside its snapshot. Cleared on
    /// every checkpoint cut, so its length is bounded by the interval.
    suffix_log: Vec<Command>,
    /// `Some` while this replica is catching up from a peer snapshot.
    restore: Option<RestoreState>,
    /// Every *command* id this replica has applied (batch units count one
    /// id per inner command), floor-compacted; consulted and fed on every
    /// apply so a redelivered decision (reconnect replay after a crash)
    /// cannot be applied twice.
    applied: AppliedSummary,
    /// Every *consensus unit* id this replica has executed — plain command
    /// ids plus batch-lane unit ids. Protocol layers name units (a
    /// predecessor set can reference a batch id), so transfers ship this
    /// alongside `applied`; it also reseeds the batcher's id lane after a
    /// restart so a new incarnation never reuses a logged unit id.
    ordered: AppliedSummary,
    /// The highest state-machine watermark this loop has observed. The
    /// machine only ever moves forward — a regression means a restore or a
    /// replay mis-ordered against live applies, which would let a client
    /// reply observe a cursor ahead of `applied_through` — so the core loop
    /// asserts monotonicity at every step that touches the machine.
    watermark: u64,
    /// The replica's telemetry registry: protocol spans drained from the
    /// process contexts and runtime spans (submit/execute/reply) land here.
    registry: Arc<Registry>,
    /// Wall-clock microseconds (UNIX epoch) at `epoch`: added to every
    /// span's epoch-relative timestamp before it is recorded.
    wall0: u64,
    stats: Arc<NetReplicaStats>,
    /// Commands submitted to **this** replica as `ClientRequest`s, i.e. the
    /// only ones a connection here may be waiting on. Every replica executes
    /// every command, so without this filter (N−1)/N of the reply frames
    /// would be serialized just to be dropped by the event loop.
    reply_wanted: HashSet<CommandId>,
    /// Live decision-stream subscribers (maintained by the event loop);
    /// when zero, `Event::Decisions` batches are not even serialized.
    subscribers: Arc<AtomicUsize>,
    /// The durable write-ahead log, when [`NetReplicaConfig::data_dir`] is
    /// set: commands are appended before they are applied, a cursor mark
    /// closes each apply batch, and checkpoints become durable records that
    /// rotate and compact the segment files.
    wal: Option<Wal>,
    /// What the log's startup scan recovered; replayed once, before the
    /// first mailbox message, then `None` forever.
    disk_recovery: Option<Recovery>,
}

impl<P> CoreLoop<P>
where
    P: Process,
    P::Message: serde::Serialize,
{
    fn now_us(&self) -> SimTime {
        self.epoch.elapsed().as_micros() as SimTime
    }

    fn run(mut self) {
        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
        let mut new_timers: Vec<(SimTime, P::Message)> = Vec::new();
        let mut executions: Vec<Execution> = Vec::new();
        let mut spans: Vec<SpanEvent> = Vec::new();

        {
            let now = self.now_us();
            let mut ctx = Context::for_runtime(
                self.id,
                self.nodes,
                now,
                &mut outbox,
                &mut new_timers,
                &mut executions,
            )
            .with_spans(&mut spans);
            self.process.on_start(&mut ctx);
        }
        // Disk first: replay this replica's own log before anything else —
        // snapshot transfer (requested below, when `catch_up` is set) then
        // only has to cover what disk could not provide.
        if let Some(recovery) = self.disk_recovery.take() {
            self.recover_from_disk(
                recovery,
                &mut outbox,
                &mut new_timers,
                &mut executions,
                &mut spans,
            );
        }
        self.flush(&mut outbox, &mut new_timers, &mut executions, &mut spans);
        if self.restore.is_some() {
            self.request_snapshots();
        }

        loop {
            // Block until the earliest timer deadline (the mailbox wait *is*
            // the timer sleep); a long backstop covers the no-timer case —
            // shutdown arrives as a mailbox message, not a poll. A pending
            // restore's give-up deadline also bounds the wait.
            let mut timeout = self
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_secs(1));
            if let Some(restore) = &self.restore {
                timeout = timeout.min(restore.deadline.saturating_duration_since(Instant::now()));
            }
            let next = match self.stash.take() {
                // An envelope pulled off the mailbox by a batch drain is
                // dispatched before the mailbox is consulted again.
                Some(envelope) => Ok(envelope),
                None => self.mailbox.recv_timeout(timeout),
            };
            match next {
                Ok(envelope) => {
                    if !self.dispatch(
                        envelope,
                        &mut outbox,
                        &mut new_timers,
                        &mut executions,
                        &mut spans,
                    ) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.check_restore_deadline();
            // Fire due timers and self-deliveries through the same envelope
            // path the mailbox uses.
            for msg in self.timers.pop_due(Instant::now()) {
                self.dispatch(
                    WireMessage::Timer { msg },
                    &mut outbox,
                    &mut new_timers,
                    &mut executions,
                    &mut spans,
                );
            }
            self.flush(&mut outbox, &mut new_timers, &mut executions, &mut spans);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }

        self.shutdown.store(true, Ordering::SeqCst);
        // Final flush so subscribers see everything executed, then hand the
        // event loop its shutdown command: it aborts the client requests
        // still awaiting replies and closes every socket.
        self.publish(&mut executions);
        self.io.push(IoCmd::Shutdown);
    }

    /// Handles one envelope; returns `false` when the loop should stop.
    fn dispatch(
        &mut self,
        envelope: WireMessage<P::Message>,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) -> bool {
        match envelope {
            WireMessage::Shutdown => return false,
            WireMessage::Hello { .. } | WireMessage::Subscribe => {}
            // Stats scrapes are answered by the event loop on the requesting
            // connection and never forwarded here; this arm only fires for
            // in-process mailbox injections, which need no reply.
            WireMessage::StatsRequest => {}
            WireMessage::Peer { from, msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                        .with_spans(spans);
                self.process.on_message(from, msg, &mut ctx);
            }
            WireMessage::ClientRequest { cmd } => {
                if self.restore.is_some() {
                    // Fail fast: a restoring replica's state machine is not
                    // serving yet, and a queued command would hang the
                    // client's ticket until its timeout. The abort frame
                    // travels the reply route the event loop just
                    // registered, resolving the ticket with an error now.
                    let id = cmd.id();
                    let abort = Event::ClientAbort {
                        from: self.id,
                        command: id,
                        reason: "replica is restoring from a peer snapshot; retry shortly"
                            .to_string(),
                    };
                    if let Ok(frame) = frame_bytes(&abort) {
                        self.io.push(IoCmd::ClientReply { command: id, frame });
                    }
                    return true;
                }
                // Group commit: fold every client request already queued in
                // the mailbox into one consensus unit. One ordering round
                // (and, durably, one fsync) then covers the whole batch; the
                // apply path fans replies back out per inner command.
                let mut queued = vec![cmd];
                while self.batch.enabled() && queued.len() < self.batch.max_batch {
                    match self.mailbox.try_recv() {
                        Ok(WireMessage::ClientRequest { cmd }) => queued.push(cmd),
                        Ok(other) => {
                            self.stash = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                if queued.len() > 1 {
                    self.batch_assembled.inc();
                    self.batch_commands.add(queued.len() as u64);
                }
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                        .with_spans(spans);
                for cmd in &queued {
                    self.reply_wanted.insert(cmd.id());
                    ctx.trace(TracePhase::Submit, cmd.id());
                }
                let unit = self.batcher.coalesce(queued);
                self.process.on_client_command(unit, &mut ctx);
            }
            WireMessage::SnapshotRequest { from } => self.serve_snapshot(from),
            WireMessage::SnapshotChunk {
                from,
                applied_through,
                seq,
                total,
                bytes,
                suffix,
                cursor,
            } => {
                self.accept_chunk(
                    ChunkFields { from, applied_through, seq, total, bytes, suffix, cursor },
                    outbox,
                    new_timers,
                    executions,
                    spans,
                );
            }
            WireMessage::Client { cmd } => {
                let id = cmd.id();
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                        .with_spans(spans);
                ctx.trace(TracePhase::Submit, id);
                self.process.on_client_command(cmd, &mut ctx);
            }
            WireMessage::Timer { msg } => {
                let now = self.now_us();
                let mut ctx =
                    Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                        .with_spans(spans);
                self.process.on_message(self.id, msg, &mut ctx);
            }
        }
        true
    }

    /// Routes buffered sends and timers, then publishes fresh executions.
    ///
    /// Peer messages are serialized here (the event loop deals in opaque
    /// frames) and pushed to the I/O thread in one batch — one waker write,
    /// and every frame of this step lands in the same flush.
    fn flush(
        &mut self,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) {
        // Spans carry `Context::now` (epoch-relative) timestamps; rebase
        // onto the wall clock so scraped rings line up across replicas.
        for span in spans.iter_mut() {
            span.at += self.wall0;
        }
        self.registry.record_spans(spans);
        let now = Instant::now();
        let mut cmds: Vec<IoCmd> = Vec::new();
        for (to, msg) in outbox.drain(..) {
            let deliver_at = match &self.delay {
                Some(shim) => now + shim.one_way(self.id, to),
                None => now,
            };
            if to == self.id {
                // Loopback: no socket, but the artificial delay still applies.
                self.timers.push(deliver_at, msg);
            } else if let Ok(frame) = frame_bytes(&WireMessage::Peer { from: self.id, msg }) {
                cmds.push(IoCmd::SendPeer { to, deliver_at, frame });
            }
        }
        for (delay_us, msg) in new_timers.drain(..) {
            let scaled = Duration::from_micros((delay_us as f64 * self.timer_scale) as u64);
            self.timers.push(now + scaled, msg);
        }
        self.io.push_many(cmds);
        self.publish(executions);
    }

    /// Routes fresh executions: buffered while a restore is pending (they
    /// are applied after the snapshot resolves, minus what the replay
    /// already covered), applied immediately otherwise.
    fn publish(&mut self, executions: &mut Vec<Execution>) {
        if executions.is_empty() {
            return;
        }
        if let Some(restore) = &mut self.restore {
            restore.pending.append(executions);
            return;
        }
        self.apply_executions(executions);
    }

    /// Applies executions through the executor and hands the event loop the
    /// reply and decision-stream frames: one [`Event::ClientReply`] per
    /// inner command (routed to whichever connection submitted it, or
    /// dropped if none did) and one [`Event::Decisions`] batch for the
    /// subscribers. The whole round goes to the executor at once, so with a
    /// sharded executor non-conflicting units apply in parallel; batch
    /// units unpack here — the WAL logs each unit filtered to its surviving
    /// inner commands, and one commit (one fsync) closes the round.
    /// Serialization happens here; the I/O thread never blocks on a stalled
    /// sink — slow connections buffer and flush on writability.
    fn apply_executions(&mut self, executions: &mut Vec<Execution>) {
        if executions.is_empty() {
            return;
        }
        let mut cmds: Vec<IoCmd> = Vec::with_capacity(executions.len() + 1);
        let mut batch = Vec::with_capacity(executions.len());
        let mut runtime_spans: Vec<SpanEvent> = Vec::with_capacity(executions.len());
        let wall_now = telemetry::wall_clock_us();
        // Dedup: a unit already executed — through catch-up replay, or as a
        // redelivered decision after a reconnect — must not be applied
        // again (it would fork this replica's state machine, and its
        // decision was already published on first apply or in the restore's
        // synthesized transfer batch). Inside a surviving unit, individual
        // inner commands covered by a transfer are filtered out the same
        // way. A connection waiting on a deduplicated command (a client
        // that reused an id, e.g. reconnecting with a stale sequence base)
        // gets an explicit abort — the output its submission would have
        // produced is unknowable now, and silence would hang its ticket
        // until the session timeout.
        let mut round: Vec<(Execution, Command)> = Vec::with_capacity(executions.len());
        for execution in executions.drain(..) {
            let unit_id = execution.command.id();
            if self.ordered.contains(unit_id) {
                let waiting: Vec<CommandId> =
                    execution.command.leaves().iter().map(Command::id).collect();
                for id in waiting {
                    self.abort_duplicate(id, &mut cmds);
                }
                continue;
            }
            self.ordered.insert(unit_id);
            let leaves = execution.command.leaves();
            let mut surviving = Vec::with_capacity(leaves.len());
            for leaf in leaves {
                if self.applied.contains(leaf.id()) {
                    self.abort_duplicate(leaf.id(), &mut cmds);
                } else {
                    surviving.push(leaf.clone());
                }
            }
            if surviving.is_empty() {
                continue;
            }
            // Re-pack the unit to its surviving inner commands: the WAL
            // record and the executor both see exactly what will apply.
            let unit = if execution.command.is_batch() {
                Command::batch(unit_id, surviving)
            } else {
                surviving.pop().expect("one surviving plain command")
            };
            round.push((execution, unit));
        }
        // Log before apply: a command is on disk (staged, at least) before
        // its effects exist, so recovery can only ever see a
        // logged-but-unapplied command — replayable — never an
        // applied-but-unlogged one, which would be lost state.
        let units: Vec<Command> = round.iter().map(|(_, unit)| unit.clone()).collect();
        if let Some(wal) = &mut self.wal {
            for unit in &units {
                if let Err(err) = wal.append_command(unit) {
                    eprintln!("replica {} wal append failed: {err}", self.id);
                }
            }
        }
        let outputs = self.executor.apply_round(&units);
        for ((execution, unit), leaf_outputs) in round.into_iter().zip(outputs) {
            for (leaf, output) in unit.leaves().iter().zip(leaf_outputs) {
                let id = leaf.id();
                self.applied.insert(id);
                runtime_spans.push(SpanEvent {
                    command: id,
                    phase: TracePhase::Execute,
                    at: wall_now,
                    node: self.id,
                });
                if self.reply_wanted.remove(&id) {
                    runtime_spans.push(SpanEvent {
                        command: id,
                        phase: TracePhase::Reply,
                        at: wall_now,
                        node: self.id,
                    });
                    let mut decision = execution.decision.clone();
                    decision.command = id;
                    let reply = Event::ClientReply { from: self.id, command: id, output, decision };
                    if let Ok(frame) = frame_bytes(&reply) {
                        cmds.push(IoCmd::ClientReply { command: id, frame });
                    }
                }
            }
            self.suffix_log.push(unit);
            batch.push(execution.decision);
        }
        self.registry.record_spans(&mut runtime_spans);
        let watermark = self.executor.applied_through();
        self.observe_watermark(watermark);
        // Close the apply batch on disk *before* its reply frames reach the
        // event loop: a cursor mark (so a slot-based protocol resumes
        // exactly here, not at the stale checkpoint cursor) and the fsync
        // policy's batch boundary. Under per-record/per-batch policies an
        // acknowledged command is on the platter before the client sees the
        // reply; under an interval policy it is at least in the page cache.
        if let Some(wal) = &mut self.wal {
            let cursor = self.process.execution_cursor();
            let result = if matches!(cursor, ExecutionCursor::Ids) {
                // Dependency-tracked protocols carry no slot cursor; the
                // logged command ids are the whole resume point.
                wal.commit()
            } else {
                wal.append_cursor(&cursor).and_then(|()| wal.commit())
            };
            if let Err(err) = result {
                eprintln!("replica {} wal commit failed: {err}", self.id);
            }
        }
        if self.subscribers.load(Ordering::Relaxed) > 0 {
            let event = Event::Decisions { from: self.id, batch };
            if let Ok(frame) = frame_bytes(&event) {
                cmds.push(IoCmd::Publish { frame });
            }
        }
        self.io.push_many(cmds);
        if self.suffix_log.len() as u64 >= self.checkpoint_interval {
            self.cut_checkpoint();
        }
    }

    /// Aborts the ticket of a connection waiting on `id`, if any: the
    /// command was deduplicated (already applied here), so the reply it
    /// expects will never be produced.
    fn abort_duplicate(&mut self, id: CommandId, cmds: &mut Vec<IoCmd>) {
        if self.reply_wanted.remove(&id) {
            let abort = Event::ClientAbort {
                from: self.id,
                command: id,
                reason: "command id was already applied here (duplicate submission or \
                         reused sequence); resubmit with a fresh id"
                    .to_string(),
            };
            if let Ok(frame) = frame_bytes(&abort) {
                cmds.push(IoCmd::ClientReply { command: id, frame });
            }
        }
    }

    // ---- disk-first recovery --------------------------------------------

    /// Replays what the write-ahead log recovered, before the first mailbox
    /// message: restore the latest durable checkpoint (the same serialized
    /// payload a snapshot donor would send), apply the logged unit suffix,
    /// then hand the protocol a [`StateTransfer`] whose cursor merges the
    /// checkpoint's embedded cursor with the last logged cursor mark — so a
    /// slot-based protocol resumes exactly where the previous incarnation
    /// left off. Ends by cutting a fresh checkpoint, which also compacts the
    /// log down to one segment.
    fn recover_from_disk(
        &mut self,
        recovery: Recovery,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) {
        if recovery.is_empty() {
            return;
        }
        let mut covered = AppliedSummary::default();
        let mut covered_units = AppliedSummary::default();
        let mut checkpoint_cursor = ExecutionCursor::Ids;
        if let Some(image) = &recovery.checkpoint {
            let Ok((snapshot, applied, ordered, cursor)) =
                bincode::deserialize::<(Vec<u8>, AppliedSummary, AppliedSummary, ExecutionCursor)>(
                    &image.payload,
                )
            else {
                // A CRC-valid but undecodable checkpoint means a format
                // change or writer bug, not disk damage; starting empty
                // (and falling back to snapshot transfer if catch_up is
                // set) beats serving half-restored state.
                eprintln!("replica {} wal checkpoint undecodable; starting empty", self.id);
                return;
            };
            if self.executor.restore(&snapshot).is_err() {
                eprintln!(
                    "replica {} wal checkpoint rejected by state machine; starting empty",
                    self.id
                );
                return;
            }
            covered = applied;
            covered_units = ordered;
            checkpoint_cursor = cursor;
        }
        // Suffix records are consensus units (batches log filtered to the
        // inner commands that actually applied), so replaying them through
        // the executor reproduces exactly the pre-crash applies.
        self.executor.apply_round(&recovery.suffix);
        let watermark = self.executor.applied_through();
        self.observe_watermark(watermark);
        let mut transfer = StateTransfer {
            applied: covered,
            ordered: covered_units,
            cursor: checkpoint_cursor.merge(recovery.cursor),
        };
        transfer
            .applied
            .extend(recovery.suffix.iter().flat_map(|unit| unit.leaves().iter().map(Command::id)));
        transfer.ordered.extend(recovery.suffix.iter().map(Command::id));
        self.applied.merge(&transfer.applied);
        self.ordered.merge(&transfer.ordered);
        // A restarted proposer must never reuse a unit id that is already on
        // disk: fast-forward the batch-id lane past everything recovered.
        self.batcher.reseed(&self.ordered);
        {
            let now = self.now_us();
            let mut ctx =
                Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                    .with_spans(spans);
            self.process.on_state_transfer(&transfer, &mut ctx);
        }
        self.publish_transfer_decisions(&transfer);
        // The recovered state is the new baseline: cutting a checkpoint
        // writes it as one durable record and compacts away every segment
        // the scan just replayed.
        self.suffix_log.clear();
        self.cut_checkpoint();
    }

    // ---- snapshot-based state transfer ----------------------------------

    /// Asserts that the state machine's watermark never moves backwards as
    /// observed by this loop — the regression guard behind the
    /// "replies must never observe a cursor ahead of `applied_through`"
    /// invariant of restart catch-up.
    fn observe_watermark(&mut self, watermark: u64) {
        assert!(
            watermark >= self.watermark,
            "replica {} state-machine watermark regressed: {} -> {}",
            self.id,
            self.watermark,
            watermark
        );
        self.watermark = watermark;
    }

    /// Snapshots the state machine (plus the floor-compacted applied-id
    /// summary it covers and the protocol's execution cursor) as the new
    /// checkpoint payload and resets the suffix log — the payload must stay
    /// consistent: the log holds exactly the commands applied after the
    /// checkpoint watermark, and the cursor is the protocol's resume point
    /// for precisely that state.
    fn cut_checkpoint(&mut self) {
        let snapshot = self.executor.snapshot();
        let applied_through = self.executor.applied_through();
        self.observe_watermark(applied_through);
        let cursor = self.process.execution_cursor();
        let payload = bincode::serialize(&(snapshot, &self.applied, &self.ordered, cursor))
            .expect("checkpoint payload serializes");
        // The same serialized payload becomes the durable checkpoint record:
        // the log rotates to a fresh segment headed by it and compacts every
        // older segment away (they are fully covered). A cut that follows a
        // donor restore also lands here, so the log always reflects the
        // machine even when the bytes arrived over the wire.
        if let Some(wal) = &mut self.wal {
            if let Err(err) = wal.append_checkpoint(applied_through, &payload) {
                eprintln!("replica {} wal checkpoint failed: {err}", self.id);
            }
        }
        self.checkpoint = Some(Checkpoint { applied_through, payload: Arc::new(payload) });
        self.suffix_log.clear();
    }

    /// Broadcasts a [`WireMessage::SnapshotRequest`] to every peer. The
    /// frames queue on the (re)connecting peer links and flow as soon as
    /// each link comes up.
    fn request_snapshots(&mut self) {
        let now = Instant::now();
        let mut cmds: Vec<IoCmd> = Vec::with_capacity(self.nodes.saturating_sub(1));
        for index in 0..self.nodes {
            let to = NodeId::from_index(index);
            if to == self.id {
                continue;
            }
            let deliver_at = match &self.delay {
                Some(shim) => now + shim.one_way(self.id, to),
                None => now,
            };
            let request = WireMessage::<P::Message>::SnapshotRequest { from: self.id };
            if let Ok(frame) = frame_bytes(&request) {
                cmds.push(IoCmd::SendPeer { to, deliver_at, frame });
            }
        }
        self.io.push_many(cmds);
    }

    /// Donates this replica's state to a catching-up peer: the latest
    /// checkpoint (cut fresh if none exists yet), chunked, with the decided
    /// suffix riding on the last chunk.
    fn serve_snapshot(&mut self, to: NodeId) {
        if to == self.id || self.restore.is_some() {
            return; // a replica that is itself restoring cannot donate
        }
        if self.checkpoint.is_none() {
            self.cut_checkpoint();
        }
        let checkpoint = self.checkpoint.clone().expect("checkpoint just cut");
        let suffix = self.suffix_log.clone();
        // Donation-time cursor: consistent with snapshot *plus* suffix, so
        // the receiver's protocol resumes past everything it replays.
        let cursor = self.process.execution_cursor();
        let bytes = &checkpoint.payload;
        let total = (bytes.len().div_ceil(SNAPSHOT_CHUNK)).max(1) as u32;
        let now = Instant::now();
        let deliver_at = match &self.delay {
            Some(shim) => now + shim.one_way(self.id, to),
            None => now,
        };
        let mut cmds: Vec<IoCmd> = Vec::with_capacity(total as usize);
        for seq in 0..total {
            let start = seq as usize * SNAPSHOT_CHUNK;
            let end = (start + SNAPSHOT_CHUNK).min(bytes.len());
            let last = seq + 1 == total;
            // The last chunk's suffix is bounded by the checkpoint interval,
            // but the cursor's decided backlog is not (a Mencius donor
            // stalled on the crashed node's slot gap accumulates one entry
            // per downtime commit). If the frame would exceed the wire's
            // cap, shed backlog from the tail until it fits — the receiver
            // executes in slot order, so a truncated tail degrades to the
            // down-queue redelivery path instead of an invisible, silently
            // dropped transfer that stalls the whole restore.
            let mut send_cursor = if last { cursor.clone() } else { ExecutionCursor::Ids };
            let frame = loop {
                let chunk = WireMessage::<P::Message>::SnapshotChunk {
                    from: self.id,
                    applied_through: checkpoint.applied_through,
                    seq,
                    total,
                    bytes: bytes[start..end].to_vec(),
                    suffix: if last { suffix.clone() } else { Vec::new() },
                    cursor: send_cursor.clone(),
                };
                match frame_bytes(&chunk) {
                    Ok(frame) => break Some(frame),
                    Err(_) => {
                        let backlog = send_cursor.backlog_len();
                        if backlog == 0 {
                            // Even the backlog-free frame is oversized
                            // (enormous commands?): surface it as a drop
                            // instead of vanishing silently.
                            self.stats.frames_dropped.inc();
                            break None;
                        }
                        send_cursor.truncate_backlog(backlog / 2);
                    }
                }
            };
            if let Some(frame) = frame {
                self.stats.snapshot_bytes_sent.add((end - start) as u64);
                cmds.push(IoCmd::SendPeer { to, deliver_at, frame });
            }
        }
        self.stats.snapshots_served.inc();
        self.io.push_many(cmds);
    }

    /// Assembles one donor's transfer; the first donor to complete wins.
    fn accept_chunk(
        &mut self,
        chunk: ChunkFields,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) {
        let ChunkFields { from, applied_through, seq, total, bytes, suffix, cursor } = chunk;
        let Some(restore) = &mut self.restore else {
            return; // not restoring (late or duplicate transfer): ignore
        };
        if total == 0 || seq >= total {
            return;
        }
        let donor = restore.donors.entry(from).or_insert_with(|| DonorTransfer {
            applied_through,
            total,
            received: 0,
            chunks: vec![None; total as usize],
            suffix: Vec::new(),
            cursor: ExecutionCursor::Ids,
        });
        if donor.total != total || donor.applied_through != applied_through {
            return; // frames from two different transfers of one donor
        }
        if donor.chunks[seq as usize].is_none() {
            donor.received += 1;
        }
        donor.chunks[seq as usize] = Some(bytes);
        if seq + 1 == total {
            donor.suffix = suffix;
            donor.cursor = cursor;
        }
        if donor.received == donor.total {
            self.finish_restore(from, outbox, new_timers, executions, spans);
        }
    }

    /// Installs a completed donor transfer: restore the snapshot, replay the
    /// decided suffix, tell the process which commands are covered (so its
    /// dependency tracking stops waiting for them), then apply whatever the
    /// local process executed while the transfer was in flight (minus the
    /// commands the replay covered).
    fn finish_restore(
        &mut self,
        donor_id: NodeId,
        outbox: &mut Vec<(NodeId, P::Message)>,
        new_timers: &mut Vec<(SimTime, P::Message)>,
        executions: &mut Vec<Execution>,
        spans: &mut Vec<SpanEvent>,
    ) {
        let Some(mut restore) = self.restore.take() else { return };
        let Some(donor) = restore.donors.remove(&donor_id) else {
            self.restore = Some(restore);
            return;
        };
        // Hybrid guard: a replica that already replayed its own write-ahead
        // log may be *ahead* of this donor (e.g. the donor itself restarted
        // or checkpointed long ago). Installing the donation would regress
        // the state machine; skip it and keep waiting for a donor that can
        // actually add something — the restore deadline serves from disk
        // state if none can.
        let suffix_commands: u64 = donor.suffix.iter().map(|unit| unit.leaves().len() as u64).sum();
        if donor.applied_through + suffix_commands < self.watermark {
            self.restore = Some(restore);
            return;
        }
        let mut payload = Vec::new();
        for chunk in donor.chunks {
            payload.extend_from_slice(&chunk.expect("transfer complete"));
        }
        let Ok((snapshot, covered, covered_units, checkpoint_cursor)) =
            bincode::deserialize::<(Vec<u8>, AppliedSummary, AppliedSummary, ExecutionCursor)>(
                &payload,
            )
        else {
            // Broken donor: stay in the restoring state and wait for
            // another transfer (or the deadline).
            self.restore = Some(restore);
            return;
        };
        if self.executor.restore(&snapshot).is_err() {
            self.restore = Some(restore);
            return;
        }
        self.executor.apply_round(&donor.suffix);
        let watermark = self.executor.applied_through();
        // The restored watermark must land exactly where the transfer
        // claims (snapshot coverage + replayed suffix) — and, like every
        // other step, never behind anything this loop already observed.
        self.observe_watermark(watermark);
        assert!(
            watermark >= donor.applied_through,
            "replica {} restored watermark {watermark} behind the donated checkpoint {}",
            self.id,
            donor.applied_through
        );
        // Inherit the donor's dedup knowledge: everything its snapshot and
        // suffix cover counts as applied here, so redelivered crash-time
        // decisions (reconnecting peers drain their down-queues into this
        // replica) are skipped, not applied twice. The donation-time cursor
        // covers the suffix the checkpoint-time cursor predates; merging
        // keeps whichever claim is further along.
        let mut transfer = StateTransfer {
            applied: covered,
            ordered: covered_units,
            cursor: checkpoint_cursor.merge(donor.cursor),
        };
        transfer
            .applied
            .extend(donor.suffix.iter().flat_map(|unit| unit.leaves().iter().map(Command::id)));
        transfer.ordered.extend(donor.suffix.iter().map(Command::id));
        self.applied.merge(&transfer.applied);
        self.ordered.merge(&transfer.ordered);
        self.batcher.reseed(&self.ordered);
        // The protocol layer needs the same knowledge: a later command whose
        // dependency set names a transferred command must not wait for a
        // local execution that will never happen, and a slot-based
        // protocol's execution cursor must fast-forward past the restored
        // state instead of stalling at its slot gap.
        {
            let now = self.now_us();
            let mut ctx =
                Context::for_runtime(self.id, self.nodes, now, outbox, new_timers, executions)
                    .with_spans(spans);
            self.process.on_state_transfer(&transfer, &mut ctx);
        }
        self.publish_transfer_decisions(&transfer);
        self.stats.catch_up_replayed.add(donor.suffix.len() as u64);
        self.stats.catch_ups_completed.inc();
        // The restored state is this replica's new baseline: checkpoint it
        // so it can donate in turn, then catch up on local executions.
        self.suffix_log.clear();
        self.cut_checkpoint();
        let mut pending = std::mem::take(&mut restore.pending);
        self.apply_executions(&mut pending);
    }

    /// Reports a transfer's executions on the decision stream. The protocol
    /// layer will never re-deliver a command the transfer covers (its
    /// dependency tracking / slot cursor now counts it as executed), so
    /// without this a subscriber that counts on the stream being gap-free
    /// waits forever for executions that already happened — a real race
    /// pre-fix: a command decided *during* a transfer landed in the donated
    /// snapshot and then never appeared on the restarted replica's stream.
    /// Disk recovery synthesizes the same batch for the commands it
    /// replayed. The records carry the completion time and no protocol
    /// timestamps. The enumeration is O(history) but runs once per
    /// restore; emitting bounded frames keeps any single one far from
    /// MAX_FRAME_LEN (one giant frame would be silently unsendable).
    fn publish_transfer_decisions(&mut self, transfer: &StateTransfer) {
        if self.subscribers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let now = self.now_us();
        let mut cmds: Vec<IoCmd> = Vec::new();
        // Enumerate everything the transfer covers — unit ids (what the
        // live stream carries) plus inner-command ids of batches — so no
        // subscriber waits on an id that already executed.
        for window in transfer.unit_summary().ids().chunks(4096) {
            let batch: Vec<Decision> = window
                .iter()
                .map(|&id| Decision {
                    command: id,
                    timestamp: Timestamp::ZERO,
                    path: DecisionPath::Ordered,
                    proposed_at: now,
                    executed_at: now,
                    breakdown: LatencyBreakdown::default(),
                })
                .collect();
            let event = Event::Decisions { from: self.id, batch };
            if let Ok(frame) = frame_bytes(&event) {
                cmds.push(IoCmd::Publish { frame });
            }
        }
        self.io.push_many(cmds);
    }

    /// Gives up on a restore whose deadline passed: serve with whatever
    /// state we have, starting with the buffered local executions.
    fn check_restore_deadline(&mut self) {
        let expired = self.restore.as_ref().is_some_and(|rs| Instant::now() >= rs.deadline);
        if expired {
            let mut restore = self.restore.take().expect("restore present");
            let mut pending = std::mem::take(&mut restore.pending);
            self.apply_executions(&mut pending);
        }
    }
}
