//! An external TCP client of a running replica.
//!
//! [`ReplicaClient`] is what a process *outside* the cluster uses: it opens
//! one TCP connection to any replica's listen address, submits commands as
//! [`WireMessage::ClientRequest`] frames, and receives
//! [`Event::ClientReply`] frames back on the same connection once the
//! command executes at that replica. It needs no knowledge of the consensus
//! protocol running behind the socket — client frames are
//! protocol-agnostic.
//!
//! Command ids are `(replica, sequence)` pairs; the sequence starts at a
//! caller-chosen base so that independent clients (or a client that
//! reconnects) keep their ids disjoint.
//!
//! ## Known limit: one reader thread per client
//!
//! Each [`ReplicaClient`] spawns its own reader thread to pump reply frames
//! off its connection. That is the right shape for the handful of clients a
//! test or tool opens, but a *process* holding thousands of connections
//! pays one OS thread per connection on the client side — the same
//! thread-per-link cost the replica side already shed by moving to the
//! epoll reactor. Load generators sidestep it today by multiplexing many
//! in-flight commands over few connections (see `tests/batch_soak.rs`);
//! a shared client-side reactor that pumps every connection from one
//! thread is the follow-up tracked in `ROADMAP.md`.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use consensus_core::session::{
    ClientHandle, Op, ParkDrive, Reply, SessionCore, SessionError, SubmitTransport, Ticket,
};
use consensus_types::{Command, NodeId};
use telemetry::{RegistrySnapshot, SpanRingSnapshot};

use crate::wire::{send_msg, Event, FrameReader, WireMessage};

/// Writes `ClientRequest` frames over the client's connection. The `()`
/// message type pins the protocol-agnostic encoding: client frames never
/// involve the consensus message type.
struct RemoteTransport {
    writer: Mutex<TcpStream>,
}

impl SubmitTransport for RemoteTransport {
    fn submit(&self, node: NodeId, cmd: Command, _delay_us: u64) -> Result<(), SessionError> {
        let mut writer = self.writer.lock().expect("client writer lock");
        send_msg(&mut *writer, &WireMessage::<()>::ClientRequest { cmd })
            .map_err(|err| SessionError::Disconnected(format!("submit to {node} failed: {err}")))
    }
}

/// A synchronous client of one replica, connected over real TCP.
///
/// See the `consensus_client` example for an end-to-end external process
/// built on this type.
pub struct ReplicaClient {
    handle: ClientHandle,
    core: Arc<SessionCore>,
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl ReplicaClient {
    /// Connects to the replica `node` listening at `addr`. Command sequence
    /// numbers start after `seq_base`; pick disjoint bases for concurrent
    /// clients of the same replica (a reconnecting client passes its previous
    /// [`ReplicaClient::last_seq`]).
    pub fn connect(addr: SocketAddr, node: NodeId, seq_base: u64) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let core = SessionCore::new(consensus_core::session::DEFAULT_IN_FLIGHT);
        core.seed_sequence(node, seq_base);
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let mut read_half = stream.try_clone()?;
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _ = read_half.set_read_timeout(Some(Duration::from_millis(100)));
                let mut decoder = FrameReader::new();
                loop {
                    match decoder.read_msg::<_, Event>(&mut read_half) {
                        Ok(Some(Event::ClientReply { from, command, output, decision })) => {
                            core.complete(Reply { command, node: from, output, decision });
                        }
                        Ok(Some(Event::ClientAbort { command, reason, .. })) => {
                            core.fail(command, SessionError::Disconnected(reason));
                        }
                        // Stats replies are only solicited by scrape
                        // connections; one arriving here is stray noise.
                        Ok(Some(Event::Decisions { .. } | Event::StatsReply { .. })) => {}
                        Ok(None) => {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        Err(_) => {
                            core.close("connection to the replica was lost");
                            return;
                        }
                    }
                }
            })
        };
        let transport = Arc::new(RemoteTransport { writer: Mutex::new(stream.try_clone()?) });
        let handle = ClientHandle::new(node, Arc::clone(&core), transport, Arc::new(ParkDrive));
        Ok(Self { handle, core, stream, stop, reader: Some(reader) })
    }

    /// The replica this client submits to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.handle.node()
    }

    /// The highest command sequence number this client has used; pass it as
    /// `seq_base` when reconnecting so ids stay disjoint.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.core.current_sequence(self.node())
    }

    /// Submits an operation; the returned ticket resolves when the command
    /// executes at the connected replica.
    pub fn submit(&self, op: Op) -> Result<Ticket, SessionError> {
        self.handle.submit(op)
    }

    /// Writes `value` under `key` and waits for the reply (the previous
    /// value, if any).
    pub fn put(&self, key: u64, value: u64) -> Result<Reply, SessionError> {
        self.submit(Op::put(key, value))?.wait()
    }

    /// Reads `key` at the connected replica and waits for the reply.
    pub fn get(&self, key: u64) -> Result<Reply, SessionError> {
        self.submit(Op::get(key))?.wait()
    }

    /// Scrapes the connected replica's telemetry over a fresh connection:
    /// its full metric registry plus the command-lifecycle span ring.
    pub fn fetch_stats(&self) -> io::Result<StatsScrape> {
        scrape_stats(self.stream.peer_addr()?)
    }

    /// Closes the connection and joins the reader thread. Pending tickets
    /// fail with [`SessionError::Disconnected`].
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        self.core.close("client disconnected");
    }
}

impl Drop for ReplicaClient {
    fn drop(&mut self) {
        if self.reader.is_some() {
            self.teardown();
        }
    }
}

/// One replica's telemetry as returned by a live stats scrape.
#[derive(Debug, Clone)]
pub struct StatsScrape {
    /// The replica that answered.
    pub from: NodeId,
    /// Its metric registry: protocol counters (`decisions.fast`, …) plus
    /// transport counters (`net.frames_sent`, …) and histograms.
    pub snapshot: RegistrySnapshot,
    /// Its command-lifecycle span ring, timestamps in wall-clock
    /// microseconds since the UNIX epoch.
    pub spans: SpanRingSnapshot,
}

/// Scrapes the replica listening at `addr` with a 5-second deadline.
///
/// Opens a fresh connection, sends one [`WireMessage::StatsRequest`] and
/// waits for the [`Event::StatsReply`] the event loop answers with. The
/// request never touches the replica's consensus core loop, so scraping is
/// safe against a wedged protocol — only a dead event loop times out.
pub fn scrape_stats(addr: SocketAddr) -> io::Result<StatsScrape> {
    scrape_stats_deadline(addr, Duration::from_secs(5))
}

/// [`scrape_stats`] with a caller-chosen overall deadline.
pub fn scrape_stats_deadline(addr: SocketAddr, timeout: Duration) -> io::Result<StatsScrape> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    send_msg(&mut stream, &WireMessage::<()>::StatsRequest)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let deadline = Instant::now() + timeout;
    let mut decoder = FrameReader::new();
    loop {
        match decoder.read_msg::<_, Event>(&mut stream) {
            Ok(Some(Event::StatsReply { from, snapshot, spans })) => {
                return Ok(StatsScrape { from, snapshot, spans });
            }
            Ok(Some(_)) => {} // unsolicited frames on a scrape connection
            Ok(None) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "replica did not answer the stats scrape in time",
                    ));
                }
            }
            Err(err) => return Err(err),
        }
    }
}
