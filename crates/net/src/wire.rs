//! Length-prefixed bincode framing and the wire envelopes.
//!
//! Every TCP segment exchanged by the runtime is one *frame*: a little-endian
//! `u32` payload length, a little-endian `u32` CRC-32 checksum of the
//! payload, then the bincode payload. The checksum is verified on decode —
//! a mismatch surfaces as a [`checksum-mismatch error`](is_checksum_error)
//! so the transport can count it (`corrupt_frames`) and tear the connection
//! down rather than trust a desynchronized stream. Two envelope types flow
//! over the frames:
//!
//! * [`WireMessage`] — everything a replica *receives*: peer protocol
//!   messages, client command submissions (fire-and-forget
//!   [`WireMessage::Client`] or reply-expecting
//!   [`WireMessage::ClientRequest`]), decision-stream subscriptions,
//!   snapshot-based state transfer ([`WireMessage::SnapshotRequest`] /
//!   [`WireMessage::SnapshotChunk`], used by restarted replicas to catch
//!   up), timer wakeups (local mailbox only) and shutdown requests;
//! * [`Event`] — everything a replica *publishes* to client connections:
//!   batches of executed [`Decision`]s, plus per-command
//!   [`Event::ClientReply`] / [`Event::ClientAbort`] frames answering
//!   `ClientRequest` submissions.
//!
//! `WireMessage<M>` is generic over the protocol message type, so the one
//! envelope serves CAESAR, EPaxos, Multi-Paxos, Mencius and M²Paxos alike;
//! the client-facing variants do not involve `M`, so an external client can
//! speak the protocol without knowing which consensus algorithm is running
//! (it submits `WireMessage::<()>::ClientRequest` frames). The serde impls
//! are written by hand because the vendored derive does not support generic
//! types.

use std::io::{self, Read, Write};

use consensus_types::{Command, CommandId, Decision, ExecutionCursor, NodeId};
use telemetry::{RegistrySnapshot, SpanRingSnapshot};

/// Upper bound on a frame payload, guarding against corrupt length prefixes.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of frame header preceding the payload: `u32` length + `u32` CRC-32.
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 checksum (IEEE 802.3) of `bytes`, as carried in the frame header.
///
/// The implementation lives in [`consensus_types::crc32`] so the write-ahead
/// log (`wal`) can frame its on-disk records with the exact same checksum
/// path without depending on this crate; re-exported here because the wire
/// module is where frame producers and consumers look for it.
pub use consensus_types::crc32;

/// Marker put in checksum-failure errors so the transport can distinguish a
/// corrupted frame (count it, kill the link) from ordinary decode errors.
const CHECKSUM_MISMATCH: &str = "frame checksum mismatch";

/// Whether `err` reports a frame whose CRC-32 did not match its payload.
#[must_use]
pub fn is_checksum_error(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::InvalidData && err.to_string().contains(CHECKSUM_MISMATCH)
}

/// Envelope for everything a replica's mailbox can receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage<M> {
    /// First frame on every replica→replica connection: announces the dialing
    /// peer. Currently informational — [`WireMessage::Peer`] frames carry
    /// their own `from` — but it gives reconnects a well-defined preamble and
    /// is the natural hook for future link auth or connection dedup.
    Hello {
        /// The dialing replica.
        from: NodeId,
    },
    /// A protocol message relayed between replicas.
    Peer {
        /// The sending replica.
        from: NodeId,
        /// The protocol payload.
        msg: M,
    },
    /// A client command submitted to this replica, making it the command's
    /// leader. Fire-and-forget: no reply frame is produced.
    Client {
        /// The command to order.
        cmd: Command,
    },
    /// A client command submitted to this replica **with a reply**: once the
    /// command executes here, the replica answers the submitting connection
    /// with an [`Event::ClientReply`] frame carrying the key-value store
    /// result (read-your-writes at this replica). If the replica shuts down
    /// first, it answers with [`Event::ClientAbort`] instead.
    ClientRequest {
        /// The command to order.
        cmd: Command,
    },
    /// Subscribes the sending connection to this replica's decision stream
    /// ([`Event::Decisions`] frames flow back on the same socket).
    Subscribe,
    /// A self-scheduled timer wakeup. Never crosses the wire between
    /// replicas: the core loop wraps due timer-wheel entries in this variant
    /// (and in-process callers may inject them via the mailbox) so every
    /// delivery path flows through one envelope type.
    Timer {
        /// The timeout payload the process scheduled.
        msg: M,
    },
    /// A restarted replica asking a live peer for its state: the peer
    /// answers with a stream of [`WireMessage::SnapshotChunk`] frames
    /// carrying its latest checkpoint plus the decided suffix applied since
    /// (snapshot-based state transfer; see the `net` module docs).
    SnapshotRequest {
        /// The replica requesting catch-up.
        from: NodeId,
    },
    /// One chunk of a state-transfer payload, answering a
    /// [`WireMessage::SnapshotRequest`]. The payload is the donor's
    /// checkpoint — its state-machine snapshot bytes *plus* the
    /// floor-compacted summary of command ids that snapshot covers *plus*
    /// the protocol execution cursor captured when the checkpoint was cut,
    /// serialized together — and chunks `0..total` carry it in order, each
    /// bounded in size. The **last** chunk additionally carries the suffix
    /// of commands the donor applied after the snapshot watermark (which
    /// the receiver replays after restoring) and a fresh execution cursor
    /// captured at donation time, covering that suffix. The id summary is
    /// what makes recovery exact: the receiver seeds its dedup knowledge
    /// (and its protocol's dependency tracking) from it, so redelivered
    /// crash-time decisions are never double-applied and later commands
    /// never wait on dependencies the snapshot already covers. The cursor
    /// is what lets slot-based protocols resume: the receiver's process
    /// fast-forwards its execution gate past the transferred state instead
    /// of stalling at its slot gap (see `Process::on_state_transfer`).
    SnapshotChunk {
        /// The donating replica.
        from: NodeId,
        /// Commands covered by the snapshot (the watermark where the suffix
        /// starts).
        applied_through: u64,
        /// Index of this chunk, `0..total`.
        seq: u32,
        /// Total number of chunks in this transfer.
        total: u32,
        /// This chunk's slice of the transfer payload.
        bytes: Vec<u8>,
        /// On the last chunk only: commands applied after the snapshot, in
        /// execution order.
        suffix: Vec<Command>,
        /// On the last chunk only: the donor's execution cursor as of
        /// donation time (consistent with snapshot + suffix). Earlier
        /// chunks carry the empty [`ExecutionCursor::Ids`].
        cursor: ExecutionCursor,
    },
    /// Asks the replica for a snapshot of its telemetry registry (metrics
    /// plus the command-lifecycle span ring). The replica answers the
    /// requesting connection with one [`Event::StatsReply`] frame. Carries
    /// no fields, so any client — including one that does not know the
    /// protocol message type — can scrape any replica.
    StatsRequest,
    /// Orderly shutdown request.
    Shutdown,
}

/// Envelope for frames a replica publishes to client connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Commands executed at `from` since the last event, in execution order.
    Decisions {
        /// The publishing replica.
        from: NodeId,
        /// The executed commands, oldest first.
        batch: Vec<Decision>,
    },
    /// Answer to a [`WireMessage::ClientRequest`]: the command executed at
    /// the replica the client submitted it to.
    ClientReply {
        /// The replying replica.
        from: NodeId,
        /// The command this reply answers.
        command: CommandId,
        /// The key-value store result at the replying replica: the value
        /// read by a `Get`, the previous value overwritten by a `Put`.
        output: Option<u64>,
        /// The decision record (path, timestamps, latency breakdown).
        decision: Decision,
    },
    /// A [`WireMessage::ClientRequest`] will never be answered (the replica
    /// is shutting down); the client should fail the pending ticket.
    ClientAbort {
        /// The aborting replica.
        from: NodeId,
        /// The command whose reply will never come.
        command: CommandId,
        /// Why the reply will never come.
        reason: String,
    },
    /// Answer to a [`WireMessage::StatsRequest`]: the replica's telemetry
    /// registry at the moment the request was processed.
    StatsReply {
        /// The replying replica.
        from: NodeId,
        /// Counters, gauges and histograms by name.
        snapshot: RegistrySnapshot,
        /// The command-lifecycle span ring (timestamps are wall-clock
        /// microseconds since the UNIX epoch, comparable across replicas).
        spans: SpanRingSnapshot,
    },
}

impl<M: serde::Serialize> serde::Serialize for WireMessage<M> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Hello { from } => {
                serde::write_variant_tag(out, 0);
                from.serialize(out);
            }
            WireMessage::Peer { from, msg } => {
                serde::write_variant_tag(out, 1);
                from.serialize(out);
                msg.serialize(out);
            }
            WireMessage::Client { cmd } => {
                serde::write_variant_tag(out, 2);
                cmd.serialize(out);
            }
            WireMessage::Subscribe => serde::write_variant_tag(out, 3),
            WireMessage::Timer { msg } => {
                serde::write_variant_tag(out, 4);
                msg.serialize(out);
            }
            WireMessage::Shutdown => serde::write_variant_tag(out, 5),
            WireMessage::ClientRequest { cmd } => {
                serde::write_variant_tag(out, 6);
                cmd.serialize(out);
            }
            WireMessage::SnapshotRequest { from } => {
                serde::write_variant_tag(out, 7);
                from.serialize(out);
            }
            WireMessage::SnapshotChunk {
                from,
                applied_through,
                seq,
                total,
                bytes,
                suffix,
                cursor,
            } => {
                serde::write_variant_tag(out, 8);
                from.serialize(out);
                applied_through.serialize(out);
                seq.serialize(out);
                total.serialize(out);
                bytes.serialize(out);
                suffix.serialize(out);
                cursor.serialize(out);
            }
            WireMessage::StatsRequest => serde::write_variant_tag(out, 9),
        }
    }
}

impl<M: serde::Deserialize> serde::Deserialize for WireMessage<M> {
    fn deserialize(input: &mut &[u8]) -> serde::Result<Self> {
        match serde::read_variant_tag(input)? {
            0 => Ok(WireMessage::Hello { from: NodeId::deserialize(input)? }),
            1 => Ok(WireMessage::Peer {
                from: NodeId::deserialize(input)?,
                msg: M::deserialize(input)?,
            }),
            2 => Ok(WireMessage::Client { cmd: Command::deserialize(input)? }),
            3 => Ok(WireMessage::Subscribe),
            4 => Ok(WireMessage::Timer { msg: M::deserialize(input)? }),
            5 => Ok(WireMessage::Shutdown),
            6 => Ok(WireMessage::ClientRequest { cmd: Command::deserialize(input)? }),
            7 => Ok(WireMessage::SnapshotRequest { from: NodeId::deserialize(input)? }),
            8 => Ok(WireMessage::SnapshotChunk {
                from: NodeId::deserialize(input)?,
                applied_through: u64::deserialize(input)?,
                seq: u32::deserialize(input)?,
                total: u32::deserialize(input)?,
                bytes: Vec::deserialize(input)?,
                suffix: Vec::deserialize(input)?,
                cursor: ExecutionCursor::deserialize(input)?,
            }),
            9 => Ok(WireMessage::StatsRequest),
            other => Err(serde::Error::unknown_variant("WireMessage", other)),
        }
    }
}

impl serde::Serialize for Event {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            Event::Decisions { from, batch } => {
                serde::write_variant_tag(out, 0);
                from.serialize(out);
                batch.serialize(out);
            }
            Event::ClientReply { from, command, output, decision } => {
                serde::write_variant_tag(out, 1);
                from.serialize(out);
                command.serialize(out);
                output.serialize(out);
                decision.serialize(out);
            }
            Event::ClientAbort { from, command, reason } => {
                serde::write_variant_tag(out, 2);
                from.serialize(out);
                command.serialize(out);
                reason.serialize(out);
            }
            Event::StatsReply { from, snapshot, spans } => {
                serde::write_variant_tag(out, 3);
                from.serialize(out);
                snapshot.serialize(out);
                spans.serialize(out);
            }
        }
    }
}

impl serde::Deserialize for Event {
    fn deserialize(input: &mut &[u8]) -> serde::Result<Self> {
        match serde::read_variant_tag(input)? {
            0 => Ok(Event::Decisions {
                from: NodeId::deserialize(input)?,
                batch: Vec::deserialize(input)?,
            }),
            1 => Ok(Event::ClientReply {
                from: NodeId::deserialize(input)?,
                command: CommandId::deserialize(input)?,
                output: Option::deserialize(input)?,
                decision: Decision::deserialize(input)?,
            }),
            2 => Ok(Event::ClientAbort {
                from: NodeId::deserialize(input)?,
                command: CommandId::deserialize(input)?,
                reason: String::deserialize(input)?,
            }),
            3 => Ok(Event::StatsReply {
                from: NodeId::deserialize(input)?,
                snapshot: RegistrySnapshot::deserialize(input)?,
                spans: SpanRingSnapshot::deserialize(input)?,
            }),
            other => Err(serde::Error::unknown_variant("Event", other)),
        }
    }
}

/// Writes one checksummed, length-prefixed frame.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&crc32(payload).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame, validating the length against [`MAX_FRAME_LEN`] and the
/// payload against the header checksum.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 header bytes"));
    let expected_crc = u32::from_le_bytes(header[4..].try_into().expect("4 header bytes"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    if crc32(&payload) != expected_crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CHECKSUM_MISMATCH));
    }
    Ok(payload)
}

/// Incremental, push-based frame decoder: feed it whatever bytes a
/// nonblocking read produced ([`FrameBuffer::extend`]) and pop complete,
/// checksum-verified frames ([`FrameBuffer::next_frame`]) as they form.
///
/// This is the event loop's decode path: a reactor never blocks in
/// `read_exact`, so partial frames simply stay buffered until the socket's
/// next readability. Consumed bytes are reclaimed lazily to keep the buffer
/// from re-copying its tail on every frame.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    pos: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed space once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". `Err` means the stream is
    /// poisoned (oversized length or checksum mismatch) and the connection
    /// must be dropped — after a framing error the byte boundary is gone.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let pending = &self.buf[self.pos..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 buffered bytes"));
        let expected_crc = u32::from_le_bytes(pending[4..8].try_into().expect("4 buffered bytes"));
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
            ));
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[FRAME_HEADER_LEN..total].to_vec();
        if crc32(&payload) != expected_crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, CHECKSUM_MISMATCH));
        }
        self.pos += total;
        Ok(Some(payload))
    }

    /// Like [`FrameBuffer::next_frame`], but deserializes the payload.
    pub fn next_msg<T: serde::Deserialize>(&mut self) -> io::Result<Option<T>> {
        match self.next_frame()? {
            None => Ok(None),
            Some(payload) => bincode::deserialize(&payload)
                .map(Some)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string())),
        }
    }
}

/// Incremental frame decoder over a blocking [`Read`] that tolerates read
/// timeouts.
///
/// [`read_frame`] uses `read_exact` and therefore **loses bytes** if a read
/// timeout fires mid-frame — fine for in-memory buffers and tests, wrong for
/// sockets polled with a timeout. `FrameReader` instead accumulates whatever
/// bytes arrive in a [`FrameBuffer`] and only yields a frame once it is
/// complete, so a `WouldBlock`/`TimedOut` between (or inside) frames never
/// desynchronizes the stream. Client-side readers use this; the replica's
/// event loop drives the underlying [`FrameBuffer`] directly.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: FrameBuffer,
}

impl FrameReader {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pulls bytes from `reader` until one full frame is buffered.
    ///
    /// Returns `Ok(Some(payload))` for a complete frame, `Ok(None)` if the
    /// read timed out with the partial state preserved (call again later),
    /// and `Err` on EOF, I/O error, checksum mismatch, or an oversized
    /// length prefix.
    pub fn read_frame<R: Read>(&mut self, reader: &mut R) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(payload) = self.buf.next_frame()? {
                return Ok(Some(payload));
            }
            let mut chunk = [0u8; 16 * 1024];
            match reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
                }
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Like [`FrameReader::read_frame`], but deserializes the payload.
    pub fn read_msg<R: Read, T: serde::Deserialize>(
        &mut self,
        reader: &mut R,
    ) -> io::Result<Option<T>> {
        match self.read_frame(reader)? {
            None => Ok(None),
            Some(payload) => bincode::deserialize(&payload)
                .map(Some)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string())),
        }
    }
}

/// Serializes `value` and writes it as one frame.
pub fn send_msg<W: Write, T: serde::Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    let payload = bincode::serialize(value)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    write_frame(writer, &payload)
}

/// Serializes `value` into one complete frame (header + payload) as an owned
/// byte vector — the unit the event loop's write buffers deal in.
pub fn frame_bytes<T: serde::Serialize>(value: &T) -> io::Result<Vec<u8>> {
    let payload = bincode::serialize(value)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    let mut framed = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    write_frame(&mut framed, &payload)?;
    Ok(framed)
}

/// Reads one frame and deserializes a `T` from it.
pub fn recv_msg<R: Read, T: serde::Deserialize>(reader: &mut R) -> io::Result<T> {
    let payload = read_frame(reader)?;
    bincode::deserialize(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar::CaesarMessage;
    use consensus_types::{Ballot, CommandId, Timestamp};
    use std::collections::BTreeSet;

    fn round_trip<T>(value: &T) -> T
    where
        T: serde::Serialize + serde::Deserialize,
    {
        let mut framed = Vec::new();
        send_msg(&mut framed, value).expect("frame writes");
        recv_msg(&mut framed.as_slice()).expect("frame reads")
    }

    #[test]
    fn wire_message_round_trips_over_frames() {
        let cmd = Command::put(CommandId::new(NodeId(1), 7), 3, 9);
        let messages: Vec<WireMessage<u64>> = vec![
            WireMessage::Hello { from: NodeId(4) },
            WireMessage::Peer { from: NodeId(2), msg: 99 },
            WireMessage::Client { cmd: cmd.clone() },
            WireMessage::Subscribe,
            WireMessage::Timer { msg: 5 },
            WireMessage::Shutdown,
            WireMessage::ClientRequest { cmd: cmd.clone() },
            WireMessage::SnapshotRequest { from: NodeId(2) },
            WireMessage::StatsRequest,
            WireMessage::SnapshotChunk {
                from: NodeId(1),
                applied_through: 640,
                seq: 2,
                total: 3,
                bytes: vec![1, 2, 3, 250, 0],
                suffix: vec![cmd],
                cursor: ExecutionCursor::Log {
                    next_execute: 640,
                    next_free: 650,
                    backlog: Vec::new(),
                },
            },
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn client_request_frames_are_protocol_agnostic() {
        // A client that does not know the protocol message type serializes a
        // `WireMessage::<()>::ClientRequest`; the replica decodes it with its
        // real message type. The bytes must be identical.
        let cmd = Command::put(CommandId::new(NodeId(0), 3), 7, 11);
        let mut client_bytes = Vec::new();
        send_msg(&mut client_bytes, &WireMessage::<()>::ClientRequest { cmd: cmd.clone() })
            .expect("frame writes");
        let decoded: WireMessage<CaesarMessage> =
            recv_msg(&mut client_bytes.as_slice()).expect("frame reads");
        match decoded {
            WireMessage::ClientRequest { cmd: got } => assert_eq!(got, cmd),
            other => panic!("variant changed in flight: {other:?}"),
        }
    }

    #[test]
    fn client_reply_and_abort_events_round_trip() {
        let decision = Decision {
            command: CommandId::new(NodeId(1), 5),
            timestamp: Timestamp::new(9, NodeId(1)),
            path: consensus_types::DecisionPath::Fast,
            proposed_at: 3,
            executed_at: 40,
            breakdown: Default::default(),
        };
        let reply = Event::ClientReply {
            from: NodeId(1),
            command: CommandId::new(NodeId(1), 5),
            output: Some(17),
            decision,
        };
        assert_eq!(round_trip(&reply), reply);
        let abort = Event::ClientAbort {
            from: NodeId(2),
            command: CommandId::new(NodeId(2), 9),
            reason: "replica shut down".to_string(),
        };
        assert_eq!(round_trip(&abort), abort);
    }

    #[test]
    fn stats_reply_events_round_trip() {
        let registry = telemetry::Registry::new();
        registry.counter("decisions.fast").add(41);
        registry.histogram("latency_us").record(250);
        registry.record_span(telemetry::SpanEvent {
            command: CommandId::new(NodeId(1), 9),
            phase: telemetry::TracePhase::Commit,
            at: 1_234,
            node: NodeId(1),
        });
        let reply = Event::StatsReply {
            from: NodeId(1),
            snapshot: registry.snapshot(),
            spans: registry.spans(),
        };
        let back = round_trip(&reply);
        let Event::StatsReply { from, snapshot, spans } = back else {
            panic!("variant changed in flight");
        };
        assert_eq!(from, NodeId(1));
        assert_eq!(snapshot.counter("decisions.fast"), 41);
        assert_eq!(snapshot.histograms["latency_us"].count(), 1);
        assert_eq!(spans.events.len(), 1);
        assert_eq!(spans.events[0].phase, telemetry::TracePhase::Commit);
    }

    #[test]
    fn caesar_messages_survive_the_wire() {
        let cmd = Command::put(CommandId::new(NodeId(0), 1), 7, 1);
        let pred: BTreeSet<CommandId> =
            [CommandId::new(NodeId(1), 4), CommandId::new(NodeId(2), 9)].into();
        let original = WireMessage::Peer {
            from: NodeId(3),
            msg: CaesarMessage::FastPropose {
                ballot: Ballot::initial(NodeId(0)),
                cmd,
                time: Timestamp::new(12, NodeId(0)),
                whitelist: Some(pred),
            },
        };
        let back: WireMessage<CaesarMessage> = round_trip(&original);
        match (original, back) {
            (WireMessage::Peer { from: f1, msg: m1 }, WireMessage::Peer { from: f2, msg: m2 }) => {
                assert_eq!(f1, f2);
                assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
            }
            other => panic!("variant changed in flight: {other:?}"),
        }
    }

    #[test]
    fn decision_events_round_trip() {
        let decision = Decision {
            command: CommandId::new(NodeId(0), 1),
            timestamp: Timestamp::new(3, NodeId(0)),
            path: consensus_types::DecisionPath::Fast,
            proposed_at: 10,
            executed_at: 90,
            breakdown: Default::default(),
        };
        let event = Event::Decisions { from: NodeId(2), batch: vec![decision] };
        assert_eq!(round_trip(&event), event);
    }

    /// A reader that yields its data in fixed-size slivers with a
    /// `WouldBlock` timeout between every read, mimicking a socket whose
    /// read timeout keeps firing mid-frame.
    struct TricklingReader {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl std::io::Read for TricklingReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "not yet"));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0); // EOF
            }
            let n = out.len().min(3).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut data = Vec::new();
        let first = WireMessage::Peer { from: NodeId(1), msg: 7u64 };
        let second = WireMessage::Client { cmd: Command::put(CommandId::new(NodeId(0), 1), 3, 9) };
        send_msg(&mut data, &first).unwrap();
        send_msg(&mut data, &second).unwrap();

        let mut reader = TricklingReader { data, pos: 0, ready: false };
        let mut decoder = FrameReader::new();
        let mut messages: Vec<WireMessage<u64>> = Vec::new();
        let mut timeouts = 0;
        loop {
            match decoder.read_msg(&mut reader) {
                Ok(Some(msg)) => messages.push(msg),
                Ok(None) => timeouts += 1, // timeout fired; state must survive
                Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(err) => panic!("decoder lost sync: {err}"),
            }
            assert!(timeouts < 10_000, "decoder never completed");
        }
        assert_eq!(messages, vec![first, second]);
        assert!(timeouts > 0, "the trickling reader should have timed out");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum() {
        let mut framed = Vec::new();
        send_msg(&mut framed, &WireMessage::<u64>::Peer { from: NodeId(1), msg: 7 }).unwrap();
        // Flip one payload bit; the length prefix still matches, so only the
        // checksum can catch it.
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        let err = read_frame(&mut framed.as_slice()).expect_err("corruption must be detected");
        assert!(is_checksum_error(&err), "unexpected error class: {err}");

        // The incremental decoder reports the same poisoned-stream error.
        let mut buffer = FrameBuffer::new();
        buffer.extend(&framed);
        let err = buffer.next_frame().expect_err("corruption must be detected");
        assert!(is_checksum_error(&err), "unexpected error class: {err}");
    }

    #[test]
    fn frame_buffer_decodes_across_arbitrary_chunk_boundaries() {
        let mut data = Vec::new();
        let messages: Vec<WireMessage<u64>> = vec![
            WireMessage::Hello { from: NodeId(3) },
            WireMessage::Peer { from: NodeId(1), msg: 42 },
            WireMessage::Subscribe,
        ];
        for msg in &messages {
            send_msg(&mut data, msg).unwrap();
        }
        // Feed the stream one byte at a time; every complete frame must pop
        // exactly once, in order.
        let mut buffer = FrameBuffer::new();
        let mut decoded: Vec<WireMessage<u64>> = Vec::new();
        for byte in &data {
            buffer.extend(std::slice::from_ref(byte));
            while let Some(msg) = buffer.next_msg().expect("stream stays in sync") {
                decoded.push(msg);
            }
        }
        assert_eq!(decoded, messages);
        assert_eq!(buffer.pending(), 0);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut framed = Vec::new();
        send_msg(&mut framed, &WireMessage::<u64>::Subscribe).unwrap();
        framed.truncate(framed.len().saturating_sub(1));
        // Either the length prefix or the payload is short — both are errors.
        assert!(recv_msg::<_, WireMessage<u64>>(&mut framed.as_slice()).is_err());
    }
}
