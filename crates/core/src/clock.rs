//! The per-node logical clock `TS_i`.

use consensus_types::{NodeId, Timestamp};

/// The logical clock `TS_i` described in Section V-A of the paper.
///
/// Its value is always greater than the timestamp of any command handled by
/// the node so far, and every value it hands out is unique across the cluster
/// because the node id is part of the timestamp.
///
/// # Example
///
/// ```
/// use caesar::LogicalClock;
/// use consensus_types::{NodeId, Timestamp};
///
/// let mut clock = LogicalClock::new(NodeId(2));
/// let t1 = clock.next();
/// let t2 = clock.next();
/// assert!(t2 > t1);
///
/// // Observing a foreign timestamp pushes the clock past it.
/// clock.observe(Timestamp::new(100, NodeId(4)));
/// assert!(clock.next() > Timestamp::new(100, NodeId(4)));
/// ```
#[derive(Debug, Clone)]
pub struct LogicalClock {
    node: NodeId,
    counter: u64,
}

impl LogicalClock {
    /// Creates a clock for `node`, starting at `⟨0, node⟩`.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        Self { node, counter: 0 }
    }

    /// The node that owns this clock.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current value without advancing (the last value handed out).
    #[must_use]
    pub fn current(&self) -> Timestamp {
        Timestamp::new(self.counter, self.node)
    }

    /// Advances the clock and returns a fresh timestamp strictly greater than
    /// every timestamp previously returned or observed.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infallible and never ends
    pub fn next(&mut self) -> Timestamp {
        self.counter += 1;
        Timestamp::new(self.counter, self.node)
    }

    /// Records that a timestamp was seen, so subsequently generated values are
    /// strictly greater than it.
    pub fn observe(&mut self, ts: Timestamp) {
        let next_value = Timestamp::new(self.counter + 1, self.node);
        if next_value <= ts {
            self.counter = ts.counter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_is_strictly_increasing() {
        let mut c = LogicalClock::new(NodeId(1));
        let mut prev = c.current();
        for _ in 0..100 {
            let t = c.next();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn observe_pushes_clock_past_foreign_timestamps() {
        let mut c = LogicalClock::new(NodeId(0));
        c.observe(Timestamp::new(10, NodeId(4)));
        assert!(c.next() > Timestamp::new(10, NodeId(4)));

        let mut c = LogicalClock::new(NodeId(4));
        c.observe(Timestamp::new(10, NodeId(0)));
        assert!(c.next() > Timestamp::new(10, NodeId(0)));
    }

    #[test]
    fn observe_is_monotone() {
        let mut c = LogicalClock::new(NodeId(2));
        let t = c.next();
        c.observe(Timestamp::new(0, NodeId(0)));
        assert!(c.next() > t, "observing an old timestamp never rewinds the clock");
    }

    #[test]
    fn clocks_of_different_nodes_never_collide() {
        let mut a = LogicalClock::new(NodeId(0));
        let mut b = LogicalClock::new(NodeId(1));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            assert!(seen.insert(a.next()));
            assert!(seen.insert(b.next()));
        }
    }
}
