//! Per-replica protocol counters used by the evaluation harness.

use consensus_types::SimTime;

/// Counters a [`CaesarReplica`](crate::CaesarReplica) maintains while running.
///
/// The harness aggregates these across replicas to regenerate Figure 10
/// (slow-path percentage), Figure 11a (phase breakdown) and Figure 11b
/// (wait-condition time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaesarMetrics {
    /// Commands this replica led that were decided on the fast path.
    pub fast_decisions: u64,
    /// Commands this replica led that needed a retry after a rejection.
    pub slow_decisions_retry: u64,
    /// Commands this replica led that went through the slow proposal phase
    /// because only a classic quorum answered in time.
    pub slow_decisions_proposal: u64,
    /// Commands decided by this replica acting as a recovery leader.
    pub recovered_decisions: u64,
    /// Recovery attempts started by this replica.
    pub recoveries_started: u64,
    /// NACK replies sent by this replica acting as an acceptor.
    pub nacks_sent: u64,
    /// Number of proposals that were parked by the wait condition here.
    pub wait_events: u64,
    /// Total simulated time proposals spent parked by the wait condition.
    pub wait_time_total: SimTime,
    /// Commands executed (applied to the state machine) at this replica.
    pub commands_executed: u64,
    /// Total time commands this replica led spent in proposal phases.
    pub propose_time_total: SimTime,
    /// Total time commands this replica led spent in the retry phase.
    pub retry_time_total: SimTime,
    /// Total time between local stability and local execution for commands
    /// this replica led.
    pub deliver_time_total: SimTime,
}

impl CaesarMetrics {
    /// Commands this replica led that reached a decision (any path).
    #[must_use]
    pub fn led_decisions(&self) -> u64 {
        self.fast_decisions
            + self.slow_decisions_retry
            + self.slow_decisions_proposal
            + self.recovered_decisions
    }

    /// Fraction of led commands decided on a slow path, in `[0, 1]`.
    /// Returns 0 when no command has been decided yet.
    #[must_use]
    pub fn slow_path_ratio(&self) -> f64 {
        let total = self.led_decisions();
        if total == 0 {
            return 0.0;
        }
        let slow = total - self.fast_decisions;
        slow as f64 / total as f64
    }

    /// Average time (microseconds) spent parked on the wait condition, per
    /// parked proposal.
    #[must_use]
    pub fn avg_wait_time(&self) -> f64 {
        if self.wait_events == 0 {
            0.0
        } else {
            self.wait_time_total as f64 / self.wait_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_path_ratio_counts_all_non_fast_paths() {
        let m = CaesarMetrics {
            fast_decisions: 70,
            slow_decisions_retry: 20,
            slow_decisions_proposal: 5,
            recovered_decisions: 5,
            ..Default::default()
        };
        assert_eq!(m.led_decisions(), 100);
        assert!((m.slow_path_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_without_decisions() {
        let m = CaesarMetrics::default();
        assert_eq!(m.slow_path_ratio(), 0.0);
        assert_eq!(m.avg_wait_time(), 0.0);
    }

    #[test]
    fn avg_wait_divides_total_by_events() {
        let m = CaesarMetrics { wait_events: 4, wait_time_total: 2_000, ..Default::default() };
        assert!((m.avg_wait_time() - 500.0).abs() < 1e-12);
    }
}
