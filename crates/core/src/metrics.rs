//! Per-replica protocol counters used by the evaluation harness.
//!
//! The live values are [`telemetry::Counter`] handles registered in the
//! replica's [`telemetry::Registry`] (shared names `decisions.*`,
//! `commands.executed`, `recoveries.started`; CAESAR-specific ones under
//! `caesar.*`), so any scraper can read them by name;
//! [`CaesarMetrics`] is the plain snapshot
//! [`CaesarReplica::metrics`](crate::CaesarReplica::metrics) builds from
//! them.

use consensus_types::SimTime;
use telemetry::{Counter, Registry};

/// A point-in-time copy of the counters a
/// [`CaesarReplica`](crate::CaesarReplica) maintains while running.
///
/// The harness aggregates these across replicas to regenerate Figure 10
/// (slow-path percentage), Figure 11a (phase breakdown) and Figure 11b
/// (wait-condition time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaesarMetrics {
    /// Commands this replica led that were decided on the fast path.
    pub fast_decisions: u64,
    /// Commands this replica led that needed a retry after a rejection.
    pub slow_decisions_retry: u64,
    /// Commands this replica led that went through the slow proposal phase
    /// because only a classic quorum answered in time.
    pub slow_decisions_proposal: u64,
    /// Commands decided by this replica acting as a recovery leader.
    pub recovered_decisions: u64,
    /// Recovery attempts started by this replica.
    pub recoveries_started: u64,
    /// NACK replies sent by this replica acting as an acceptor.
    pub nacks_sent: u64,
    /// Number of proposals that were parked by the wait condition here.
    pub wait_events: u64,
    /// Total simulated time proposals spent parked by the wait condition.
    pub wait_time_total: SimTime,
    /// Commands executed (applied to the state machine) at this replica.
    pub commands_executed: u64,
    /// Total time commands this replica led spent in proposal phases.
    pub propose_time_total: SimTime,
    /// Total time commands this replica led spent in the retry phase.
    pub retry_time_total: SimTime,
    /// Total time between local stability and local execution for commands
    /// this replica led.
    pub deliver_time_total: SimTime,
}

impl CaesarMetrics {
    /// Commands this replica led that reached a decision (any path).
    #[must_use]
    pub fn led_decisions(&self) -> u64 {
        self.fast_decisions
            + self.slow_decisions_retry
            + self.slow_decisions_proposal
            + self.recovered_decisions
    }

    /// Fraction of led commands decided on a slow path, in `[0, 1]`.
    /// Returns 0 when no command has been decided yet.
    #[must_use]
    pub fn slow_path_ratio(&self) -> f64 {
        let total = self.led_decisions();
        if total == 0 {
            return 0.0;
        }
        let slow = total - self.fast_decisions;
        slow as f64 / total as f64
    }

    /// Average time (microseconds) spent parked on the wait condition, per
    /// parked proposal.
    #[must_use]
    pub fn avg_wait_time(&self) -> f64 {
        if self.wait_events == 0 {
            0.0
        } else {
            self.wait_time_total as f64 / self.wait_events as f64
        }
    }
}

/// The registry handles behind [`CaesarMetrics`].
#[derive(Debug)]
pub(crate) struct CaesarCounters {
    /// `decisions.fast` — led commands decided on the fast path.
    pub fast_decisions: Counter,
    /// `decisions.slow` — led commands decided on any slow path (retry,
    /// slow proposal, or recovery); kept alongside the split counters so
    /// generic scrapers can read fast/slow without protocol knowledge.
    pub slow_decisions: Counter,
    /// `caesar.decisions.slow_retry`.
    pub slow_decisions_retry: Counter,
    /// `caesar.decisions.slow_proposal`.
    pub slow_decisions_proposal: Counter,
    /// `caesar.decisions.recovered`.
    pub recovered_decisions: Counter,
    /// `recoveries.started`.
    pub recoveries_started: Counter,
    /// `caesar.nacks_sent`.
    pub nacks_sent: Counter,
    /// `caesar.wait_events`.
    pub wait_events: Counter,
    /// `caesar.wait_time_us`.
    pub wait_time_total: Counter,
    /// `commands.executed`.
    pub commands_executed: Counter,
    /// `caesar.propose_time_us`.
    pub propose_time_total: Counter,
    /// `caesar.retry_time_us`.
    pub retry_time_total: Counter,
    /// `caesar.deliver_time_us`.
    pub deliver_time_total: Counter,
}

impl CaesarCounters {
    pub(crate) fn register(registry: &Registry) -> Self {
        Self {
            fast_decisions: registry.counter("decisions.fast"),
            slow_decisions: registry.counter("decisions.slow"),
            slow_decisions_retry: registry.counter("caesar.decisions.slow_retry"),
            slow_decisions_proposal: registry.counter("caesar.decisions.slow_proposal"),
            recovered_decisions: registry.counter("caesar.decisions.recovered"),
            recoveries_started: registry.counter("recoveries.started"),
            nacks_sent: registry.counter("caesar.nacks_sent"),
            wait_events: registry.counter("caesar.wait_events"),
            wait_time_total: registry.counter("caesar.wait_time_us"),
            commands_executed: registry.counter("commands.executed"),
            propose_time_total: registry.counter("caesar.propose_time_us"),
            retry_time_total: registry.counter("caesar.retry_time_us"),
            deliver_time_total: registry.counter("caesar.deliver_time_us"),
        }
    }

    pub(crate) fn snapshot(&self) -> CaesarMetrics {
        CaesarMetrics {
            fast_decisions: self.fast_decisions.get(),
            slow_decisions_retry: self.slow_decisions_retry.get(),
            slow_decisions_proposal: self.slow_decisions_proposal.get(),
            recovered_decisions: self.recovered_decisions.get(),
            recoveries_started: self.recoveries_started.get(),
            nacks_sent: self.nacks_sent.get(),
            wait_events: self.wait_events.get(),
            wait_time_total: self.wait_time_total.get(),
            commands_executed: self.commands_executed.get(),
            propose_time_total: self.propose_time_total.get(),
            retry_time_total: self.retry_time_total.get(),
            deliver_time_total: self.deliver_time_total.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_counters_snapshot_into_metrics() {
        let registry = Registry::new();
        let counters = CaesarCounters::register(&registry);
        counters.fast_decisions.add(3);
        counters.slow_decisions.inc();
        counters.slow_decisions_retry.inc();
        counters.wait_events.add(2);
        counters.wait_time_total.add(1_000);
        let m = counters.snapshot();
        assert_eq!(m.fast_decisions, 3);
        assert_eq!(m.slow_decisions_retry, 1);
        assert_eq!(m.led_decisions(), 4);
        assert!((m.avg_wait_time() - 500.0).abs() < 1e-12);
        // The same values are visible under their registry names.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("decisions.fast"), 3);
        assert_eq!(snap.counter("decisions.slow"), 1);
        assert_eq!(snap.counter("caesar.wait_time_us"), 1_000);
    }

    #[test]
    fn slow_path_ratio_counts_all_non_fast_paths() {
        let m = CaesarMetrics {
            fast_decisions: 70,
            slow_decisions_retry: 20,
            slow_decisions_proposal: 5,
            recovered_decisions: 5,
            ..Default::default()
        };
        assert_eq!(m.led_decisions(), 100);
        assert!((m.slow_path_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_without_decisions() {
        let m = CaesarMetrics::default();
        assert_eq!(m.slow_path_ratio(), 0.0);
        assert_eq!(m.avg_wait_time(), 0.0);
    }

    #[test]
    fn avg_wait_divides_total_by_events() {
        let m = CaesarMetrics { wait_events: 4, wait_time_total: 2_000, ..Default::default() };
        assert!((m.avg_wait_time() - 500.0).abs() < 1e-12);
    }
}
