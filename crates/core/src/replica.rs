//! The CAESAR replica: command leader, acceptor and recovery logic.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use consensus_types::{
    Ballot, Command, CommandId, Decision, DecisionPath, LatencyBreakdown, NodeId, SimTime,
    StateTransfer, Timestamp,
};
use simnet::{Context, Process};
use telemetry::{Registry, TracePhase};

use crate::clock::LogicalClock;
use crate::config::CaesarConfig;
use crate::delivery::DeliveryEngine;
use crate::history::{CmdStatus, History};
use crate::messages::{CaesarMessage, ProposalKind, RecoveryInfo};
use crate::metrics::{CaesarCounters, CaesarMetrics};

type Pred = BTreeSet<CommandId>;

/// Phases of the command-leader state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    FastProposal,
    SlowProposal,
    Retry,
    Done,
}

/// State a replica keeps for every command it is currently leading.
#[derive(Debug)]
struct LeaderState {
    cmd: Command,
    ballot: Ballot,
    time: Timestamp,
    phase: LeaderPhase,
    /// One reply per acceptor for the current phase: (timestamp, pred, ok).
    replies: HashMap<NodeId, (Timestamp, Pred, bool)>,
    /// Predecessors accumulated across phases.
    pred: Pred,
    proposed_at: SimTime,
    phase_started_at: SimTime,
    propose_time: SimTime,
    retry_time: SimTime,
    timeout_fired: bool,
    from_recovery: bool,
}

/// Bookkeeping about commands this replica led, used to fill [`Decision`]s.
#[derive(Debug, Clone)]
struct LedRecord {
    proposed_at: SimTime,
    path: DecisionPath,
    propose_time: SimTime,
    retry_time: SimTime,
}

/// A proposal reply held back by the wait condition.
#[derive(Debug)]
struct ParkedProposal {
    cmd: Command,
    ballot: Ballot,
    time: Timestamp,
    kind: ProposalKind,
    leader: NodeId,
    whitelist: Option<Pred>,
    leader_pred: Pred,
    parked_at: SimTime,
}

/// In-flight recovery this replica is coordinating for a command.
#[derive(Debug)]
struct RecoveryState {
    ballot: Ballot,
    replies: HashMap<NodeId, Option<RecoveryInfo>>,
}

/// A CAESAR replica. Implements [`simnet::Process`]; one instance per node.
///
/// See the crate-level documentation for an end-to-end example.
pub struct CaesarReplica {
    id: NodeId,
    config: CaesarConfig,
    clock: LogicalClock,
    history: History,
    delivery: DeliveryEngine,
    leading: HashMap<CommandId, LeaderState>,
    led: HashMap<CommandId, LedRecord>,
    parked: HashMap<CommandId, ParkedProposal>,
    parked_by_blocker: HashMap<CommandId, HashSet<CommandId>>,
    ballots: HashMap<CommandId, Ballot>,
    recovery_timer_set: HashSet<CommandId>,
    recovery_attempts: HashMap<CommandId, u32>,
    recovering: HashMap<CommandId, RecoveryState>,
    stable_seen_at: HashMap<CommandId, SimTime>,
    registry: Arc<Registry>,
    metrics: CaesarCounters,
}

impl std::fmt::Debug for CaesarReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaesarReplica")
            .field("id", &self.id)
            .field("history_len", &self.history.len())
            .field("leading", &self.leading.len())
            .field("parked", &self.parked.len())
            .field("executed", &self.delivery.executed_count())
            .finish()
    }
}

impl CaesarReplica {
    /// Creates a replica with the given node id and configuration.
    #[must_use]
    pub fn new(id: NodeId, config: CaesarConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = CaesarCounters::register(&registry);
        Self {
            id,
            clock: LogicalClock::new(id),
            history: History::new(config.executed_retention_per_key),
            delivery: DeliveryEngine::new(),
            leading: HashMap::new(),
            led: HashMap::new(),
            parked: HashMap::new(),
            parked_by_blocker: HashMap::new(),
            ballots: HashMap::new(),
            recovery_timer_set: HashSet::new(),
            recovery_attempts: HashMap::new(),
            recovering: HashMap::new(),
            stable_seen_at: HashMap::new(),
            registry,
            metrics,
            config,
        }
    }

    /// This replica's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A snapshot of the protocol counters collected so far. The live
    /// values are registry metrics, reachable by name through
    /// [`Process::telemetry`].
    #[must_use]
    pub fn metrics(&self) -> CaesarMetrics {
        self.metrics.snapshot()
    }

    /// The replica's history `H_i` (for tests and debugging).
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Number of commands executed locally.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.delivery.executed_count()
    }

    /// Number of proposals currently parked by the wait condition.
    #[must_use]
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    // ------------------------------------------------------------------
    // Ballot bookkeeping
    // ------------------------------------------------------------------

    fn current_ballot(&self, cmd_id: CommandId) -> Ballot {
        self.ballots.get(&cmd_id).copied().unwrap_or_else(|| Ballot::initial(cmd_id.origin()))
    }

    /// Acceptor-side ballot gate: accept messages carrying a ballot at least
    /// as recent as the one promised, and remember the ballot.
    fn admit_ballot(&mut self, cmd_id: CommandId, ballot: Ballot) -> bool {
        let current = self.ballots.get(&cmd_id).copied();
        match current {
            Some(b) if ballot < b => false,
            _ => {
                self.ballots.insert(cmd_id, ballot);
                true
            }
        }
    }

    fn is_stable_locally(&self, cmd_id: CommandId) -> bool {
        self.history.get(cmd_id).is_some_and(|info| info.status == CmdStatus::Stable)
    }

    fn maybe_schedule_recovery_timer(
        &mut self,
        cmd_id: CommandId,
        leader: NodeId,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let Some(timeout) = self.config.recovery_timeout else { return };
        if leader == self.id || self.recovery_timer_set.contains(&cmd_id) {
            return;
        }
        self.recovery_timer_set.insert(cmd_id);
        // Stagger takeovers by node id so that replicas do not duel.
        let stagger = (self.id.index() as SimTime) * (timeout / 10).max(10_000);
        ctx.schedule_self(timeout + stagger, CaesarMessage::RecoveryTimeout { cmd_id });
    }

    // ------------------------------------------------------------------
    // Leader side
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn start_fast_proposal(
        &mut self,
        cmd: Command,
        ballot: Ballot,
        time: Timestamp,
        whitelist: Option<Pred>,
        from_recovery: bool,
        proposed_at: SimTime,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        self.ballots.insert(cmd_id, ballot);
        self.leading.insert(
            cmd_id,
            LeaderState {
                cmd: cmd.clone(),
                ballot,
                time,
                phase: LeaderPhase::FastProposal,
                replies: HashMap::new(),
                pred: Pred::new(),
                proposed_at,
                phase_started_at: ctx.now(),
                propose_time: 0,
                retry_time: 0,
                timeout_fired: false,
                from_recovery,
            },
        );
        ctx.trace(TracePhase::Propose, cmd_id);
        ctx.broadcast(CaesarMessage::FastPropose { ballot, cmd, time, whitelist });
        ctx.schedule_self(
            self.config.fast_quorum_timeout,
            CaesarMessage::FastQuorumTimeout { cmd_id, ballot },
        );
    }

    fn start_slow_proposal(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        state.phase = LeaderPhase::SlowProposal;
        state.replies.clear();
        // Slow proposals are counted at stability (decisions.slow).
        let msg = CaesarMessage::SlowPropose {
            ballot: state.ballot,
            cmd: state.cmd.clone(),
            time: state.time,
            pred: state.pred.clone(),
        };
        ctx.broadcast(msg);
    }

    fn start_retry(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let now = ctx.now();
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        state.propose_time += now.saturating_sub(state.phase_started_at);
        state.phase_started_at = now;
        state.phase = LeaderPhase::Retry;
        state.replies.clear();
        ctx.trace(TracePhase::Retry, cmd_id);
        self.clock.observe(state.time);
        let msg = CaesarMessage::Retry {
            ballot: state.ballot,
            cmd: state.cmd.clone(),
            time: state.time,
            pred: state.pred.clone(),
        };
        ctx.broadcast(msg);
    }

    fn finish_stable(
        &mut self,
        cmd_id: CommandId,
        path: DecisionPath,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let now = ctx.now();
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        ctx.trace(TracePhase::QuorumReached, cmd_id);
        match state.phase {
            LeaderPhase::Retry => state.retry_time += now.saturating_sub(state.phase_started_at),
            _ => state.propose_time += now.saturating_sub(state.phase_started_at),
        }
        state.phase = LeaderPhase::Done;
        let path = if state.from_recovery { DecisionPath::Recovery } else { path };
        match path {
            DecisionPath::Fast => self.metrics.fast_decisions.inc(),
            DecisionPath::SlowRetry => {
                self.metrics.slow_decisions.inc();
                self.metrics.slow_decisions_retry.inc();
            }
            DecisionPath::SlowProposal => {
                self.metrics.slow_decisions.inc();
                self.metrics.slow_decisions_proposal.inc();
            }
            DecisionPath::Recovery => {
                self.metrics.slow_decisions.inc();
                self.metrics.recovered_decisions.inc();
            }
            DecisionPath::Ordered => {}
        }
        self.metrics.propose_time_total.add(state.propose_time);
        self.metrics.retry_time_total.add(state.retry_time);
        self.led.insert(
            cmd_id,
            LedRecord {
                proposed_at: state.proposed_at,
                path,
                propose_time: state.propose_time,
                retry_time: state.retry_time,
            },
        );
        let msg = CaesarMessage::Stable {
            ballot: state.ballot,
            cmd: state.cmd.clone(),
            time: state.time,
            pred: state.pred.clone(),
        };
        ctx.broadcast(msg);
    }

    fn evaluate_fast_proposal(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let fast_quorum = self.config.quorums.fast();
        let classic_quorum = self.config.quorums.classic();
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        if state.phase != LeaderPhase::FastProposal {
            return;
        }
        let replies = state.replies.len();
        let any_nack = state.replies.values().any(|(_, _, ok)| !ok);

        let enough_fast = replies >= fast_quorum;
        let enough_classic_after_timeout = state.timeout_fired && replies >= classic_quorum;
        if !enough_fast && !enough_classic_after_timeout {
            return;
        }

        // Accumulate the maximum timestamp and the union of predecessor sets.
        let max_time =
            state.replies.values().map(|(t, _, _)| *t).max().unwrap_or(state.time).max(state.time);
        let union: Pred =
            state.replies.values().flat_map(|(_, pred, _)| pred.iter().copied()).collect();
        state.pred.extend(union);

        if enough_fast && !any_nack {
            self.finish_stable(cmd_id, DecisionPath::Fast, ctx);
        } else if any_nack {
            state.time = max_time;
            self.start_retry(cmd_id, ctx);
        } else {
            // Classic quorum, no rejection, fast quorum timed out.
            self.start_slow_proposal(cmd_id, ctx);
        }
    }

    fn evaluate_slow_proposal(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let classic_quorum = self.config.quorums.classic();
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        if state.phase != LeaderPhase::SlowProposal || state.replies.len() < classic_quorum {
            return;
        }
        let any_nack = state.replies.values().any(|(_, _, ok)| !ok);
        let max_time =
            state.replies.values().map(|(t, _, _)| *t).max().unwrap_or(state.time).max(state.time);
        let union: Pred =
            state.replies.values().flat_map(|(_, pred, _)| pred.iter().copied()).collect();
        state.pred.extend(union);
        if any_nack {
            state.time = max_time;
            self.start_retry(cmd_id, ctx);
        } else {
            self.finish_stable(cmd_id, DecisionPath::SlowProposal, ctx);
        }
    }

    fn evaluate_retry(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let classic_quorum = self.config.quorums.classic();
        let Some(state) = self.leading.get_mut(&cmd_id) else { return };
        if state.phase != LeaderPhase::Retry || state.replies.len() < classic_quorum {
            return;
        }
        let union: Pred =
            state.replies.values().flat_map(|(_, pred, _)| pred.iter().copied()).collect();
        state.pred.extend(union);
        self.finish_stable(cmd_id, DecisionPath::SlowRetry, ctx);
    }

    // ------------------------------------------------------------------
    // Acceptor side
    // ------------------------------------------------------------------

    fn on_fast_propose(
        &mut self,
        leader: NodeId,
        ballot: Ballot,
        cmd: Command,
        time: Timestamp,
        whitelist: Option<Pred>,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        if !self.admit_ballot(cmd_id, ballot) || self.is_stable_locally(cmd_id) {
            return;
        }
        self.clock.observe(time);
        let forced = whitelist.is_some();
        let pred = self.history.compute_predecessors(&cmd, time, whitelist.as_ref());
        self.history.update(&cmd, time, pred, CmdStatus::FastPending, ballot, forced);
        self.maybe_schedule_recovery_timer(cmd_id, leader, ctx);
        self.notify_history_change(cmd_id, ctx);

        let blockers = self.history.wait_blockers(&cmd, time);
        if self.config.wait_condition && !blockers.is_empty() {
            self.park(
                ParkedProposal {
                    cmd,
                    ballot,
                    time,
                    kind: ProposalKind::Fast,
                    leader,
                    whitelist,
                    leader_pred: Pred::new(),
                    parked_at: ctx.now(),
                },
                &blockers,
            );
            return;
        }
        let force_reject = !self.config.wait_condition && !blockers.is_empty();
        self.reply_to_proposal(
            cmd,
            ballot,
            time,
            ProposalKind::Fast,
            leader,
            whitelist,
            Pred::new(),
            force_reject,
            ctx,
        );
    }

    fn on_slow_propose(
        &mut self,
        leader: NodeId,
        ballot: Ballot,
        cmd: Command,
        time: Timestamp,
        leader_pred: Pred,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        if !self.admit_ballot(cmd_id, ballot) || self.is_stable_locally(cmd_id) {
            return;
        }
        self.clock.observe(time);
        self.history.update(&cmd, time, leader_pred.clone(), CmdStatus::SlowPending, ballot, false);
        self.maybe_schedule_recovery_timer(cmd_id, leader, ctx);
        self.notify_history_change(cmd_id, ctx);

        let blockers = self.history.wait_blockers(&cmd, time);
        if self.config.wait_condition && !blockers.is_empty() {
            self.park(
                ParkedProposal {
                    cmd,
                    ballot,
                    time,
                    kind: ProposalKind::Slow,
                    leader,
                    whitelist: None,
                    leader_pred,
                    parked_at: ctx.now(),
                },
                &blockers,
            );
            return;
        }
        let force_reject = !self.config.wait_condition && !blockers.is_empty();
        self.reply_to_proposal(
            cmd,
            ballot,
            time,
            ProposalKind::Slow,
            leader,
            None,
            leader_pred,
            force_reject,
            ctx,
        );
    }

    /// Sends the (possibly delayed) reply for a fast or slow proposal once the
    /// wait condition no longer holds the command back.
    #[allow(clippy::too_many_arguments)]
    fn reply_to_proposal(
        &mut self,
        cmd: Command,
        ballot: Ballot,
        time: Timestamp,
        kind: ProposalKind,
        leader: NodeId,
        whitelist: Option<Pred>,
        leader_pred: Pred,
        force_reject: bool,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        // The ballot may have moved on (e.g. a recovery started) while the
        // proposal was parked; in that case stay silent.
        if self.current_ballot(cmd_id) != ballot || self.is_stable_locally(cmd_id) {
            return;
        }
        let reject = force_reject || self.history.must_reject(&cmd, time);
        if reject {
            let new_time = self.clock.next();
            let new_pred = self.history.compute_predecessors(&cmd, new_time, whitelist.as_ref());
            self.history.update(
                &cmd,
                new_time,
                new_pred.clone(),
                CmdStatus::Rejected,
                ballot,
                whitelist.is_some(),
            );
            self.notify_history_change(cmd_id, ctx);
            self.metrics.nacks_sent.inc();
            let reply = match kind {
                ProposalKind::Fast => CaesarMessage::FastProposeReply {
                    ballot,
                    cmd_id,
                    time: new_time,
                    pred: new_pred,
                    ok: false,
                },
                ProposalKind::Slow => CaesarMessage::SlowProposeReply {
                    ballot,
                    cmd_id,
                    time: new_time,
                    pred: new_pred,
                    ok: false,
                },
            };
            ctx.send(leader, reply);
        } else {
            // Recompute predecessors after the wait so commands that became
            // known meanwhile are included (mirrors the TLA+ specification,
            // where the reply deps are computed when the action fires).
            let (pred, status) = match kind {
                ProposalKind::Fast => (
                    self.history.compute_predecessors(&cmd, time, whitelist.as_ref()),
                    CmdStatus::FastPending,
                ),
                ProposalKind::Slow => (leader_pred, CmdStatus::SlowPending),
            };
            self.history.update(&cmd, time, pred.clone(), status, ballot, whitelist.is_some());
            self.notify_history_change(cmd_id, ctx);
            let reply = match kind {
                ProposalKind::Fast => {
                    CaesarMessage::FastProposeReply { ballot, cmd_id, time, pred, ok: true }
                }
                ProposalKind::Slow => {
                    CaesarMessage::SlowProposeReply { ballot, cmd_id, time, pred, ok: true }
                }
            };
            ctx.send(leader, reply);
        }
    }

    fn on_retry(
        &mut self,
        leader: NodeId,
        ballot: Ballot,
        cmd: Command,
        time: Timestamp,
        leader_pred: Pred,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        if !self.admit_ballot(cmd_id, ballot) || self.is_stable_locally(cmd_id) {
            return;
        }
        self.clock.observe(time);
        let mut merged = self.history.compute_predecessors(&cmd, time, None);
        merged.extend(leader_pred.iter().copied());
        merged.remove(&cmd_id);
        self.history.update(&cmd, time, merged.clone(), CmdStatus::Accepted, ballot, false);
        self.maybe_schedule_recovery_timer(cmd_id, leader, ctx);
        self.notify_history_change(cmd_id, ctx);
        ctx.send(leader, CaesarMessage::RetryReply { ballot, cmd_id, time, pred: merged });
    }

    fn on_stable(
        &mut self,
        ballot: Ballot,
        cmd: Command,
        time: Timestamp,
        pred: Pred,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let cmd_id = cmd.id();
        if !self.admit_ballot(cmd_id, ballot) {
            return;
        }
        if self.delivery.is_executed(cmd_id) {
            return;
        }
        self.clock.observe(time);
        let mut pred = pred;
        pred.remove(&cmd_id);
        self.history.update(&cmd, time, pred.clone(), CmdStatus::Stable, ballot, false);
        if let std::collections::hash_map::Entry::Vacant(entry) = self.stable_seen_at.entry(cmd_id)
        {
            entry.insert(ctx.now());
            ctx.trace(TracePhase::Commit, cmd_id);
        }
        self.notify_history_change(cmd_id, ctx);
        let executed = self.delivery.on_stable(cmd_id, time, &pred);
        self.apply_executions(executed, ctx);
    }

    fn apply_executions(&mut self, executed: Vec<CommandId>, ctx: &mut Context<'_, CaesarMessage>) {
        let now = ctx.now();
        for id in executed {
            self.history.mark_executed(id);
            self.metrics.commands_executed.inc();
            let info = self.history.get(id).expect("executed command is in the history");
            let stable_at = self.stable_seen_at.get(&id).copied().unwrap_or(now);
            let (proposed_at, path, breakdown) = match self.led.get(&id) {
                Some(led) => {
                    let deliver = now.saturating_sub(stable_at);
                    self.metrics.deliver_time_total.add(deliver);
                    (
                        led.proposed_at,
                        led.path,
                        LatencyBreakdown {
                            propose: led.propose_time,
                            retry: led.retry_time,
                            deliver,
                            wait: 0,
                        },
                    )
                }
                None => (now, DecisionPath::Ordered, LatencyBreakdown::default()),
            };
            let decision = Decision {
                command: id,
                timestamp: info.ts,
                path,
                proposed_at,
                executed_at: now,
                breakdown,
            };
            ctx.deliver(info.cmd.clone(), decision);
        }
    }

    // ------------------------------------------------------------------
    // Wait-condition parking
    // ------------------------------------------------------------------

    fn park(&mut self, parked: ParkedProposal, blockers: &[CommandId]) {
        let cmd_id = parked.cmd.id();
        self.metrics.wait_events.inc();
        for b in blockers {
            self.parked_by_blocker.entry(*b).or_default().insert(cmd_id);
        }
        self.parked.insert(cmd_id, parked);
    }

    /// Re-evaluates parked proposals whose blocker `changed` made progress.
    fn notify_history_change(&mut self, changed: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let Some(waiting) = self.parked_by_blocker.remove(&changed) else { return };
        for cmd_id in waiting {
            let Some(parked) = self.parked.get(&cmd_id) else { continue };
            let blockers = self.history.wait_blockers(&parked.cmd, parked.time);
            if blockers.is_empty() {
                let parked = self.parked.remove(&cmd_id).expect("present");
                self.metrics.wait_time_total.add(ctx.now().saturating_sub(parked.parked_at));
                self.reply_to_proposal(
                    parked.cmd,
                    parked.ballot,
                    parked.time,
                    parked.kind,
                    parked.leader,
                    parked.whitelist,
                    parked.leader_pred,
                    false,
                    ctx,
                );
            } else {
                for b in blockers {
                    self.parked_by_blocker.entry(b).or_default().insert(cmd_id);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn on_recovery_timeout(&mut self, cmd_id: CommandId, ctx: &mut Context<'_, CaesarMessage>) {
        let Some(timeout) = self.config.recovery_timeout else { return };
        let Some(info) = self.history.get(cmd_id) else { return };
        if info.status == CmdStatus::Stable || self.delivery.is_executed(cmd_id) {
            return;
        }
        // The command is still not stable: suspect its leader and take over.
        self.metrics.recoveries_started.inc();
        ctx.trace(TracePhase::Recovery, cmd_id);
        let ballot = self.current_ballot(cmd_id).next_for(self.id);
        self.ballots.insert(cmd_id, ballot);
        self.recovering.insert(cmd_id, RecoveryState { ballot, replies: HashMap::new() });
        ctx.broadcast(CaesarMessage::Recovery { ballot, cmd_id });
        // Re-arm the timer in case this takeover stalls too, backing off
        // exponentially and spreading replicas apart so that concurrent
        // recoveries do not livelock by continually bumping each other's
        // ballots.
        let attempts = self.recovery_attempts.entry(cmd_id).or_insert(0);
        *attempts = attempts.saturating_add(1);
        let backoff = timeout.saturating_mul(1 << (*attempts).min(5))
            + (self.id.index() as SimTime + 1) * timeout;
        ctx.schedule_self(backoff, CaesarMessage::RecoveryTimeout { cmd_id });
    }

    fn on_recovery(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        cmd_id: CommandId,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        // Only promise strictly greater ballots (Figure 5, line 28).
        if ballot <= self.current_ballot(cmd_id) && self.ballots.contains_key(&cmd_id) {
            return;
        }
        self.ballots.insert(cmd_id, ballot);
        let info = self.history.get(cmd_id).map(|info| RecoveryInfo {
            cmd: info.cmd.clone(),
            ts: info.ts,
            pred: info.pred.clone(),
            status: info.status,
            ballot: info.ballot,
            forced: info.forced,
        });
        ctx.send(from, CaesarMessage::RecoveryReply { ballot, cmd_id, info });
    }

    fn on_recovery_reply(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        cmd_id: CommandId,
        info: Option<RecoveryInfo>,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let classic_quorum = self.config.quorums.classic();
        let Some(state) = self.recovering.get_mut(&cmd_id) else { return };
        if state.ballot != ballot {
            return;
        }
        state.replies.insert(from, info);
        if state.replies.len() < classic_quorum {
            return;
        }
        let state = self.recovering.remove(&cmd_id).expect("present");
        self.finish_recovery(cmd_id, state, ctx);
    }

    fn finish_recovery(
        &mut self,
        cmd_id: CommandId,
        state: RecoveryState,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        let ballot = state.ballot;
        let infos: Vec<&RecoveryInfo> = state.replies.values().flatten().collect();
        // Keep only the tuples from the highest ballot seen (Figure 5, lines 5–6).
        let max_ballot = infos.iter().map(|i| i.ballot).max();
        let recovery_set: Vec<&RecoveryInfo> = match max_ballot {
            Some(b) => infos.iter().copied().filter(|i| i.ballot == b).collect(),
            None => Vec::new(),
        };

        // The command payload: from any reply, falling back to local history.
        let cmd = recovery_set
            .first()
            .map(|i| i.cmd.clone())
            .or_else(|| self.history.get(cmd_id).map(|i| i.cmd.clone()));
        let Some(cmd) = cmd else { return };
        let now = ctx.now();

        if let Some(stable) = recovery_set.iter().find(|i| i.status == CmdStatus::Stable) {
            // (i) Someone already knows the decision: just re-broadcast it.
            self.metrics.recovered_decisions.inc();
            ctx.broadcast(CaesarMessage::Stable {
                ballot,
                cmd,
                time: stable.ts,
                pred: stable.pred.clone(),
            });
            return;
        }
        if let Some(accepted) = recovery_set.iter().find(|i| i.status == CmdStatus::Accepted) {
            // (ii) Restart from the retry phase with the accepted tuple.
            let time = accepted.ts;
            let pred = accepted.pred.clone();
            self.leading.insert(
                cmd_id,
                LeaderState {
                    cmd: cmd.clone(),
                    ballot,
                    time,
                    phase: LeaderPhase::Retry,
                    replies: HashMap::new(),
                    pred: pred.clone(),
                    proposed_at: now,
                    phase_started_at: now,
                    propose_time: 0,
                    retry_time: 0,
                    timeout_fired: false,
                    from_recovery: true,
                },
            );
            ctx.broadcast(CaesarMessage::Retry { ballot, cmd, time, pred });
            return;
        }
        if recovery_set.is_empty() || recovery_set.iter().any(|i| i.status == CmdStatus::Rejected) {
            // (iii) The command was certainly not decided: start from scratch.
            let time = self.clock.next();
            self.start_fast_proposal(cmd, ballot, time, None, true, now, ctx);
            return;
        }
        if let Some(slow) = recovery_set.iter().find(|i| i.status == CmdStatus::SlowPending) {
            // (iv) Restart from the slow proposal phase.
            let time = slow.ts;
            let pred = slow.pred.clone();
            self.leading.insert(
                cmd_id,
                LeaderState {
                    cmd: cmd.clone(),
                    ballot,
                    time,
                    phase: LeaderPhase::SlowProposal,
                    replies: HashMap::new(),
                    pred: pred.clone(),
                    proposed_at: now,
                    phase_started_at: now,
                    propose_time: 0,
                    retry_time: 0,
                    timeout_fired: false,
                    from_recovery: true,
                },
            );
            ctx.broadcast(CaesarMessage::SlowPropose { ballot, cmd, time, pred });
            return;
        }
        // (v) Every tuple is fast-pending at the same timestamp: the command
        // may have been decided fast, so re-propose with a whitelist that
        // preserves that possible decision (Figure 5, lines 16–25).
        let time = recovery_set[0].ts;
        let union: Pred = recovery_set.iter().flat_map(|i| i.pred.iter().copied()).collect();
        let whitelist = if let Some(forced) = recovery_set.iter().find(|i| i.forced) {
            let _ = forced;
            Some(union.clone())
        } else if recovery_set.len() >= self.config.quorums.recovery_majority() {
            let majority = self.config.quorums.recovery_majority();
            let filtered: Pred = union
                .iter()
                .copied()
                .filter(|c| {
                    let missing = recovery_set.iter().filter(|i| !i.pred.contains(c)).count();
                    missing < majority
                })
                .collect();
            Some(filtered)
        } else {
            None
        };
        self.start_fast_proposal(cmd, ballot, time, whitelist, true, now, ctx);
    }
}

impl Process for CaesarReplica {
    type Message = CaesarMessage;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, CaesarMessage>) {
        let time = self.clock.next();
        let ballot = Ballot::initial(self.id);
        self.start_fast_proposal(cmd, ballot, time, None, false, ctx.now(), ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: CaesarMessage,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        match msg {
            CaesarMessage::FastPropose { ballot, cmd, time, whitelist } => {
                self.on_fast_propose(from, ballot, cmd, time, whitelist, ctx);
            }
            CaesarMessage::FastProposeReply { ballot, cmd_id, time, pred, ok } => {
                self.clock.observe(time);
                let accepted = match self.leading.get_mut(&cmd_id) {
                    Some(state)
                        if state.ballot == ballot && state.phase == LeaderPhase::FastProposal =>
                    {
                        state.replies.insert(from, (time, pred, ok));
                        true
                    }
                    _ => false,
                };
                if accepted {
                    self.evaluate_fast_proposal(cmd_id, ctx);
                }
            }
            CaesarMessage::SlowPropose { ballot, cmd, time, pred } => {
                self.on_slow_propose(from, ballot, cmd, time, pred, ctx);
            }
            CaesarMessage::SlowProposeReply { ballot, cmd_id, time, pred, ok } => {
                self.clock.observe(time);
                let accepted = match self.leading.get_mut(&cmd_id) {
                    Some(state)
                        if state.ballot == ballot && state.phase == LeaderPhase::SlowProposal =>
                    {
                        state.replies.insert(from, (time, pred, ok));
                        true
                    }
                    _ => false,
                };
                if accepted {
                    self.evaluate_slow_proposal(cmd_id, ctx);
                }
            }
            CaesarMessage::Retry { ballot, cmd, time, pred } => {
                self.on_retry(from, ballot, cmd, time, pred, ctx);
            }
            CaesarMessage::RetryReply { ballot, cmd_id, time, pred } => {
                self.clock.observe(time);
                let accepted = match self.leading.get_mut(&cmd_id) {
                    Some(state) if state.ballot == ballot && state.phase == LeaderPhase::Retry => {
                        state.replies.insert(from, (time, pred, true));
                        true
                    }
                    _ => false,
                };
                if accepted {
                    self.evaluate_retry(cmd_id, ctx);
                }
            }
            CaesarMessage::Stable { ballot, cmd, time, pred } => {
                self.on_stable(ballot, cmd, time, pred, ctx);
            }
            CaesarMessage::Recovery { ballot, cmd_id } => {
                self.on_recovery(from, ballot, cmd_id, ctx);
            }
            CaesarMessage::RecoveryReply { ballot, cmd_id, info } => {
                self.on_recovery_reply(from, ballot, cmd_id, info, ctx);
            }
            CaesarMessage::FastQuorumTimeout { cmd_id, ballot } => {
                let fired = match self.leading.get_mut(&cmd_id) {
                    Some(state)
                        if state.ballot == ballot && state.phase == LeaderPhase::FastProposal =>
                    {
                        state.timeout_fired = true;
                        true
                    }
                    _ => false,
                };
                if fired {
                    self.evaluate_fast_proposal(cmd_id, ctx);
                }
            }
            CaesarMessage::RecoveryTimeout { cmd_id } => {
                self.on_recovery_timeout(cmd_id, ctx);
            }
        }
    }

    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, CaesarMessage>,
    ) {
        // Commands covered by an installed snapshot count as executed:
        // without this, any later command whose predecessor set names one
        // of them would wait forever on this fresh replica. The delivery
        // engine absorbs the run-compacted summary (so it never materializes
        // the O(history) id set) and releases any stable commands that were
        // blocked only on transferred predecessors. Predecessor sets name
        // consensus *units* — batch ids included — so absorb the unit-level
        // view, not just the per-leaf `applied` summary.
        let ready = self.delivery.absorb_transfer(&transfer.unit_summary());
        self.apply_executions(ready, ctx);
    }

    fn processing_cost(&self, msg: &CaesarMessage) -> SimTime {
        let base = self.config.message_cost_us;
        match msg {
            CaesarMessage::FastPropose { .. }
            | CaesarMessage::SlowPropose { .. }
            | CaesarMessage::Retry { .. } => base,
            CaesarMessage::Stable { pred, .. } => {
                base + (pred.len() as u64 * self.config.per_dependency_cost_ns) / 1_000
            }
            CaesarMessage::FastProposeReply { .. }
            | CaesarMessage::SlowProposeReply { .. }
            | CaesarMessage::RetryReply { .. }
            | CaesarMessage::RecoveryReply { .. } => base / 2 + 1,
            CaesarMessage::Recovery { .. } => base / 2 + 1,
            CaesarMessage::FastQuorumTimeout { .. } | CaesarMessage::RecoveryTimeout { .. } => 1,
        }
    }

    fn client_processing_cost(&self, _cmd: &Command) -> SimTime {
        self.config.message_cost_us
    }

    fn telemetry(&self) -> Option<Arc<Registry>> {
        Some(self.registry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::QuorumSpec;
    use simnet::{LatencyMatrix, SimConfig, Simulator};

    fn five_site_sim(config: CaesarConfig) -> Simulator<CaesarReplica> {
        let latency = LatencyMatrix::ec2_five_sites();
        Simulator::new(SimConfig::new(latency), move |id| CaesarReplica::new(id, config.clone()))
    }

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn single_command_is_decided_fast_everywhere() {
        let mut sim = five_site_sim(CaesarConfig::new(5));
        sim.schedule_command(0, NodeId(0), put(0, 1, 7));
        sim.run();
        for node in NodeId::all(5) {
            assert_eq!(sim.decisions(node).len(), 1, "{node} must execute the command");
        }
        let metrics = sim.process(NodeId(0)).metrics();
        assert_eq!(metrics.fast_decisions, 1);
        assert_eq!(metrics.led_decisions(), 1);
        let d = &sim.decisions(NodeId(0))[0];
        assert_eq!(d.path, DecisionPath::Fast);
        assert!(d.latency() > 0);
    }

    #[test]
    fn non_conflicting_commands_all_decide_fast() {
        let mut sim = five_site_sim(CaesarConfig::new(5));
        for i in 0..5u32 {
            sim.schedule_command(1_000 * u64::from(i), NodeId(i), put(i, 1, u64::from(i) + 100));
        }
        sim.run();
        for node in NodeId::all(5) {
            assert_eq!(sim.decisions(node).len(), 5);
            assert_eq!(sim.process(node).metrics().fast_decisions, 1);
            assert_eq!(sim.process(node).metrics().led_decisions(), 1);
        }
    }

    #[test]
    fn conflicting_commands_execute_in_timestamp_order_everywhere() {
        let mut sim = five_site_sim(CaesarConfig::new(5));
        // Concurrent conflicting commands from every site on the same key.
        for i in 0..5u32 {
            sim.schedule_command(u64::from(i) * 100, NodeId(i), put(i, 1, 7));
        }
        sim.run();
        let reference: Vec<CommandId> =
            sim.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 5);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "execution order must match on {node}");
        }
        // Timestamps must be increasing along the execution order.
        let ts: Vec<Timestamp> = sim.decisions(NodeId(0)).iter().map(|d| d.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn conflicting_commands_mostly_take_the_fast_path() {
        let mut sim = five_site_sim(CaesarConfig::new(5));
        for round in 0..10u64 {
            for i in 0..5u32 {
                sim.schedule_command(
                    round * 400_000 + u64::from(i) * 1_000,
                    NodeId(i),
                    put(i, round, 7),
                );
            }
        }
        sim.run();
        let mut fast = 0;
        let mut total = 0;
        for node in NodeId::all(5) {
            let m = sim.process(node).metrics();
            fast += m.fast_decisions;
            total += m.led_decisions();
        }
        assert_eq!(total, 50);
        assert!(fast * 10 >= total * 7, "most decisions should be fast, got {fast}/{total}");
        // All replicas executed everything and agree on the conflicting order.
        let reference: Vec<CommandId> =
            sim.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        for node in NodeId::all(5) {
            assert_eq!(sim.decisions(node).len(), 50);
            let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference);
        }
    }

    #[test]
    fn disabling_wait_condition_causes_more_slow_decisions() {
        let run = |wait: bool| {
            let config = CaesarConfig::new(5).with_wait_condition(wait);
            let mut sim = five_site_sim(config);
            for round in 0..20u64 {
                for i in 0..5u32 {
                    sim.schedule_command(
                        round * 120_000 + u64::from(i) * 7_000,
                        NodeId(i),
                        put(i, round, 7),
                    );
                }
            }
            sim.run();
            let mut slow = 0u64;
            for node in NodeId::all(5) {
                let m = sim.process(node).metrics();
                slow += m.led_decisions() - m.fast_decisions;
            }
            slow
        };
        let with_wait = run(true);
        let without_wait = run(false);
        assert!(
            without_wait >= with_wait,
            "wait condition should not increase slow decisions: {with_wait} vs {without_wait}"
        );
    }

    #[test]
    fn leader_crash_is_recovered_by_other_replicas() {
        let mut config = CaesarConfig::new(5);
        config.recovery_timeout = Some(1_000_000);
        let mut sim = five_site_sim(config);
        // Node 0 proposes and crashes 1 ms later — before it can send STABLE
        // (the fastest quorum round trip is ~12 ms).
        sim.schedule_command(0, NodeId(0), put(0, 1, 7));
        sim.schedule_crash(1_000, NodeId(0));
        sim.run();
        for node in NodeId::all(5).skip(1) {
            assert_eq!(
                sim.decisions(node).len(),
                1,
                "{node} must execute the command after recovery"
            );
        }
        let recoveries: u64 =
            NodeId::all(5).skip(1).map(|n| sim.process(n).metrics().recoveries_started).sum();
        assert!(recoveries >= 1, "at least one replica must have started a recovery");
    }

    #[test]
    fn five_node_cluster_survives_one_straggler_via_slow_proposal() {
        // Make node 4 unreachable: with only 4 live nodes a fast quorum (4) is
        // still possible, so crash node 3 as well leaving 3 = CQ.
        let config =
            CaesarConfig::new(5).with_fast_quorum_timeout(100_000).with_recovery_timeout(None);
        let mut sim = five_site_sim(config);
        sim.schedule_crash(0, NodeId(3));
        sim.schedule_crash(0, NodeId(4));
        sim.schedule_command(1_000, NodeId(0), put(0, 1, 7));
        sim.run();
        assert_eq!(sim.decisions(NodeId(0)).len(), 1);
        let m = sim.process(NodeId(0)).metrics();
        assert_eq!(m.slow_decisions_proposal, 1, "decision must have used the slow proposal path");
        let d = &sim.decisions(NodeId(0))[0];
        assert_eq!(d.path, DecisionPath::SlowProposal);
    }

    #[test]
    fn full_fast_quorum_requirement_forces_slow_path_when_one_node_is_down() {
        // Ablation: with FQ = N, losing any node forces the slow-proposal path.
        let config = CaesarConfig::new(5)
            .with_quorums(QuorumSpec::with_fast_quorum(5, 5))
            .with_fast_quorum_timeout(100_000)
            .with_recovery_timeout(None);
        let mut sim = five_site_sim(config);
        sim.schedule_crash(0, NodeId(4));
        sim.schedule_command(1_000, NodeId(0), put(0, 1, 7));
        sim.run();
        let m = sim.process(NodeId(0)).metrics();
        assert_eq!(m.fast_decisions, 0);
        assert_eq!(m.slow_decisions_proposal, 1);
    }

    #[test]
    fn rejected_timestamp_is_retried_and_ordered_after_the_conflict() {
        // Force a rejection: node 4 proposes a conflicting command much later
        // in logical time by first observing many commands.
        let mut sim = five_site_sim(CaesarConfig::new(5));
        // A burst of conflicting commands from node 0 advances everyone's clocks.
        for i in 0..3u64 {
            sim.schedule_command(i * 200_000, NodeId(0), put(0, i + 10, 7));
        }
        // Now two nearly simultaneous conflicting proposals from distant sites.
        sim.schedule_command(650_000, NodeId(4), put(4, 1, 7));
        sim.schedule_command(650_100, NodeId(1), put(1, 1, 7));
        sim.run();
        let reference: Vec<CommandId> =
            sim.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 5);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = sim.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "order must be identical at {node}");
        }
    }

    #[test]
    fn metrics_track_wait_condition_activity_under_contention() {
        let mut sim = five_site_sim(CaesarConfig::new(5));
        for round in 0..10u64 {
            for i in 0..5u32 {
                sim.schedule_command(
                    round * 50_000 + u64::from(i) * 2_000,
                    NodeId(i),
                    put(i, round, 9),
                );
            }
        }
        sim.run();
        let wait_events: u64 = NodeId::all(5).map(|n| sim.process(n).metrics().wait_events).sum();
        let executed: u64 =
            NodeId::all(5).map(|n| sim.process(n).metrics().commands_executed).sum();
        assert_eq!(executed, 250, "all 50 commands executed on all 5 nodes");
        assert!(wait_events > 0, "contention at this rate must trigger the wait condition");
    }
}
