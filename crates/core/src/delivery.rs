//! The delivery engine: break-loop and predecessor-gated execution.
//!
//! Once a command is stable, a replica may execute it only after every
//! command in its predecessor set has been executed (`DELIVERABLE`, Figure 3
//! lines 16–17). Because a command can be retried to a larger timestamp,
//! predecessor sets can contain "loops" (an earlier-timestamped command
//! listing a later one); `BREAKLOOP` (Figure 3 lines 9–15) removes those by
//! always trusting the timestamp order.

use std::collections::{BTreeSet, HashMap, HashSet};

use consensus_types::{AppliedSummary, CommandId, Timestamp};

/// Tracks stable-but-not-yet-executed commands and decides when they can run.
#[derive(Debug, Default)]
pub struct DeliveryEngine {
    /// Every command whose effect is reflected locally — executed here or
    /// absorbed through snapshot-based state transfer. Run-length compacted:
    /// sessions allocate ids densely, so a long history collapses to a few
    /// `(start, end)` runs per origin instead of one `HashSet` entry per
    /// command ever executed.
    executed: AppliedSummary,
    /// Commands executed locally by this engine (excludes ids that only
    /// arrived through a transfer), for progress accounting.
    executed_count: u64,
    /// Stable commands waiting for predecessors: remaining predecessor ids.
    waiting: HashMap<CommandId, HashSet<CommandId>>,
    /// Timestamps of stable commands (needed for loop breaking).
    stable_ts: HashMap<CommandId, Timestamp>,
    /// Reverse index: predecessor id → stable commands waiting on it.
    waiters: HashMap<CommandId, HashSet<CommandId>>,
}

impl DeliveryEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` has been executed locally (or its effect arrived
    /// through a state transfer).
    #[must_use]
    pub fn is_executed(&self, id: CommandId) -> bool {
        self.executed.contains(id)
    }

    /// Number of commands executed locally so far.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.executed_count as usize
    }

    /// Number of `(start, end)` runs backing the executed-id summary — the
    /// actual memory footprint of the execution history, surfaced so tests
    /// can assert it stays compact while `executed_count` grows.
    #[must_use]
    pub fn executed_runs(&self) -> usize {
        self.executed.run_count()
    }

    /// Number of stable commands still waiting for predecessors.
    #[must_use]
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Registers a stable command with its final timestamp and predecessor
    /// set, applies the break-loop rule against other stable commands, and
    /// returns the commands that became executable as a result (in execution
    /// order, starting with this command if it is ready).
    ///
    /// The returned commands are already marked as executed; the caller is
    /// responsible for applying them to the state machine and for telling the
    /// history about the execution.
    pub fn on_stable(
        &mut self,
        id: CommandId,
        ts: Timestamp,
        pred: &BTreeSet<CommandId>,
    ) -> Vec<CommandId> {
        if self.is_executed(id) || self.waiting.contains_key(&id) {
            // Duplicate STABLE (e.g. re-sent by a recovery leader): ignore.
            return Vec::new();
        }
        self.stable_ts.insert(id, ts);

        // BREAKLOOP, part 1: for every predecessor that is already stable with
        // a *smaller* timestamp, drop `id` from its remaining set (it must not
        // wait for us).
        let mut newly_ready = Vec::new();
        for &p in pred {
            if let Some(&p_ts) = self.stable_ts.get(&p) {
                if p_ts < ts {
                    if let Some(remaining) = self.waiting.get_mut(&p) {
                        if remaining.remove(&id) && remaining.is_empty() {
                            newly_ready.push(p);
                        }
                    }
                }
            }
        }

        // BREAKLOOP, part 2: drop predecessors that are already stable with a
        // *larger* timestamp — they execute after us.
        let mut remaining: HashSet<CommandId> = pred
            .iter()
            .copied()
            .filter(|p| {
                if self.executed.contains(*p) {
                    return false;
                }
                match self.stable_ts.get(p) {
                    Some(&p_ts) => p_ts < ts,
                    None => true,
                }
            })
            .collect();
        // A command never waits for itself.
        remaining.remove(&id);

        let mut out = Vec::new();
        if remaining.is_empty() {
            self.execute(id, &mut out);
        } else {
            for &p in &remaining {
                self.waiters.entry(p).or_default().insert(id);
            }
            self.waiting.insert(id, remaining);
        }
        for p in newly_ready {
            self.execute(p, &mut out);
        }
        out
    }

    /// Marks `id` as executed and cascades to commands that were waiting on it.
    fn execute(&mut self, id: CommandId, out: &mut Vec<CommandId>) {
        if !self.executed.insert(id) {
            return;
        }
        self.executed_count += 1;
        self.waiting.remove(&id);
        out.push(id);
        let Some(waiters) = self.waiters.remove(&id) else { return };
        for w in waiters {
            let done = match self.waiting.get_mut(&w) {
                Some(remaining) => {
                    remaining.remove(&id);
                    remaining.is_empty()
                }
                None => false,
            };
            if done {
                self.execute(w, out);
            }
        }
    }

    /// Absorbs a snapshot-based state transfer: every id in `applied`
    /// counts as executed from now on — consulted through the
    /// floor-compacted summary rather than enumerated one id at a time —
    /// and stable commands that were blocked only on transferred
    /// predecessors become deliverable. Like [`DeliveryEngine::on_stable`],
    /// the returned commands are already marked executed and the caller
    /// applies them (the runtime deduplicates any the transfer itself
    /// covered).
    pub fn absorb_transfer(&mut self, applied: &AppliedSummary) -> Vec<CommandId> {
        self.executed.merge(applied);
        let executed = &self.executed;
        // A waiting command the transfer itself covers is done — its effect
        // arrived with the snapshot — so drop it rather than re-deliver it.
        self.waiting.retain(|id, _| !executed.contains(*id));
        let mut newly_ready: Vec<CommandId> = Vec::new();
        for (&id, remaining) in self.waiting.iter_mut() {
            remaining.retain(|p| !executed.contains(*p));
            if remaining.is_empty() {
                newly_ready.push(id);
            }
        }
        // Covered predecessors will never pass through `execute`, so their
        // reverse-index entries would otherwise linger forever.
        self.waiters.retain(|p, _| !executed.contains(*p));
        // Deterministic delivery order for commands released in one batch.
        newly_ready.sort_by_key(|id| (self.stable_ts.get(id).copied(), *id));
        let mut out = Vec::new();
        for id in newly_ready {
            self.execute(id, &mut out);
        }
        out
    }

    /// The ids of stable commands still blocked, with the predecessors they
    /// are waiting for. Useful for debugging stuck deliveries in tests.
    #[must_use]
    pub fn blocked(&self) -> Vec<(CommandId, Vec<CommandId>)> {
        self.waiting
            .iter()
            .map(|(id, remaining)| (*id, remaining.iter().copied().collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::NodeId;

    fn id(node: u32, seq: u64) -> CommandId {
        CommandId::new(NodeId(node), seq)
    }

    fn ts(counter: u64) -> Timestamp {
        Timestamp::new(counter, NodeId(0))
    }

    fn set(ids: &[CommandId]) -> BTreeSet<CommandId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn command_without_predecessors_executes_immediately() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        assert_eq!(d.on_stable(a, ts(1), &set(&[])), vec![a]);
        assert!(d.is_executed(a));
        assert_eq!(d.executed_count(), 1);
    }

    #[test]
    fn command_waits_for_predecessors() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        let b = id(1, 1);
        assert!(d.on_stable(b, ts(2), &set(&[a])).is_empty());
        assert_eq!(d.waiting_count(), 1);
        // When a becomes stable (earlier timestamp), both run: a then b.
        assert_eq!(d.on_stable(a, ts(1), &set(&[])), vec![a, b]);
        assert_eq!(d.waiting_count(), 0);
    }

    #[test]
    fn executed_predecessors_are_not_waited_for() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        let b = id(1, 1);
        d.on_stable(a, ts(1), &set(&[]));
        assert_eq!(d.on_stable(b, ts(2), &set(&[a])), vec![b]);
    }

    #[test]
    fn break_loop_removes_later_predecessor_from_earlier_command() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1); // ts 1, pred {b}: loop entry
        let b = id(1, 1); // ts 2, pred {a}
                          // b stable first: waits for a.
        assert!(d.on_stable(b, ts(2), &set(&[a])).is_empty());
        // a stable with smaller ts and pred {b}: the loop is broken — a runs
        // first (its pred b is stable with larger ts, dropped), then b.
        assert_eq!(d.on_stable(a, ts(1), &set(&[b])), vec![a, b]);
    }

    #[test]
    fn break_loop_unblocks_earlier_stable_command() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1); // ts 1, pred {b}
        let b = id(1, 1); // ts 2, pred {a}
                          // a stable first, waiting for b (b not stable yet, so no loop known).
        assert!(d.on_stable(a, ts(1), &set(&[b])).is_empty());
        // b becomes stable with larger ts and pred {a}: part 1 of break-loop
        // removes b from a's waiting set, so a executes, then b.
        let order = d.on_stable(b, ts(2), &set(&[a]));
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn duplicate_stable_is_ignored() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        assert_eq!(d.on_stable(a, ts(1), &set(&[])), vec![a]);
        assert!(d.on_stable(a, ts(1), &set(&[])).is_empty());
        assert_eq!(d.executed_count(), 1);
    }

    #[test]
    fn long_chain_executes_in_order() {
        let mut d = DeliveryEngine::new();
        let ids: Vec<_> = (0..10).map(|i| id(0, i)).collect();
        // Deliver stables in reverse order; each waits for the previous one.
        for i in (1..10).rev() {
            assert!(d.on_stable(ids[i], ts(i as u64 + 1), &set(&[ids[i - 1]])).is_empty());
        }
        let order = d.on_stable(ids[0], ts(1), &set(&[]));
        assert_eq!(order, ids);
    }

    #[test]
    fn blocked_lists_missing_predecessors() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        let b = id(1, 1);
        d.on_stable(b, ts(2), &set(&[a]));
        let blocked = d.blocked();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].0, b);
        assert_eq!(blocked[0].1, vec![a]);
    }

    #[test]
    fn executed_history_compacts_to_a_few_runs() {
        let mut d = DeliveryEngine::new();
        // Two origins, densely allocated sequences, interleaved delivery.
        for seq in 1..=500u64 {
            for node in 0..2 {
                d.on_stable(id(node, seq), ts(seq * 2 + u64::from(node)), &set(&[]));
            }
        }
        assert_eq!(d.executed_count(), 1000);
        assert!(
            d.executed_runs() <= 2,
            "dense history must collapse to one run per origin, got {}",
            d.executed_runs()
        );
    }

    #[test]
    fn transfer_covering_a_waiting_command_retires_it() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        let b = id(0, 2);
        assert!(d.on_stable(b, ts(2), &set(&[a])).is_empty());
        let transfer: AppliedSummary = [a, b].into_iter().collect();
        // Both ids arrived with the snapshot: nothing to re-deliver, nothing
        // left waiting.
        assert!(d.absorb_transfer(&transfer).is_empty());
        assert_eq!(d.waiting_count(), 0);
        assert!(d.is_executed(a) && d.is_executed(b));
    }

    #[test]
    fn diamond_dependencies_execute_each_command_once() {
        let mut d = DeliveryEngine::new();
        let a = id(0, 1);
        let b = id(1, 1);
        let c = id(2, 1);
        let e = id(3, 1);
        assert!(d.on_stable(e, ts(4), &set(&[b, c])).is_empty());
        assert!(d.on_stable(b, ts(2), &set(&[a])).is_empty());
        assert!(d.on_stable(c, ts(3), &set(&[a])).is_empty());
        let order = d.on_stable(a, ts(1), &set(&[]));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], a);
        assert_eq!(*order.last().unwrap(), e);
        assert_eq!(d.executed_count(), 4);
    }
}
