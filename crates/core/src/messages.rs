//! Wire messages (and self-scheduled timeouts) of the CAESAR protocol.

use std::collections::BTreeSet;

use consensus_types::{Ballot, Command, CommandId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::history::CmdStatus;

/// Which proposal phase a reply belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalKind {
    /// The fast proposal phase (first round, fast quorum).
    Fast,
    /// The slow proposal phase (after a fast-quorum timeout, classic quorum).
    Slow,
}

/// Snapshot of a history tuple shipped in a `RecoveryReply`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// The command payload (so a recovery leader that never saw the original
    /// proposal can still finish it).
    pub cmd: Command,
    /// Latest known timestamp at the replying acceptor.
    pub ts: Timestamp,
    /// Latest known predecessor set at the replying acceptor.
    pub pred: BTreeSet<CommandId>,
    /// Status of the command at the replying acceptor.
    pub status: CmdStatus,
    /// Ballot that produced that status.
    pub ballot: Ballot,
    /// Whether the predecessor set was forced by a recovery whitelist.
    pub forced: bool,
}

/// Messages exchanged by CAESAR replicas.
///
/// Timeouts are modelled as messages a replica schedules to itself
/// (`FastQuorumTimeout`, `RecoveryTimeout`), which keeps the whole protocol
/// expressible through a single [`simnet::Process::on_message`] entry point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CaesarMessage {
    /// Leader → all: propose `cmd` at `time` (fast proposal phase).
    FastPropose {
        /// Ballot of the proposing leader.
        ballot: Ballot,
        /// The command being proposed.
        cmd: Command,
        /// Proposed delivery timestamp.
        time: Timestamp,
        /// Recovery whitelist (`None` outside recovery).
        whitelist: Option<BTreeSet<CommandId>>,
    },
    /// Acceptor → leader: reply to a fast proposal.
    FastProposeReply {
        /// Ballot the reply refers to.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
        /// Confirmed timestamp (on OK) or suggested greater timestamp (on NACK).
        time: Timestamp,
        /// Predecessors known to the acceptor.
        pred: BTreeSet<CommandId>,
        /// `true` for OK, `false` for NACK.
        ok: bool,
    },
    /// Leader → all: slow proposal after a fast-quorum timeout.
    SlowPropose {
        /// Ballot of the proposing leader.
        ballot: Ballot,
        /// The command being proposed.
        cmd: Command,
        /// Timestamp carried over from the fast proposal phase.
        time: Timestamp,
        /// Predecessor set accumulated in the fast proposal phase.
        pred: BTreeSet<CommandId>,
    },
    /// Acceptor → leader: reply to a slow proposal.
    SlowProposeReply {
        /// Ballot the reply refers to.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
        /// Confirmed timestamp (on OK) or suggested greater timestamp (on NACK).
        time: Timestamp,
        /// Predecessors known to the acceptor.
        pred: BTreeSet<CommandId>,
        /// `true` for OK, `false` for NACK.
        ok: bool,
    },
    /// Leader → all: retry with a greater timestamp after a rejection.
    Retry {
        /// Ballot of the proposing leader.
        ballot: Ballot,
        /// The command being retried.
        cmd: Command,
        /// The new (maximum suggested) timestamp.
        time: Timestamp,
        /// Predecessor set accumulated so far.
        pred: BTreeSet<CommandId>,
    },
    /// Acceptor → leader: acknowledgement of a retry (never a rejection).
    RetryReply {
        /// Ballot the reply refers to.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
        /// The accepted timestamp.
        time: Timestamp,
        /// Additional predecessors computed against the new timestamp.
        pred: BTreeSet<CommandId>,
    },
    /// Leader → all: final decision for a command.
    Stable {
        /// Ballot of the deciding leader.
        ballot: Ballot,
        /// The decided command.
        cmd: Command,
        /// Final delivery timestamp.
        time: Timestamp,
        /// Final predecessor set.
        pred: BTreeSet<CommandId>,
    },
    /// Recovery leader → all: request the latest information about a command.
    Recovery {
        /// The (higher) ballot of the node attempting the takeover.
        ballot: Ballot,
        /// The command being recovered.
        cmd_id: CommandId,
    },
    /// Acceptor → recovery leader: latest known tuple for the command, or
    /// `None` if the acceptor never heard of it.
    RecoveryReply {
        /// Ballot the reply refers to.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
        /// The acceptor's history tuple, if any.
        info: Option<RecoveryInfo>,
    },
    /// Self-timeout: the leader stops waiting for a full fast quorum.
    FastQuorumTimeout {
        /// The command whose fast proposal phase timed out.
        cmd_id: CommandId,
        /// Ballot of that proposal.
        ballot: Ballot,
    },
    /// Self-timeout: this replica suspects the leader of `cmd_id` and starts
    /// a recovery if the command is still not stable.
    RecoveryTimeout {
        /// The command whose leader is suspected.
        cmd_id: CommandId,
    },
}

impl CaesarMessage {
    /// The command id this message refers to.
    #[must_use]
    pub fn command_id(&self) -> CommandId {
        match self {
            CaesarMessage::FastPropose { cmd, .. }
            | CaesarMessage::SlowPropose { cmd, .. }
            | CaesarMessage::Retry { cmd, .. }
            | CaesarMessage::Stable { cmd, .. } => cmd.id(),
            CaesarMessage::FastProposeReply { cmd_id, .. }
            | CaesarMessage::SlowProposeReply { cmd_id, .. }
            | CaesarMessage::RetryReply { cmd_id, .. }
            | CaesarMessage::Recovery { cmd_id, .. }
            | CaesarMessage::RecoveryReply { cmd_id, .. }
            | CaesarMessage::FastQuorumTimeout { cmd_id, .. }
            | CaesarMessage::RecoveryTimeout { cmd_id } => *cmd_id,
        }
    }

    /// A short label for tracing and statistics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CaesarMessage::FastPropose { .. } => "FastPropose",
            CaesarMessage::FastProposeReply { .. } => "FastProposeReply",
            CaesarMessage::SlowPropose { .. } => "SlowPropose",
            CaesarMessage::SlowProposeReply { .. } => "SlowProposeReply",
            CaesarMessage::Retry { .. } => "Retry",
            CaesarMessage::RetryReply { .. } => "RetryReply",
            CaesarMessage::Stable { .. } => "Stable",
            CaesarMessage::Recovery { .. } => "Recovery",
            CaesarMessage::RecoveryReply { .. } => "RecoveryReply",
            CaesarMessage::FastQuorumTimeout { .. } => "FastQuorumTimeout",
            CaesarMessage::RecoveryTimeout { .. } => "RecoveryTimeout",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::NodeId;

    #[test]
    fn command_id_is_extracted_from_every_variant() {
        let cmd = Command::put(CommandId::new(NodeId(1), 7), 3, 0);
        let id = cmd.id();
        let b = Ballot::initial(NodeId(1));
        let t = Timestamp::new(1, NodeId(1));
        let msgs = vec![
            CaesarMessage::FastPropose { ballot: b, cmd: cmd.clone(), time: t, whitelist: None },
            CaesarMessage::FastProposeReply {
                ballot: b,
                cmd_id: id,
                time: t,
                pred: BTreeSet::new(),
                ok: true,
            },
            CaesarMessage::SlowPropose {
                ballot: b,
                cmd: cmd.clone(),
                time: t,
                pred: BTreeSet::new(),
            },
            CaesarMessage::SlowProposeReply {
                ballot: b,
                cmd_id: id,
                time: t,
                pred: BTreeSet::new(),
                ok: false,
            },
            CaesarMessage::Retry { ballot: b, cmd: cmd.clone(), time: t, pred: BTreeSet::new() },
            CaesarMessage::RetryReply { ballot: b, cmd_id: id, time: t, pred: BTreeSet::new() },
            CaesarMessage::Stable { ballot: b, cmd, time: t, pred: BTreeSet::new() },
            CaesarMessage::Recovery { ballot: b, cmd_id: id },
            CaesarMessage::RecoveryReply { ballot: b, cmd_id: id, info: None },
            CaesarMessage::FastQuorumTimeout { cmd_id: id, ballot: b },
            CaesarMessage::RecoveryTimeout { cmd_id: id },
        ];
        for m in msgs {
            assert_eq!(m.command_id(), id, "{}", m.kind());
            assert!(!m.kind().is_empty());
        }
    }
}
