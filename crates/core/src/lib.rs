//! CAESAR — multi-leader Generalized Consensus that chases fast decisions.
//!
//! This crate is a from-scratch Rust implementation of the protocol described
//! in *"Speeding up Consensus by Chasing Fast Decisions"* (Arun, Peluso,
//! Palmieri, Losa, Ravindran — DSN 2017). CAESAR lets every replica act as the
//! leader of the commands proposed to it and agrees on a **delivery
//! timestamp** per command instead of an exact dependency set. A command is
//! decided on the *fast path* (two communication delays) whenever a fast
//! quorum (`⌈3N/4⌉`) of replicas confirms its timestamp — even if those
//! replicas report different predecessor sets, which is the situation that
//! forces EPaxos and similar protocols onto their slow path.
//!
//! # Protocol phases
//!
//! * **Fast proposal** ([`simnet::Process::on_client_command`] →
//!   `FastPropose`/`FastProposeReply`): the leader proposes a timestamp drawn
//!   from its logical clock; acceptors either confirm it (possibly after the
//!   *wait condition* holds the command back while a conflicting,
//!   higher-timestamped command finishes) or reject it with a greater
//!   suggestion.
//! * **Slow proposal**: entered when only a classic quorum answered within the
//!   timeout; one more round over a classic quorum so the timestamp survives
//!   `f` failures.
//! * **Retry**: entered after any rejection; the leader re-proposes the
//!   maximum suggested timestamp. A retry can never be rejected.
//! * **Stable**: the final timestamp and predecessor set are broadcast;
//!   replicas execute a command once all its predecessors have executed
//!   (breaking predecessor loops by timestamp order first).
//! * **Recovery**: when a command's leader is suspected, any replica can take
//!   over with a higher ballot and finish the decision while preserving any
//!   fast decision possibly taken (whitelist reconstruction).
//!
//! # Quorums, conflicts and recovery
//!
//! * **Quorums.** Fast path: one round over a fast quorum of `⌈3N/4⌉`
//!   replicas (4 of 5), two communication delays. Slow path: one extra
//!   round over a classic quorum of `⌊N/2⌋+1` (3 of 5), four delays.
//! * **Conflict condition.** Two commands conflict when they access the
//!   same key and at least one writes; only conflicting commands are
//!   timestamp-ordered relative to each other (Generalized Consensus).
//! * **Recovery semantics (restart catch-up).** Execution is gated on
//!   predecessor sets, so the resume point of a restarted replica is the
//!   *set of applied command ids*: `Process::on_state_transfer` feeds the
//!   transferred, floor-compacted `consensus_types::AppliedSummary` to the
//!   delivery engine as a baseline — every covered id counts as executed
//!   for all future predecessor checks without the O(history) set ever
//!   being materialized — and stable commands blocked only on covered
//!   predecessors deliver immediately. No slot cursor is needed
//!   (`Process::execution_cursor` stays `Ids`).
//!
//! # Example
//!
//! ```
//! use caesar::{CaesarConfig, CaesarReplica};
//! use consensus_types::{Command, CommandId, NodeId};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! // A 5-site cluster with the paper's EC2 latencies.
//! let latency = LatencyMatrix::ec2_five_sites();
//! let config = CaesarConfig::new(5);
//! let mut sim = Simulator::new(SimConfig::new(latency), |id| {
//!     CaesarReplica::new(id, config.clone())
//! });
//!
//! // Two conflicting commands proposed at different sites.
//! sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
//! sim.schedule_command(1_000, NodeId(4), Command::put(CommandId::new(NodeId(4), 1), 7, 2));
//! sim.run();
//!
//! // Every replica executed both commands, in the same order.
//! for node in NodeId::all(5) {
//!     assert_eq!(sim.decisions(node).len(), 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod config;
mod delivery;
mod history;
mod messages;
mod metrics;
mod replica;

pub use clock::LogicalClock;
pub use config::CaesarConfig;
pub use delivery::DeliveryEngine;
pub use history::{CmdInfo, CmdStatus, History};
pub use messages::{CaesarMessage, ProposalKind, RecoveryInfo};
pub use metrics::CaesarMetrics;
pub use replica::CaesarReplica;
