//! The per-replica history `H_i` and the predecessor/wait predicates.
//!
//! `H_i` (Section V-A of the paper) maps every command the replica has heard
//! of to its latest known timestamp, predecessor set, status, ballot and
//! whether that information was forced by a recovery whitelist. On top of the
//! map this module maintains a per-key conflict index ordered by timestamp —
//! the Red-Black-tree structure the paper's implementation section describes —
//! so that `COMPUTEPREDECESSORS`, the wait condition and the NACK predicate
//! are range queries instead of full scans.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use consensus_types::{Ballot, Command, CommandId, Timestamp};
use serde::{Deserialize, Serialize};

/// Status of a command in the history, mirroring the paper's
/// `{fast-pending, slow-pending, accepted, rejected, stable}` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmdStatus {
    /// Seen in a fast proposal; its timestamp is not yet confirmed.
    FastPending,
    /// Seen in a slow proposal; its timestamp is not yet confirmed.
    SlowPending,
    /// Accepted in a retry phase; the timestamp can no longer be rejected.
    Accepted,
    /// The locally proposed timestamp was rejected (a NACK was sent).
    Rejected,
    /// The final timestamp and predecessor set are known.
    Stable,
}

impl CmdStatus {
    /// Whether this status means the command's timestamp can no longer
    /// change (it is `accepted` or `stable`).
    #[must_use]
    pub fn is_settled(self) -> bool {
        matches!(self, CmdStatus::Accepted | CmdStatus::Stable)
    }
}

/// The tuple `⟨c, T, Pred, status, B, forced⟩` stored in `H_i`.
#[derive(Debug, Clone)]
pub struct CmdInfo {
    /// The command payload.
    pub cmd: Command,
    /// Latest known timestamp of the command.
    pub ts: Timestamp,
    /// Commands that must be executed before this one.
    pub pred: BTreeSet<CommandId>,
    /// Current status.
    pub status: CmdStatus,
    /// Ballot of the leader that produced this information.
    pub ballot: Ballot,
    /// Whether the predecessor set was forced by a recovery whitelist.
    pub forced: bool,
    /// Whether the command has been executed locally (not part of the
    /// paper's tuple; used to bound the conflict index).
    pub executed: bool,
}

/// The history `H_i` plus the per-key conflict index.
#[derive(Debug, Default)]
pub struct History {
    entries: HashMap<CommandId, CmdInfo>,
    /// Per conflict key: non-executed commands ordered by (timestamp, id).
    active: HashMap<u64, BTreeMap<(Timestamp, CommandId), ()>>,
    /// Per conflict key: recently executed commands ordered by (timestamp, id),
    /// trimmed to `executed_retention` entries.
    executed: HashMap<u64, BTreeMap<(Timestamp, CommandId), ()>>,
    /// How many executed commands to retain per key (at least 1).
    executed_retention: usize,
}

impl History {
    /// Creates an empty history that retains `executed_retention` executed
    /// commands per key in the conflict index.
    #[must_use]
    pub fn new(executed_retention: usize) -> Self {
        Self { executed_retention: executed_retention.max(1), ..Default::default() }
    }

    /// Number of commands tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history tracks no command.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the tuple for `id`.
    #[must_use]
    pub fn get(&self, id: CommandId) -> Option<&CmdInfo> {
        self.entries.get(&id)
    }

    /// Whether the history contains `id`.
    #[must_use]
    pub fn contains(&self, id: CommandId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts or replaces the tuple for `cmd` (the paper's `H.UPDATE`).
    ///
    /// The conflict index is kept in sync when the timestamp changes. A
    /// batch unit is indexed under **every** key of its merged footprint, so
    /// range queries see it wherever any of its inner commands could
    /// conflict.
    pub fn update(
        &mut self,
        cmd: &Command,
        ts: Timestamp,
        pred: BTreeSet<CommandId>,
        status: CmdStatus,
        ballot: Ballot,
        forced: bool,
    ) {
        let id = cmd.id();
        let keys = distinct_keys(cmd);
        let executed = match self.entries.get(&id) {
            Some(existing) => {
                if existing.ts != ts {
                    let index =
                        if existing.executed { &mut self.executed } else { &mut self.active };
                    for key in &keys {
                        if let Some(per_key) = index.get_mut(key) {
                            per_key.remove(&(existing.ts, id));
                        }
                    }
                }
                existing.executed
            }
            None => false,
        };
        {
            let index = if executed { &mut self.executed } else { &mut self.active };
            for key in &keys {
                index.entry(*key).or_default().insert((ts, id), ());
            }
        }
        self.entries
            .insert(id, CmdInfo { cmd: cmd.clone(), ts, pred, status, ballot, forced, executed });
    }

    /// Updates only the status of an existing entry.
    pub fn set_status(&mut self, id: CommandId, status: CmdStatus) {
        if let Some(info) = self.entries.get_mut(&id) {
            info.status = status;
        }
    }

    /// Updates only the ballot of an existing entry.
    pub fn set_ballot(&mut self, id: CommandId, ballot: Ballot) {
        if let Some(info) = self.entries.get_mut(&id) {
            info.ballot = ballot;
        }
    }

    /// Removes `removed` from the predecessor set of `id` (used by the
    /// break-loop procedure). Returns `true` if it was present.
    pub fn remove_predecessor(&mut self, id: CommandId, removed: CommandId) -> bool {
        self.entries.get_mut(&id).map(|info| info.pred.remove(&removed)).unwrap_or(false)
    }

    /// Marks `id` as executed locally and moves it from the active part of
    /// the conflict index to the bounded executed part (under every key of
    /// its footprint).
    pub fn mark_executed(&mut self, id: CommandId) {
        let Some(info) = self.entries.get_mut(&id) else { return };
        if info.executed {
            return;
        }
        info.executed = true;
        let ts = info.ts;
        let keys = distinct_keys(&info.cmd);
        for key in keys {
            if let Some(per_key) = self.active.get_mut(&key) {
                per_key.remove(&(ts, id));
            }
            let executed = self.executed.entry(key).or_default();
            executed.insert((ts, id), ());
            while executed.len() > self.executed_retention {
                let oldest = *executed.keys().next().expect("non-empty");
                executed.remove(&oldest);
            }
        }
    }

    /// The paper's `COMPUTEPREDECESSORS(c, Time, Whitelist)` (Figure 3,
    /// lines 1–3), with one practical refinement: conflicting commands that
    /// have already been **executed locally** are represented by the most
    /// recent executed command per key only. Predecessor relations are
    /// transitive (Theorem 1), so delivery order is preserved while
    /// predecessor sets stay bounded by the number of in-flight commands.
    #[must_use]
    pub fn compute_predecessors(
        &self,
        cmd: &Command,
        ts: Timestamp,
        whitelist: Option<&BTreeSet<CommandId>>,
    ) -> BTreeSet<CommandId> {
        let mut pred = BTreeSet::new();
        let id = cmd.id();

        for key in distinct_keys(cmd) {
            if let Some(per_key) = self.active.get(&key) {
                for &(other_ts, other_id) in
                    per_key.range(..(ts, CommandId::default())).map(|(k, ())| k)
                {
                    debug_assert!(other_ts < ts);
                    if other_id == id {
                        continue;
                    }
                    let info = &self.entries[&other_id];
                    if !info.cmd.conflicts_with(cmd) {
                        continue;
                    }
                    let allowed = match whitelist {
                        None => true,
                        Some(list) => {
                            list.contains(&other_id)
                                || matches!(
                                    info.status,
                                    CmdStatus::SlowPending
                                        | CmdStatus::Accepted
                                        | CmdStatus::Stable
                                )
                        }
                    };
                    if allowed {
                        pred.insert(other_id);
                    }
                }
            }

            // Most recent executed conflicting command with a smaller
            // timestamp; it transitively covers all older executed ones on
            // this key.
            if let Some(per_key) = self.executed.get(&key) {
                if let Some(&(_, other_id)) = per_key
                    .range(..(ts, CommandId::default()))
                    .map(|(k, ())| k)
                    .rfind(|(_, other_id)| {
                        *other_id != id && self.entries[other_id].cmd.conflicts_with(cmd)
                    })
                {
                    pred.insert(other_id);
                }
            }
        }

        pred
    }

    /// Commands that *block* `cmd` at timestamp `ts` under the wait condition
    /// (Figure 3, line 5): conflicting commands with a greater timestamp whose
    /// predecessor set does not contain `cmd` and whose status is not yet
    /// `accepted`/`stable`.
    #[must_use]
    pub fn wait_blockers(&self, cmd: &Command, ts: Timestamp) -> Vec<CommandId> {
        self.higher_conflicting(cmd, ts, |info| !info.status.is_settled())
    }

    /// Whether `cmd` at timestamp `ts` must be rejected (Figure 3, lines 6–8):
    /// there exists a conflicting command with a greater timestamp, already
    /// `accepted` or `stable`, whose predecessor set does not contain `cmd`.
    #[must_use]
    pub fn must_reject(&self, cmd: &Command, ts: Timestamp) -> bool {
        !self.higher_conflicting(cmd, ts, |info| info.status.is_settled()).is_empty()
    }

    /// Conflicting commands with timestamp greater than `ts` that do not list
    /// `cmd` among their predecessors and satisfy `filter`.
    fn higher_conflicting(
        &self,
        cmd: &Command,
        ts: Timestamp,
        filter: impl Fn(&CmdInfo) -> bool,
    ) -> Vec<CommandId> {
        let mut out = BTreeSet::new();
        let id = cmd.id();
        let lower_bound = (ts, CommandId::new(consensus_types::NodeId(u32::MAX), u64::MAX));
        for key in distinct_keys(cmd) {
            for index in [&self.active, &self.executed] {
                if let Some(per_key) = index.get(&key) {
                    for &(_, other_id) in per_key.range(lower_bound..).map(|(k, ())| k) {
                        if other_id == id {
                            continue;
                        }
                        let info = &self.entries[&other_id];
                        if info.cmd.conflicts_with(cmd) && !info.pred.contains(&id) && filter(info)
                        {
                            out.insert(other_id);
                        }
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Iterates over all tracked commands (used by tests and recovery).
    pub fn iter(&self) -> impl Iterator<Item = (&CommandId, &CmdInfo)> {
        self.entries.iter()
    }
}

/// The distinct conflict keys of a command's footprint: one for a plain
/// keyed command, the union of inner keys for a batch, empty for a no-op.
fn distinct_keys(cmd: &Command) -> Vec<u64> {
    let mut keys: Vec<u64> = cmd.accesses().map(|(key, _)| key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::NodeId;

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, 0)
    }

    fn ts(counter: u64, node: u32) -> Timestamp {
        Timestamp::new(counter, NodeId(node))
    }

    fn b0() -> Ballot {
        Ballot::initial(NodeId(0))
    }

    #[test]
    fn update_and_get_round_trip() {
        let mut h = History::new(4);
        let c = put(0, 1, 7);
        h.update(&c, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        let info = h.get(c.id()).unwrap();
        assert_eq!(info.ts, ts(1, 0));
        assert_eq!(info.status, CmdStatus::FastPending);
        assert!(!info.forced);
        assert!(h.contains(c.id()));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn predecessors_are_conflicting_commands_with_smaller_timestamps() {
        let mut h = History::new(4);
        let a = put(0, 1, 7);
        let b = put(1, 1, 7);
        let c = put(2, 1, 8); // different key: never a predecessor
        h.update(&a, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        h.update(&b, ts(5, 1), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        h.update(&c, ts(2, 2), BTreeSet::new(), CmdStatus::FastPending, b0(), false);

        let newcmd = put(3, 1, 7);
        let pred = h.compute_predecessors(&newcmd, ts(3, 3), None);
        assert!(pred.contains(&a.id()));
        assert!(!pred.contains(&b.id()), "higher timestamp is not a predecessor");
        assert!(!pred.contains(&c.id()), "different key is not a predecessor");
    }

    #[test]
    fn whitelist_restricts_fast_pending_predecessors() {
        let mut h = History::new(4);
        let a = put(0, 1, 7); // fast-pending, not whitelisted -> excluded
        let b = put(1, 1, 7); // stable -> always included
        h.update(&a, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        h.update(&b, ts(2, 1), BTreeSet::new(), CmdStatus::Stable, b0(), false);

        let newcmd = put(3, 1, 7);
        let whitelist = BTreeSet::new();
        let pred = h.compute_predecessors(&newcmd, ts(5, 3), Some(&whitelist));
        assert!(!pred.contains(&a.id()));
        assert!(pred.contains(&b.id()));

        let mut whitelist = BTreeSet::new();
        whitelist.insert(a.id());
        let pred = h.compute_predecessors(&newcmd, ts(5, 3), Some(&whitelist));
        assert!(pred.contains(&a.id()), "whitelisted fast-pending commands are included");
    }

    #[test]
    fn wait_blockers_require_higher_timestamp_and_missing_pred() {
        let mut h = History::new(4);
        let blocker = put(1, 1, 7);
        h.update(&blocker, ts(10, 1), BTreeSet::new(), CmdStatus::FastPending, b0(), false);

        let c = put(0, 1, 7);
        // blocker has higher ts, does not contain c in pred, is pending -> blocks.
        assert_eq!(h.wait_blockers(&c, ts(5, 0)), vec![blocker.id()]);
        // Not yet settled, so no rejection either.
        assert!(!h.must_reject(&c, ts(5, 0)));

        // Once the blocker is accepted, the wait is over and c must be rejected.
        h.set_status(blocker.id(), CmdStatus::Accepted);
        assert!(h.wait_blockers(&c, ts(5, 0)).is_empty());
        assert!(h.must_reject(&c, ts(5, 0)));
    }

    #[test]
    fn no_rejection_when_command_is_in_predecessor_set() {
        let mut h = History::new(4);
        let c = put(0, 1, 7);
        let other = put(1, 1, 7);
        let mut pred = BTreeSet::new();
        pred.insert(c.id());
        h.update(&other, ts(10, 1), pred, CmdStatus::Stable, b0(), false);
        assert!(h.wait_blockers(&c, ts(5, 0)).is_empty());
        assert!(!h.must_reject(&c, ts(5, 0)));
    }

    #[test]
    fn executed_commands_collapse_to_most_recent_per_key() {
        let mut h = History::new(8);
        let mut last = None;
        for i in 0..5 {
            let c = put(0, i, 7);
            h.update(&c, ts(i + 1, 0), BTreeSet::new(), CmdStatus::Stable, b0(), false);
            h.mark_executed(c.id());
            last = Some(c.id());
        }
        let newcmd = put(1, 99, 7);
        let pred = h.compute_predecessors(&newcmd, ts(100, 1), None);
        assert_eq!(pred.len(), 1);
        assert!(pred.contains(&last.unwrap()));
    }

    #[test]
    fn executed_retention_is_bounded() {
        let mut h = History::new(2);
        for i in 0..10 {
            let c = put(0, i, 7);
            h.update(&c, ts(i + 1, 0), BTreeSet::new(), CmdStatus::Stable, b0(), false);
            h.mark_executed(c.id());
        }
        assert!(h.executed.get(&7).unwrap().len() <= 2);
    }

    #[test]
    fn executed_command_with_higher_timestamp_still_causes_rejection() {
        let mut h = History::new(4);
        let other = put(1, 1, 7);
        h.update(&other, ts(10, 1), BTreeSet::new(), CmdStatus::Stable, b0(), false);
        h.mark_executed(other.id());

        let c = put(0, 1, 7);
        assert!(h.must_reject(&c, ts(5, 0)), "executed conflicting command with higher ts rejects");
    }

    #[test]
    fn timestamp_update_moves_index_entry() {
        let mut h = History::new(4);
        let c = put(0, 1, 7);
        h.update(&c, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        // Retry moved the command to a later timestamp.
        h.update(&c, ts(20, 0), BTreeSet::new(), CmdStatus::Accepted, b0(), false);

        let probe = put(1, 1, 7);
        let pred = h.compute_predecessors(&probe, ts(10, 1), None);
        assert!(pred.is_empty(), "old timestamp must have been removed from the index");
        let pred = h.compute_predecessors(&probe, ts(30, 1), None);
        assert!(pred.contains(&c.id()));
    }

    #[test]
    fn remove_predecessor_reports_presence() {
        let mut h = History::new(4);
        let a = put(0, 1, 7);
        let b = put(1, 1, 7);
        let mut pred = BTreeSet::new();
        pred.insert(b.id());
        h.update(&a, ts(2, 0), pred, CmdStatus::Stable, b0(), false);
        assert!(h.remove_predecessor(a.id(), b.id()));
        assert!(!h.remove_predecessor(a.id(), b.id()));
        assert!(!h.remove_predecessor(b.id(), a.id()));
    }

    #[test]
    fn batch_units_are_indexed_under_every_footprint_key() {
        let mut h = History::new(4);
        let unit = Command::batch(
            CommandId::new(NodeId(0), (1 << 63) | 1),
            vec![put(1, 1, 7), put(1, 2, 9)],
        );
        h.update(&unit, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);

        // A later command on either key sees the batch as a predecessor.
        for key in [7, 9] {
            let probe = put(2, 1, key);
            let pred = h.compute_predecessors(&probe, ts(5, 2), None);
            assert!(pred.contains(&unit.id()), "key {key} missed the batch");
        }
        // An earlier command on either key is blocked by the pending batch,
        // and the batch appears once even though both its keys match.
        let probe = put(3, 1, 9);
        assert_eq!(h.wait_blockers(&probe, ts(0, 3)), vec![unit.id()]);

        // Executing the batch moves it to the executed index for both keys.
        h.mark_executed(unit.id());
        let probe = put(4, 1, 7);
        let pred = h.compute_predecessors(&probe, ts(5, 0), None);
        assert!(pred.contains(&unit.id()));
    }

    #[test]
    fn noop_commands_have_no_predecessors_and_never_block() {
        let mut h = History::new(4);
        let noop = Command::noop(CommandId::new(NodeId(0), 1));
        h.update(&noop, ts(1, 0), BTreeSet::new(), CmdStatus::FastPending, b0(), false);
        let c = put(1, 1, 7);
        assert!(h.compute_predecessors(&c, ts(5, 1), None).is_empty());
        assert!(h.wait_blockers(&noop, ts(0, 0)).is_empty());
    }
}
