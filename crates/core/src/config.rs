//! Configuration of a CAESAR replica.

use consensus_types::{QuorumSpec, SimTime};

/// Tunables for a [`CaesarReplica`](crate::CaesarReplica).
///
/// The defaults follow the paper: fast quorum `⌈3N/4⌉`, classic quorum
/// `⌊N/2⌋+1`, the wait condition enabled, and recovery driven by a
/// per-command takeover timeout.
///
/// # Example
///
/// ```
/// use caesar::CaesarConfig;
///
/// let config = CaesarConfig::new(5)
///     .with_recovery_timeout(Some(2_000_000))
///     .with_wait_condition(true);
/// assert_eq!(config.quorums.fast(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CaesarConfig {
    /// Quorum sizes (classic and fast).
    pub quorums: QuorumSpec,
    /// How long a leader waits for a full fast quorum before settling for a
    /// classic quorum and entering the slow proposal phase (microseconds).
    pub fast_quorum_timeout: SimTime,
    /// If `Some(t)`, an acceptor that has known a non-stable command for `t`
    /// microseconds starts the recovery procedure for it (its failure
    /// detector suspects the command's leader). `None` disables takeovers.
    pub recovery_timeout: Option<SimTime>,
    /// When `false`, the wait condition of Section IV-A is disabled and an
    /// acceptor immediately rejects a command whose timestamp arrives out of
    /// order. Used by the `ablation_wait` benchmark.
    pub wait_condition: bool,
    /// How many locally executed commands per key are kept in the conflict
    /// index (besides the most recent one, which is always kept so that
    /// predecessor sets stay transitively complete).
    pub executed_retention_per_key: usize,
    /// Base CPU cost (microseconds) charged for handling one protocol
    /// message; used by the simulator to model saturation.
    pub message_cost_us: SimTime,
    /// Extra CPU cost per predecessor carried in a STABLE message, modelling
    /// the cost of dependency bookkeeping at delivery time.
    pub per_dependency_cost_ns: u64,
}

impl CaesarConfig {
    /// Configuration for a cluster of `nodes` replicas with paper defaults.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            quorums: QuorumSpec::new(nodes),
            fast_quorum_timeout: 400_000,
            recovery_timeout: Some(2_000_000),
            wait_condition: true,
            executed_retention_per_key: 16,
            message_cost_us: 12,
            per_dependency_cost_ns: 150,
        }
    }

    /// Overrides the quorum specification (used by the quorum ablation).
    #[must_use]
    pub fn with_quorums(mut self, quorums: QuorumSpec) -> Self {
        self.quorums = quorums;
        self
    }

    /// Enables or disables the wait condition (ablation).
    #[must_use]
    pub fn with_wait_condition(mut self, enabled: bool) -> Self {
        self.wait_condition = enabled;
        self
    }

    /// Sets the recovery takeover timeout (`None` disables recovery).
    #[must_use]
    pub fn with_recovery_timeout(mut self, timeout: Option<SimTime>) -> Self {
        self.recovery_timeout = timeout;
        self
    }

    /// Sets the fast-quorum timeout after which a leader settles for a
    /// classic quorum.
    #[must_use]
    pub fn with_fast_quorum_timeout(mut self, timeout: SimTime) -> Self {
        self.fast_quorum_timeout = timeout;
        self
    }

    /// Sets the per-message CPU cost used by the saturation model.
    #[must_use]
    pub fn with_message_cost_us(mut self, cost: SimTime) -> Self {
        self.message_cost_us = cost;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_quorums() {
        let c = CaesarConfig::new(5);
        assert_eq!(c.quorums.nodes(), 5);
        assert_eq!(c.quorums.classic(), 3);
        assert_eq!(c.quorums.fast(), 4);
        assert!(c.wait_condition);
        assert!(c.recovery_timeout.is_some());
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = CaesarConfig::new(5)
            .with_wait_condition(false)
            .with_recovery_timeout(None)
            .with_fast_quorum_timeout(123)
            .with_message_cost_us(99)
            .with_quorums(QuorumSpec::with_fast_quorum(5, 5));
        assert!(!c.wait_condition);
        assert!(c.recovery_timeout.is_none());
        assert_eq!(c.fast_quorum_timeout, 123);
        assert_eq!(c.message_cost_us, 99);
        assert_eq!(c.quorums.fast(), 5);
    }
}
