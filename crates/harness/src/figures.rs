//! One function per figure of the paper's evaluation (except Figure 12,
//! which lives in [`crate::recovery`]).

use consensus_types::NodeId;

use crate::report::Table;
use crate::run::{run_closed_loop, PhaseShares, ProtocolKind, RunConfig, SITE_LABELS};

/// The conflict percentages used throughout the evaluation section.
pub const CONFLICT_LEVELS: [f64; 6] = [0.0, 2.0, 10.0, 30.0, 50.0, 100.0];

/// A generic figure result: a title plus typed rows, convertible to a table.
#[derive(Debug, Clone)]
pub struct FigureSeries<R> {
    /// Figure title (e.g. `"Figure 6 — ..."`).
    pub title: String,
    /// The data rows.
    pub rows: Vec<R>,
}

/// One row of a per-site latency figure (Figures 6, 7 and 8).
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Protocol name.
    pub protocol: String,
    /// X-axis value: conflict percentage (Fig. 6/7) or number of clients (Fig. 8).
    pub x: f64,
    /// Average latency per site in milliseconds (VA, OH, DE, IE, IN).
    pub per_site_ms: Vec<f64>,
}

/// One row of the throughput figure (Figure 9).
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Protocol name.
    pub protocol: String,
    /// Conflict percentage.
    pub conflict_percent: f64,
    /// Whether batching was enabled.
    pub batching: bool,
    /// Total throughput in commands per second.
    pub throughput_cps: f64,
}

/// One row of the slow-path figure (Figure 10).
#[derive(Debug, Clone)]
pub struct SlowPathRow {
    /// Protocol name.
    pub protocol: String,
    /// Conflict percentage.
    pub conflict_percent: f64,
    /// Percentage of commands decided through a slow path.
    pub slow_percent: f64,
}

/// One row of the latency-breakdown figure (Figure 11a).
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Conflict percentage.
    pub conflict_percent: f64,
    /// Share of latency spent in each phase.
    pub shares: PhaseShares,
}

/// One row of the wait-time figure (Figure 11b).
#[derive(Debug, Clone)]
pub struct WaitRow {
    /// Conflict percentage.
    pub conflict_percent: f64,
    /// Average wait-condition time per site, in milliseconds.
    pub per_site_ms: Vec<f64>,
}

/// One row of an ablation study.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The configuration under study (e.g. "wait on", "FQ=4").
    pub variant: String,
    /// Conflict percentage.
    pub conflict_percent: f64,
    /// Average latency across sites in milliseconds.
    pub avg_latency_ms: f64,
    /// Percentage of slow decisions.
    pub slow_percent: f64,
}

impl FigureSeries<LatencyRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self, x_label: &str) -> Table {
        let mut header = vec!["protocol", x_label];
        header.extend(SITE_LABELS);
        let mut table = Table::new(self.title.clone(), &header);
        for row in &self.rows {
            let mut cells = vec![row.protocol.clone(), format!("{:.0}", row.x)];
            cells.extend(row.per_site_ms.iter().map(|v| format!("{v:.1}")));
            table.push_row(cells);
        }
        table
    }
}

impl FigureSeries<ThroughputRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            self.title.clone(),
            &["protocol", "conflict %", "batching", "throughput (cmd/s)"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.protocol.clone(),
                format!("{:.0}", row.conflict_percent),
                if row.batching { "on".into() } else { "off".into() },
                format!("{:.0}", row.throughput_cps),
            ]);
        }
        table
    }
}

impl FigureSeries<SlowPathRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table =
            Table::new(self.title.clone(), &["protocol", "conflict %", "slow decisions %"]);
        for row in &self.rows {
            table.push_row(vec![
                row.protocol.clone(),
                format!("{:.0}", row.conflict_percent),
                format!("{:.1}", row.slow_percent),
            ]);
        }
        table
    }
}

impl FigureSeries<BreakdownRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table =
            Table::new(self.title.clone(), &["conflict %", "propose", "retry", "deliver"]);
        for row in &self.rows {
            table.push_row(vec![
                format!("{:.0}", row.conflict_percent),
                format!("{:.2}", row.shares.propose),
                format!("{:.2}", row.shares.retry),
                format!("{:.2}", row.shares.deliver),
            ]);
        }
        table
    }
}

impl FigureSeries<WaitRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut header = vec!["conflict %"];
        header.extend(SITE_LABELS);
        let mut table = Table::new(self.title.clone(), &header);
        for row in &self.rows {
            let mut cells = vec![format!("{:.0}", row.conflict_percent)];
            cells.extend(row.per_site_ms.iter().map(|v| format!("{v:.2}")));
            table.push_row(cells);
        }
        table
    }
}

impl FigureSeries<AblationRow> {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            self.title.clone(),
            &["variant", "conflict %", "avg latency (ms)", "slow %"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.variant.clone(),
                format!("{:.0}", row.conflict_percent),
                format!("{:.1}", row.avg_latency_ms),
                format!("{:.1}", row.slow_percent),
            ]);
        }
        table
    }
}

/// Scales the default simulated duration so quick runs (tests) and full runs
/// (benches) share the same code path.
fn scaled(config: RunConfig, scale: f64) -> RunConfig {
    let seconds = (config.sim_seconds * scale).max(1.0);
    config.with_sim_seconds(seconds)
}

/// **Figure 6** — average latency per site while varying the percentage of
/// conflicting commands, for CAESAR, EPaxos and M²Paxos (batching disabled).
///
/// `scale` shrinks the simulated duration (1.0 = paper-scale run, smaller
/// values are used by tests); `conflicts` selects the x-axis points.
#[must_use]
pub fn fig6_latency_conflicts(scale: f64, conflicts: &[f64]) -> FigureSeries<LatencyRow> {
    let mut rows = Vec::new();
    for protocol in [ProtocolKind::Caesar, ProtocolKind::Epaxos, ProtocolKind::M2Paxos] {
        for &conflict in conflicts {
            let config = scaled(RunConfig::latency_defaults(protocol, conflict), scale);
            let result = run_closed_loop(&config);
            rows.push(LatencyRow {
                protocol: protocol.name(),
                x: conflict,
                per_site_ms: result.per_site_latency_ms,
            });
        }
    }
    FigureSeries {
        title: "Figure 6 — average latency (ms) per site vs conflict %, batching disabled"
            .to_string(),
        rows,
    }
}

/// **Figure 7** — average latency per site for the conflict-oblivious
/// protocols: Multi-Paxos with the leader in Ireland, Multi-Paxos with the
/// leader in Mumbai, Mencius, and CAESAR at 0 % conflicts for reference.
#[must_use]
pub fn fig7_single_leader(scale: f64) -> FigureSeries<LatencyRow> {
    let mut rows = Vec::new();
    let protocols = [
        ProtocolKind::MultiPaxos(NodeId(3)),
        ProtocolKind::MultiPaxos(NodeId(4)),
        ProtocolKind::Mencius,
        ProtocolKind::Caesar,
    ];
    for protocol in protocols {
        let config = scaled(RunConfig::latency_defaults(protocol, 0.0), scale);
        let result = run_closed_loop(&config);
        rows.push(LatencyRow {
            protocol: protocol.name(),
            x: 0.0,
            per_site_ms: result.per_site_latency_ms,
        });
    }
    FigureSeries {
        title: "Figure 7 — average latency (ms) per site, single-leader and slot-based protocols"
            .to_string(),
        rows,
    }
}

/// **Figure 8** — per-site latency while varying the total number of
/// connected clients (the paper sweeps 5–2000), at 10 % conflicts.
#[must_use]
pub fn fig8_scalability(scale: f64, total_clients: &[usize]) -> FigureSeries<LatencyRow> {
    let mut rows = Vec::new();
    for protocol in [ProtocolKind::Caesar, ProtocolKind::Epaxos, ProtocolKind::M2Paxos] {
        for &clients in total_clients {
            let per_node = (clients / 5).max(1);
            let config = scaled(
                RunConfig::latency_defaults(protocol, 10.0).with_clients_per_node(per_node),
                scale,
            );
            let result = run_closed_loop(&config);
            rows.push(LatencyRow {
                protocol: protocol.name(),
                x: clients as f64,
                per_site_ms: result.per_site_latency_ms,
            });
        }
    }
    FigureSeries {
        title: "Figure 8 — average latency (ms) per site vs total connected clients, 10% conflicts"
            .to_string(),
        rows,
    }
}

/// **Figure 9** — total throughput while varying the conflict percentage,
/// with batching disabled (top of the figure) and enabled (bottom). Mencius
/// is omitted from the batched variant, as in the paper.
#[must_use]
pub fn fig9_throughput(scale: f64, conflicts: &[f64]) -> FigureSeries<ThroughputRow> {
    let mut rows = Vec::new();
    for batching in [false, true] {
        let protocols: Vec<ProtocolKind> = if batching {
            vec![
                ProtocolKind::Caesar,
                ProtocolKind::Epaxos,
                ProtocolKind::M2Paxos,
                ProtocolKind::MultiPaxos(NodeId(3)),
                ProtocolKind::MultiPaxos(NodeId(4)),
            ]
        } else {
            vec![
                ProtocolKind::Caesar,
                ProtocolKind::Epaxos,
                ProtocolKind::M2Paxos,
                ProtocolKind::MultiPaxos(NodeId(3)),
                ProtocolKind::MultiPaxos(NodeId(4)),
                ProtocolKind::Mencius,
            ]
        };
        for protocol in protocols {
            // Single-leader and slot-based protocols are conflict-oblivious;
            // the paper plots them under the 0% cluster only.
            let conflict_points: &[f64] = match protocol {
                ProtocolKind::Mencius | ProtocolKind::MultiPaxos(_) => &[0.0],
                _ => conflicts,
            };
            for &conflict in conflict_points {
                let config = scaled(RunConfig::throughput_defaults(protocol, conflict), scale)
                    .with_batching(batching);
                let result = run_closed_loop(&config);
                rows.push(ThroughputRow {
                    protocol: protocol.name(),
                    conflict_percent: conflict,
                    batching,
                    throughput_cps: result.throughput_cps,
                });
            }
        }
    }
    FigureSeries { title: "Figure 9 — total throughput (cmd/s) vs conflict %".to_string(), rows }
}

/// **Figure 10** — percentage of commands decided through a slow decision
/// while varying the conflict percentage, CAESAR vs EPaxos (batching
/// disabled).
#[must_use]
pub fn fig10_slow_paths(scale: f64, conflicts: &[f64]) -> FigureSeries<SlowPathRow> {
    let mut rows = Vec::new();
    for protocol in [ProtocolKind::Epaxos, ProtocolKind::Caesar] {
        for &conflict in conflicts {
            let config = scaled(RunConfig::throughput_defaults(protocol, conflict), scale)
                .with_clients_per_node(50);
            let result = run_closed_loop(&config);
            rows.push(SlowPathRow {
                protocol: protocol.name(),
                conflict_percent: conflict,
                slow_percent: result.slow_path_percent.unwrap_or(0.0),
            });
        }
    }
    FigureSeries {
        title: "Figure 10 — % of commands delivered using a slow decision vs conflict %"
            .to_string(),
        rows,
    }
}

/// **Figure 11** — CAESAR's internal statistics: (a) the share of latency
/// spent in the proposal, retry and delivery phases, and (b) the average time
/// commands spend blocked on the wait condition, per site.
#[must_use]
pub fn fig11_breakdown(
    scale: f64,
    conflicts: &[f64],
) -> (FigureSeries<BreakdownRow>, FigureSeries<WaitRow>) {
    let mut breakdown_rows = Vec::new();
    let mut wait_rows = Vec::new();
    for &conflict in conflicts {
        let config = scaled(RunConfig::throughput_defaults(ProtocolKind::Caesar, conflict), scale)
            .with_clients_per_node(50);
        let result = run_closed_loop(&config);
        breakdown_rows.push(BreakdownRow {
            conflict_percent: conflict,
            shares: result.phase_shares.unwrap_or_default(),
        });
        wait_rows.push(WaitRow {
            conflict_percent: conflict,
            per_site_ms: result.per_site_wait_ms.unwrap_or_default(),
        });
    }
    (
        FigureSeries {
            title: "Figure 11a — proportion of latency per ordering phase (CAESAR)".to_string(),
            rows: breakdown_rows,
        },
        FigureSeries {
            title: "Figure 11b — average wait-condition time (ms) per site (CAESAR)".to_string(),
            rows: wait_rows,
        },
    )
}

/// **Ablation** — the wait condition of Section IV-A: CAESAR with the wait
/// condition enabled vs a variant that rejects out-of-order timestamps
/// immediately.
#[must_use]
pub fn ablation_wait_condition(scale: f64, conflicts: &[f64]) -> FigureSeries<AblationRow> {
    let mut rows = Vec::new();
    for (variant, protocol) in
        [("wait-on", ProtocolKind::Caesar), ("wait-off", ProtocolKind::CaesarNoWait)]
    {
        for &conflict in conflicts {
            let config = scaled(RunConfig::latency_defaults(protocol, conflict), scale);
            let result = run_closed_loop(&config);
            rows.push(AblationRow {
                variant: variant.to_string(),
                conflict_percent: conflict,
                avg_latency_ms: result.overall_avg_latency_ms(),
                slow_percent: result.slow_path_percent.unwrap_or(0.0),
            });
        }
    }
    FigureSeries { title: "Ablation — CAESAR wait condition on vs off".to_string(), rows }
}

/// **Ablation** — fast-quorum size: the paper's `⌈3N/4⌉ = 4` versus the
/// maximum `N = 5` (every node must answer) at several conflict levels.
#[must_use]
pub fn ablation_fast_quorum_size(scale: f64, conflicts: &[f64]) -> FigureSeries<AblationRow> {
    let mut rows = Vec::new();
    for fq in [4usize, 5usize] {
        for &conflict in conflicts {
            let config = scaled(RunConfig::latency_defaults(ProtocolKind::Caesar, conflict), scale)
                .with_caesar_fast_quorum(fq);
            let result = run_closed_loop(&config);
            rows.push(AblationRow {
                variant: format!("FQ={fq}"),
                conflict_percent: conflict,
                avg_latency_ms: result.overall_avg_latency_ms(),
                slow_percent: result.slow_path_percent.unwrap_or(0.0),
            });
        }
    }
    FigureSeries { title: "Ablation — CAESAR fast-quorum size".to_string(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_produces_rows_for_each_protocol_and_conflict_level() {
        let series = fig6_latency_conflicts(0.15, &[0.0, 30.0]);
        assert_eq!(series.rows.len(), 6);
        let table = series.to_table("conflict %");
        assert!(table.render().contains("Caesar"));
        assert!(table.render().contains("M2Paxos"));
    }

    #[test]
    fn fig7_includes_both_multipaxos_deployments() {
        let series = fig7_single_leader(0.15);
        let names: Vec<&str> = series.rows.iter().map(|r| r.protocol.as_str()).collect();
        assert!(names.contains(&"Multi-Paxos-IE"));
        assert!(names.contains(&"Multi-Paxos-IN"));
        assert!(names.contains(&"Mencius"));
        assert!(names.contains(&"Caesar"));
    }

    #[test]
    fn fig10_slow_paths_grow_with_conflicts_for_epaxos() {
        let series = fig10_slow_paths(0.1, &[0.0, 30.0]);
        let epaxos: Vec<&SlowPathRow> =
            series.rows.iter().filter(|r| r.protocol == "EPaxos").collect();
        assert_eq!(epaxos.len(), 2);
        assert!(epaxos[1].slow_percent >= epaxos[0].slow_percent);
        // CAESAR takes fewer slow decisions than EPaxos at 30% conflicts.
        let caesar_30 = series
            .rows
            .iter()
            .find(|r| r.protocol == "Caesar" && r.conflict_percent == 30.0)
            .unwrap();
        let epaxos_30 = epaxos[1];
        assert!(
            caesar_30.slow_percent <= epaxos_30.slow_percent,
            "CAESAR ({:.1}%) must take no more slow decisions than EPaxos ({:.1}%)",
            caesar_30.slow_percent,
            epaxos_30.slow_percent
        );
    }

    #[test]
    fn fig11_breakdown_shares_sum_to_one() {
        let (breakdown, wait) = fig11_breakdown(0.1, &[2.0, 30.0]);
        for row in &breakdown.rows {
            let sum = row.shares.propose + row.shares.retry + row.shares.deliver;
            assert!((sum - 1.0).abs() < 1e-6, "shares must sum to 1, got {sum}");
        }
        assert_eq!(wait.rows.len(), 2);
        assert_eq!(wait.rows[0].per_site_ms.len(), 5);
    }

    #[test]
    fn ablation_tables_render() {
        let wait = ablation_wait_condition(0.1, &[10.0]);
        assert_eq!(wait.rows.len(), 2);
        assert!(wait.to_table().render().contains("wait-on"));
        let quorum = ablation_fast_quorum_size(0.1, &[10.0]);
        assert_eq!(quorum.rows.len(), 2);
        assert!(quorum.to_table().render().contains("FQ=4"));
    }
}
