//! Experiment harness regenerating every figure of the CAESAR evaluation.
//!
//! The paper's evaluation (Section VI) consists of Figures 6–12. For each of
//! them this crate provides a function that runs the corresponding experiment
//! on the simulated five-site EC2 deployment and returns the same series the
//! figure plots; the `bench` crate and the runnable examples print them as
//! text tables.
//!
//! | Figure | Function | What it reports |
//! |---|---|---|
//! | Fig. 6 | [`fig6_latency_conflicts`] | per-site latency vs conflict % for CAESAR, EPaxos, M²Paxos |
//! | Fig. 7 | [`fig7_single_leader`] | per-site latency for Multi-Paxos (IR/IN leader), Mencius, CAESAR |
//! | Fig. 8 | [`fig8_scalability`] | per-site latency vs number of connected clients |
//! | Fig. 9 | [`fig9_throughput`] | total throughput vs conflict %, with and without batching |
//! | Fig. 10 | [`fig10_slow_paths`] | % of slow decisions vs conflict % (CAESAR vs EPaxos) |
//! | Fig. 11 | [`fig11_breakdown`] | CAESAR latency breakdown and wait-condition time |
//! | Fig. 12 | [`fig12_recovery`] | throughput timeline when one node crashes |
//! | ablations | [`ablation_wait_condition`], [`ablation_fast_quorum_size`] | design-choice studies |
//!
//! # Example
//!
//! ```
//! use harness::{ProtocolKind, RunConfig};
//!
//! let config = RunConfig::latency_defaults(ProtocolKind::Caesar, 10.0).with_sim_seconds(2.0);
//! let result = harness::run_closed_loop(&config);
//! assert!(result.total_completed > 0);
//! assert!(result.overall_avg_latency_ms() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod figures;
mod recovery;
mod report;
mod run;

pub use figures::{
    ablation_fast_quorum_size, ablation_wait_condition, fig10_slow_paths, fig11_breakdown,
    fig6_latency_conflicts, fig7_single_leader, fig8_scalability, fig9_throughput, AblationRow,
    BreakdownRow, FigureSeries, LatencyRow, SlowPathRow, ThroughputRow, WaitRow, CONFLICT_LEVELS,
};
pub use recovery::{fig12_recovery, RecoveryTimeline};
pub use report::{format_table, Table};
pub use run::{
    run_closed_loop, site_name, PhaseShares, ProtocolKind, RunConfig, RunResult, SITE_LABELS,
};
