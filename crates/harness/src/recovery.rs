//! Figure 12 — throughput timeline across a replica crash.

use caesar::{CaesarConfig, CaesarReplica};
use consensus_types::{NodeId, SimTime, MICROS_PER_SEC};
use epaxos::{EpaxosConfig, EpaxosReplica};
use simnet::{LatencyMatrix, Process, SimConfig, SimSession, Simulator};
use workload::{ClosedLoopDriver, WorkloadConfig, WorkloadGenerator};

use crate::report::Table;
use crate::run::ProtocolKind;

/// The per-second throughput timeline of a crash experiment.
#[derive(Debug, Clone)]
pub struct RecoveryTimeline {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Second at which the crash was injected.
    pub crash_at_s: u64,
    /// Completed commands in each one-second window.
    pub per_second: Vec<u64>,
}

impl RecoveryTimeline {
    /// Average throughput before the crash (commands per second).
    #[must_use]
    pub fn before_crash_avg(&self) -> f64 {
        let n = self.crash_at_s.min(self.per_second.len() as u64) as usize;
        if n == 0 {
            return 0.0;
        }
        self.per_second[..n].iter().sum::<u64>() as f64 / n as f64
    }

    /// Average throughput over the last two seconds of the run.
    #[must_use]
    pub fn tail_avg(&self) -> f64 {
        let len = self.per_second.len();
        if len < 2 {
            return self.per_second.iter().sum::<u64>() as f64 / len.max(1) as f64;
        }
        self.per_second[len - 2..].iter().sum::<u64>() as f64 / 2.0
    }

    /// Renders both protocols' timelines side by side.
    #[must_use]
    pub fn to_table(timelines: &[RecoveryTimeline]) -> Table {
        let mut header = vec!["second".to_string()];
        header.extend(timelines.iter().map(|t| t.protocol.name()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let seconds = timelines.iter().map(|t| t.per_second.len()).max().unwrap_or(0);
        let mut table =
            Table::new("Figure 12 — throughput (cmd/s) timeline, one node crashes", &header_refs);
        for s in 0..seconds {
            let mut cells = vec![s.to_string()];
            for t in timelines {
                cells.push(t.per_second.get(s).copied().unwrap_or(0).to_string());
            }
            table.push_row(cells);
        }
        table
    }
}

/// Runs the Figure 12 experiment: closed-loop clients on every node, one node
/// (Virginia) crashes at `crash_at_s` seconds, and the experiment runs for
/// `total_seconds`. Returns one timeline per protocol (CAESAR and EPaxos,
/// as in the paper).
#[must_use]
pub fn fig12_recovery(
    clients_per_node: usize,
    crash_at_s: u64,
    total_seconds: u64,
    seed: u64,
) -> Vec<RecoveryTimeline> {
    let caesar_config = CaesarConfig::new(5).with_recovery_timeout(Some(1_500_000));
    let caesar = run_crash_experiment(
        ProtocolKind::Caesar,
        move |id| CaesarReplica::new(id, caesar_config.clone()),
        clients_per_node,
        crash_at_s,
        total_seconds,
        seed,
    );
    let epaxos_config = EpaxosConfig::new(5).with_recovery_timeout(Some(1_500_000));
    let epaxos = run_crash_experiment(
        ProtocolKind::Epaxos,
        move |id| EpaxosReplica::new(id, epaxos_config.clone()),
        clients_per_node,
        crash_at_s,
        total_seconds,
        seed,
    );
    vec![caesar, epaxos]
}

fn run_crash_experiment<P, F>(
    protocol: ProtocolKind,
    make: F,
    clients_per_node: usize,
    crash_at_s: u64,
    total_seconds: u64,
    seed: u64,
) -> RecoveryTimeline
where
    P: Process + Send + 'static,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
{
    let duration: SimTime = total_seconds * MICROS_PER_SEC;
    let sim_config = SimConfig::new(LatencyMatrix::ec2_five_sites())
        .with_seed(seed)
        .with_jitter_us(2_000)
        .with_horizon(duration + 2 * MICROS_PER_SEC);
    let mut sim = Simulator::new(sim_config, make);
    sim.schedule_crash(crash_at_s * MICROS_PER_SEC, NodeId(0));
    let session = SimSession::new(sim);

    let workload = WorkloadConfig::new(5).with_conflict_percent(10.0);
    let generator = WorkloadGenerator::new(workload, seed ^ 0x000F_1612);
    let mut driver = ClosedLoopDriver::new(generator, clients_per_node);
    driver.start(&session);
    driver.pump_until(&session, duration);

    // Bucket replies (received at their submitting replica) into one-second
    // windows.
    let mut per_second = vec![0u64; total_seconds as usize];
    for reply in driver.replies() {
        let bucket = (reply.decision.executed_at / MICROS_PER_SEC) as usize;
        if bucket < per_second.len() {
            per_second[bucket] += 1;
        }
    }
    RecoveryTimeline { protocol, crash_at_s, per_second }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_dips_at_the_crash_and_recovers() {
        let timelines = fig12_recovery(20, 4, 10, 7);
        assert_eq!(timelines.len(), 2);
        for t in &timelines {
            let before = t.before_crash_avg();
            let tail = t.tail_avg();
            assert!(before > 0.0, "{:?} had no throughput before the crash", t.protocol);
            assert!(tail > 0.0, "{:?} did not recover after the crash", t.protocol);
            // Losing one of five sites' clients drops steady-state throughput,
            // but the system keeps making progress (no unavailability).
            assert!(
                tail > before * 0.4,
                "{:?} tail throughput {tail} too low vs {before}",
                t.protocol
            );
        }
        let table = RecoveryTimeline::to_table(&timelines);
        assert!(table.render().contains("Figure 12"));
    }

    #[test]
    fn timeline_statistics_handle_short_runs() {
        let t =
            RecoveryTimeline { protocol: ProtocolKind::Caesar, crash_at_s: 0, per_second: vec![5] };
        assert_eq!(t.before_crash_avg(), 0.0);
        assert!(t.tail_avg() > 0.0);
    }
}
