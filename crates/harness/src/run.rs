//! The generic experiment runner: one protocol, one workload, one simulated
//! five-site cluster.

use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::Reply;
use consensus_types::{NodeId, SimTime, MICROS_PER_SEC};
use epaxos::{EpaxosConfig, EpaxosReplica};
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use simnet::{GeoSite, LatencyMatrix, Process, SimConfig, SimSession, Simulator};
use workload::{ClosedLoopDriver, WorkloadConfig, WorkloadGenerator};

/// Short labels for the five sites, in node-id order (matches the paper's
/// figures: Virginia, Ohio, Frankfurt, Ireland, Mumbai).
pub const SITE_LABELS: [&str; 5] = ["VA", "OH", "DE", "IE", "IN"];

/// The consensus protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// CAESAR (this paper).
    Caesar,
    /// CAESAR with the wait condition disabled (ablation).
    CaesarNoWait,
    /// EPaxos (Moraru et al.).
    Epaxos,
    /// M²Paxos (Peluso et al.).
    M2Paxos,
    /// Mencius (Mao et al.).
    Mencius,
    /// Multi-Paxos with the leader on the given node.
    MultiPaxos(NodeId),
}

impl ProtocolKind {
    /// Human-readable name used in tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            ProtocolKind::Caesar => "Caesar".to_string(),
            ProtocolKind::CaesarNoWait => "Caesar-NoWait".to_string(),
            ProtocolKind::Epaxos => "EPaxos".to_string(),
            ProtocolKind::M2Paxos => "M2Paxos".to_string(),
            ProtocolKind::Mencius => "Mencius".to_string(),
            ProtocolKind::MultiPaxos(leader) => {
                let label = SITE_LABELS.get(leader.index()).copied().unwrap_or("?");
                format!("Multi-Paxos-{label}")
            }
        }
    }
}

/// Parameters of a single experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// Conflict percentage of the workload (0–100).
    pub conflict_percent: f64,
    /// Closed-loop clients co-located with each replica.
    pub clients_per_node: usize,
    /// Simulated duration in seconds.
    pub sim_seconds: f64,
    /// Number of replicas (5 in the paper's deployment).
    pub nodes: usize,
    /// Whether network batching is enabled (Figure 9, bottom): modelled as an
    /// 8× reduction of the per-message CPU cost, since batched messages
    /// amortise their handling across the batch.
    pub batching: bool,
    /// Fast-quorum size override for CAESAR (quorum-size ablation).
    pub caesar_fast_quorum: Option<usize>,
    /// RNG seed (workload and network jitter).
    pub seed: u64,
    /// Network jitter bound in microseconds.
    pub jitter_us: SimTime,
}

impl RunConfig {
    /// Defaults matching the paper's latency experiments: 5 sites, 10
    /// closed-loop clients per site, batching disabled, 10 simulated seconds.
    #[must_use]
    pub fn latency_defaults(protocol: ProtocolKind, conflict_percent: f64) -> Self {
        Self {
            protocol,
            conflict_percent,
            clients_per_node: 10,
            sim_seconds: 10.0,
            nodes: 5,
            batching: false,
            caesar_fast_quorum: None,
            seed: 0xCAE5A7,
            jitter_us: 2_000,
        }
    }

    /// Defaults for the throughput experiments: a heavier closed-loop load.
    #[must_use]
    pub fn throughput_defaults(protocol: ProtocolKind, conflict_percent: f64) -> Self {
        Self {
            clients_per_node: 200,
            sim_seconds: 5.0,
            ..Self::latency_defaults(protocol, conflict_percent)
        }
    }

    /// Overrides the number of clients per node.
    #[must_use]
    pub fn with_clients_per_node(mut self, clients: usize) -> Self {
        self.clients_per_node = clients;
        self
    }

    /// Overrides the simulated duration.
    #[must_use]
    pub fn with_sim_seconds(mut self, seconds: f64) -> Self {
        self.sim_seconds = seconds;
        self
    }

    /// Enables or disables batching.
    #[must_use]
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides CAESAR's fast-quorum size (ablation).
    #[must_use]
    pub fn with_caesar_fast_quorum(mut self, fq: usize) -> Self {
        self.caesar_fast_quorum = Some(fq);
        self
    }

    fn duration_us(&self) -> SimTime {
        (self.sim_seconds * MICROS_PER_SEC as f64) as SimTime
    }
}

/// Per-phase latency fractions for Figure 11a.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseShares {
    /// Fraction of leader-observed latency spent in proposal phases.
    pub propose: f64,
    /// Fraction spent in the retry phase.
    pub retry: f64,
    /// Fraction spent waiting for predecessors after stability.
    pub deliver: f64,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The protocol that produced this result.
    pub protocol: ProtocolKind,
    /// Conflict percentage of the workload.
    pub conflict_percent: f64,
    /// Average client latency per site, in milliseconds (indexed by node id).
    pub per_site_latency_ms: Vec<f64>,
    /// Commands completed per site (at their origin replica).
    pub per_site_completed: Vec<u64>,
    /// Total commands completed across all sites.
    pub total_completed: u64,
    /// Total throughput in commands per second.
    pub throughput_cps: f64,
    /// Percentage of led commands decided on a slow path (CAESAR and EPaxos
    /// report this; other protocols return `None`).
    pub slow_path_percent: Option<f64>,
    /// CAESAR's per-phase latency shares (Figure 11a).
    pub phase_shares: Option<PhaseShares>,
    /// CAESAR's average wait-condition time per site in milliseconds
    /// (Figure 11b).
    pub per_site_wait_ms: Option<Vec<f64>>,
    /// Simulated duration in seconds.
    pub sim_seconds: f64,
}

impl RunResult {
    /// Average latency across all sites (weighted by completions).
    #[must_use]
    pub fn overall_avg_latency_ms(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0u64;
        for (lat, n) in self.per_site_latency_ms.iter().zip(&self.per_site_completed) {
            total += lat * *n as f64;
            count += n;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Runs a closed-loop experiment for the configured protocol and returns the
/// aggregated result.
#[must_use]
pub fn run_closed_loop(config: &RunConfig) -> RunResult {
    match config.protocol {
        ProtocolKind::Caesar | ProtocolKind::CaesarNoWait => run_caesar(config),
        ProtocolKind::Epaxos => run_epaxos(config),
        ProtocolKind::M2Paxos => {
            let c = M2PaxosConfig::new(config.nodes);
            let c = M2PaxosConfig {
                message_cost_us: scale_cost(c.message_cost_us, config.batching),
                ..c
            };
            run_generic(
                config,
                move |id| M2PaxosReplica::new(id, c.clone()),
                |_| (None, None, None),
            )
        }
        ProtocolKind::Mencius => {
            let c = MenciusConfig::new(config.nodes);
            let c = MenciusConfig {
                message_cost_us: scale_cost(c.message_cost_us, config.batching),
                ..c
            };
            run_generic(
                config,
                move |id| MenciusReplica::new(id, c.clone()),
                |_| (None, None, None),
            )
        }
        ProtocolKind::MultiPaxos(leader) => {
            let c = MultiPaxosConfig::new(config.nodes, leader);
            let c = MultiPaxosConfig {
                message_cost_us: scale_cost(c.message_cost_us, config.batching),
                ..c
            };
            run_generic(
                config,
                move |id| MultiPaxosReplica::new(id, c.clone()),
                |_| (None, None, None),
            )
        }
    }
}

fn scale_cost(cost: SimTime, batching: bool) -> SimTime {
    if batching {
        (cost / 8).max(1)
    } else {
        cost
    }
}

fn run_caesar(config: &RunConfig) -> RunResult {
    let mut caesar_config = CaesarConfig::new(config.nodes);
    caesar_config.message_cost_us = scale_cost(caesar_config.message_cost_us, config.batching);
    if matches!(config.protocol, ProtocolKind::CaesarNoWait) {
        caesar_config.wait_condition = false;
    }
    if let Some(fq) = config.caesar_fast_quorum {
        caesar_config.quorums = consensus_types::QuorumSpec::with_fast_quorum(config.nodes, fq);
    }
    run_generic(
        config,
        move |id| CaesarReplica::new(id, caesar_config.clone()),
        |sim| {
            let mut fast = 0u64;
            let mut total = 0u64;
            let mut propose = 0u64;
            let mut retry = 0u64;
            let mut deliver = 0u64;
            let mut wait_ms = Vec::new();
            for node in NodeId::all(sim.node_count()) {
                // Read the telemetry registry — the same named counters a
                // live `StatsRequest` scrape of a `net` replica returns, so
                // offline and wire-scraped numbers can never disagree.
                let snap = sim
                    .process(node)
                    .telemetry()
                    .expect("CAESAR exposes a telemetry registry")
                    .snapshot();
                fast += snap.counter("decisions.fast");
                total += snap.counter("decisions.fast")
                    + snap.counter("caesar.decisions.slow_retry")
                    + snap.counter("caesar.decisions.slow_proposal")
                    + snap.counter("caesar.decisions.recovered");
                propose += snap.counter("caesar.propose_time_us");
                retry += snap.counter("caesar.retry_time_us");
                deliver += snap.counter("caesar.deliver_time_us");
                let events = snap.counter("caesar.wait_events");
                let wait_us = snap.counter("caesar.wait_time_us");
                wait_ms.push(if events == 0 {
                    0.0
                } else {
                    wait_us as f64 / events as f64 / 1_000.0
                });
            }
            let slow_pct =
                if total == 0 { None } else { Some(100.0 * (total - fast) as f64 / total as f64) };
            let sum = (propose + retry + deliver).max(1) as f64;
            let shares = PhaseShares {
                propose: propose as f64 / sum,
                retry: retry as f64 / sum,
                deliver: deliver as f64 / sum,
            };
            (slow_pct, Some(shares), Some(wait_ms))
        },
    )
}

fn run_epaxos(config: &RunConfig) -> RunResult {
    let mut epaxos_config = EpaxosConfig::new(config.nodes);
    epaxos_config.message_cost_us = scale_cost(epaxos_config.message_cost_us, config.batching);
    run_generic(
        config,
        move |id| EpaxosReplica::new(id, epaxos_config.clone()),
        |sim| {
            let mut fast = 0u64;
            let mut slow = 0u64;
            for node in NodeId::all(sim.node_count()) {
                let snap = sim
                    .process(node)
                    .telemetry()
                    .expect("EPaxos exposes a telemetry registry")
                    .snapshot();
                fast += snap.counter("decisions.fast");
                slow += snap.counter("decisions.slow");
            }
            let total = fast + slow;
            let slow_pct = if total == 0 { None } else { Some(100.0 * slow as f64 / total as f64) };
            (slow_pct, None, None)
        },
    )
}

type ProtocolStats = (Option<f64>, Option<PhaseShares>, Option<Vec<f64>>);

fn run_generic<P, F, S>(config: &RunConfig, make: F, stats: S) -> RunResult
where
    P: Process + Send + 'static,
    P::Message: Send,
    F: FnMut(NodeId) -> P,
    S: FnOnce(&Simulator<P>) -> ProtocolStats,
{
    let latency = if config.nodes == 5 {
        LatencyMatrix::ec2_five_sites()
    } else {
        LatencyMatrix::uniform(config.nodes, 80.0)
    };
    let sim_config = SimConfig::new(latency)
        .with_jitter_us(config.jitter_us)
        .with_seed(config.seed)
        .with_horizon(config.duration_us() + 10 * MICROS_PER_SEC);
    let session = SimSession::new(Simulator::new(sim_config, make));

    let workload = WorkloadConfig::new(config.nodes).with_conflict_percent(config.conflict_percent);
    let generator = WorkloadGenerator::new(workload, config.seed ^ 0x57A7);
    let mut driver = ClosedLoopDriver::new(generator, config.clients_per_node);
    driver.start(&session);
    driver.pump_until(&session, config.duration_us());

    let (slow_path_percent, phase_shares, per_site_wait_ms) = session.with_sim(|sim| stats(sim));
    summarize(config, &driver.into_replies(), slow_path_percent, phase_shares, per_site_wait_ms)
}

fn summarize(
    config: &RunConfig,
    replies: &[Reply],
    slow_path_percent: Option<f64>,
    phase_shares: Option<PhaseShares>,
    per_site_wait_ms: Option<Vec<f64>>,
) -> RunResult {
    let mut latency_sum = vec![0.0f64; config.nodes];
    let mut completed = vec![0u64; config.nodes];
    for reply in replies {
        // Client latency is the submit→reply time at the submitting replica.
        let d = &reply.decision;
        if d.proposed_at < d.executed_at {
            latency_sum[reply.node.index()] += d.latency() as f64 / 1_000.0;
            completed[reply.node.index()] += 1;
        }
    }
    let per_site_latency_ms: Vec<f64> = latency_sum
        .iter()
        .zip(&completed)
        .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
        .collect();
    let total_completed: u64 = completed.iter().sum();
    RunResult {
        protocol: config.protocol,
        conflict_percent: config.conflict_percent,
        per_site_latency_ms,
        per_site_completed: completed,
        total_completed,
        throughput_cps: total_completed as f64 / config.sim_seconds,
        slow_path_percent,
        phase_shares,
        per_site_wait_ms,
        sim_seconds: config.sim_seconds,
    }
}

/// Mapping from node ids to the paper's site names, for documentation and
/// report headers.
#[must_use]
pub fn site_name(node: NodeId) -> &'static str {
    GeoSite::ALL.iter().find(|s| s.node() == node).map(|s| s.label()).unwrap_or("??")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(protocol: ProtocolKind, conflict: f64) -> RunResult {
        let config = RunConfig::latency_defaults(protocol, conflict)
            .with_sim_seconds(2.0)
            .with_clients_per_node(4);
        run_closed_loop(&config)
    }

    #[test]
    fn caesar_run_produces_latencies_for_every_site() {
        let r = quick(ProtocolKind::Caesar, 10.0);
        assert_eq!(r.per_site_latency_ms.len(), 5);
        assert!(r.total_completed > 50);
        for (i, lat) in r.per_site_latency_ms.iter().enumerate() {
            assert!(*lat > 10.0, "site {i} latency {lat} too small");
            assert!(*lat < 1_000.0, "site {i} latency {lat} too large");
        }
        assert!(r.slow_path_percent.is_some());
        assert!(r.phase_shares.is_some());
    }

    #[test]
    fn epaxos_reports_slow_path_percentage() {
        let r = quick(ProtocolKind::Epaxos, 30.0);
        let slow = r.slow_path_percent.expect("EPaxos reports slow paths");
        assert!(slow > 0.0, "30% conflicts must cause some slow paths");
    }

    #[test]
    fn multipaxos_latency_depends_on_leader_position() {
        let ireland = quick(ProtocolKind::MultiPaxos(NodeId(3)), 0.0);
        let mumbai = quick(ProtocolKind::MultiPaxos(NodeId(4)), 0.0);
        assert!(
            mumbai.overall_avg_latency_ms() > ireland.overall_avg_latency_ms(),
            "Mumbai leader must be slower ({} vs {})",
            mumbai.overall_avg_latency_ms(),
            ireland.overall_avg_latency_ms()
        );
    }

    #[test]
    fn caesar_stays_flat_while_competitors_degrade() {
        let caesar_low = quick(ProtocolKind::Caesar, 2.0).overall_avg_latency_ms();
        let caesar_high = quick(ProtocolKind::Caesar, 30.0).overall_avg_latency_ms();
        let epaxos_low = quick(ProtocolKind::Epaxos, 2.0).overall_avg_latency_ms();
        let epaxos_high = quick(ProtocolKind::Epaxos, 30.0).overall_avg_latency_ms();
        let caesar_degradation = caesar_high / caesar_low;
        let epaxos_degradation = epaxos_high / epaxos_low;
        assert!(
            caesar_degradation < epaxos_degradation * 1.1,
            "CAESAR ({caesar_degradation:.2}x) should degrade no more than EPaxos ({epaxos_degradation:.2}x)"
        );
    }

    #[test]
    fn throughput_is_positive_for_all_protocols() {
        for p in [
            ProtocolKind::Caesar,
            ProtocolKind::Epaxos,
            ProtocolKind::M2Paxos,
            ProtocolKind::Mencius,
            ProtocolKind::MultiPaxos(NodeId(3)),
        ] {
            let r = quick(p, 10.0);
            assert!(r.throughput_cps > 0.0, "{} has zero throughput", p.name());
        }
    }
}
