//! Plain-text table rendering for experiment results.

/// A simple column-aligned table, used by the benches and examples to print
/// each figure's data the way the paper reports it.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are free-form strings).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned text block.
    #[must_use]
    pub fn render(&self) -> String {
        format_table(&self.title, &self.header, &self.rows)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a title, header and rows as an aligned text table.
#[must_use]
pub fn format_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let columns = header.len().max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; columns];
    for (i, h) in header.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Figure X", &["site", "latency"]);
        t.push_row(vec!["VA".into(), "90.1".into()]);
        t.push_row(vec!["Mumbai".into(), "210.4".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("site"));
        assert!(rendered.contains("Mumbai"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All data lines have the same width.
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["a", "b"]);
        assert!(t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains('a'));
    }
}
