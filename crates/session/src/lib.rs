//! Runtime-agnostic client session layer for the CAESAR reproduction.
//!
//! Every figure of the paper measures *client-perceived* behaviour: a client
//! submits a command at its local replica and waits for it to execute there.
//! This crate defines that submit/await contract once, so the same client
//! code runs against the discrete-event simulator (`simnet::SimSession`),
//! the threaded in-process runtime (`cluster::Cluster`) and the TCP runtime
//! (`net::NetCluster`, including fully external processes speaking the wire
//! protocol):
//!
//! * [`session::ClusterHandle`] — implemented by every runtime; hands out
//!   per-replica [`session::ClientHandle`]s.
//! * [`session::ClientHandle::submit`] — submits an [`session::Op`] and
//!   returns a [`session::Ticket`].
//! * [`session::Ticket::wait`] — blocks (or, for the simulator, advances
//!   simulated time) until the command executes at the submitting replica
//!   and returns the [`session::Reply`], which carries the key-value store
//!   result so reads observe the submitting replica's state
//!   (read-your-writes).
//!
//! Completions are routed by [`consensus_types::CommandId`] through a waiter
//! table with bounded in-flight backpressure; replicas that disconnect fail
//! their outstanding tickets with [`session::SessionError::Disconnected`]
//! instead of leaving waiters hanging.
//!
//! The *application* side of the contract lives in [`state_machine`]: every
//! runtime owns one [`state_machine::StateMachine`] per replica (built by a
//! [`state_machine::StateMachineFactory`], defaulting to the `kvstore`
//! reference implementation) and the output of each apply is what a
//! [`session::Reply`] carries. State machines snapshot and restore
//! themselves, which is what snapshot-based state transfer for restarted
//! replicas is built on.
//!
//! Two throughput-path modules sit beside the session contract (see
//! `docs/THROUGHPUT.md`): [`batch`] folds concurrently queued client
//! commands into one consensus instance, and [`exec`] applies decided
//! commands on a pool of conflict-key shards so non-conflicting commands
//! execute in parallel.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod exec;
pub mod session;
pub mod state_machine;

pub use batch::{BatchConfig, Batcher};
pub use exec::{shard_of_key, Executor};
pub use session::{
    ClientHandle, ClusterHandle, Drive, Op, ParkDrive, Reply, SessionCore, SessionError,
    SubmitTransport, Ticket, Waiter, DEFAULT_IN_FLIGHT,
};
pub use state_machine::{EventLog, RestoreError, StateMachine, StateMachineFactory};
