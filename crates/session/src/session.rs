//! The session layer: waiter table, tickets, and the [`ClusterHandle`] /
//! [`ClientHandle`] API every runtime implements.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use consensus_types::{Command, CommandId, Decision, NodeId, Operation};

/// Default bound on commands a session keeps in flight before `submit`
/// pushes back with [`SessionError::Backpressure`].
pub const DEFAULT_IN_FLIGHT: usize = 4096;

/// Default timeout applied by [`Ticket::wait`].
pub const DEFAULT_WAIT: Duration = Duration::from_secs(60);

/// Longest single park inside [`Ticket::wait`], so a ticket re-checks its
/// deadline even if the runtime never notifies it.
const MAX_PARK: Duration = Duration::from_millis(50);

/// Why a submitted command did not (or will never) produce a [`Reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// The wait deadline elapsed before the command executed at the
    /// submitting replica. The command may still commit later.
    Timeout,
    /// The session already has its configured maximum of commands in flight;
    /// wait on an outstanding ticket before submitting more.
    Backpressure {
        /// Number of commands currently in flight.
        in_flight: usize,
    },
    /// The replica (or the link to it) went away before the command's
    /// execution was observed.
    Disconnected(String),
    /// The submission itself was refused (duplicate command id, serialization
    /// failure, …).
    Rejected(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Timeout => write!(f, "timed out waiting for the reply"),
            SessionError::Backpressure { in_flight } => {
                write!(f, "session backpressure: {in_flight} commands already in flight")
            }
            SessionError::Disconnected(reason) => write!(f, "replica disconnected: {reason}"),
            SessionError::Rejected(reason) => write!(f, "submission rejected: {reason}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A client operation, before the session assigns it a [`CommandId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// What the command does to the key-value store.
    pub operation: Operation,
    /// The key it touches (`None` conflicts with nothing).
    pub key: Option<u64>,
    /// The value written by a `Put`.
    pub value: u64,
}

impl Op {
    /// An update of `key` to `value` (the paper's benchmark operation).
    #[must_use]
    pub fn put(key: u64, value: u64) -> Self {
        Self { operation: Operation::Put, key: Some(key), value }
    }

    /// A read of `key`; the reply carries the value observed at the
    /// submitting replica.
    #[must_use]
    pub fn get(key: u64) -> Self {
        Self { operation: Operation::Get, key: Some(key), value: 0 }
    }

    /// A command that conflicts with nothing.
    #[must_use]
    pub fn noop() -> Self {
        Self { operation: Operation::Noop, key: None, value: 0 }
    }

    /// Materializes the operation as a [`Command`] with the given id.
    #[must_use]
    pub fn command(self, id: CommandId) -> Command {
        Command::new(id, self.operation, self.key, self.value)
    }
}

/// What a client gets back when its command executes at the submitting
/// replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The command this reply answers.
    pub command: CommandId,
    /// The replica that executed the command and produced this reply.
    pub node: NodeId,
    /// The key-value store result at that replica: the value read by a `Get`,
    /// the previous value overwritten by a `Put`, `None` otherwise.
    pub output: Option<u64>,
    /// The decision record (path, timestamps, latency breakdown).
    pub decision: Decision,
}

/// One entry of the waiter table: a slot the runtime fills with the reply
/// (or an error) and a condition variable for threaded runtimes to park on.
#[derive(Debug, Default)]
pub struct Waiter {
    state: Mutex<Option<Result<Reply, SessionError>>>,
    resolved: Condvar,
}

impl Waiter {
    /// Non-destructively checks whether the slot has been filled.
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        self.state.lock().expect("waiter lock").is_some()
    }

    /// Takes the result out of the slot, if present.
    #[must_use]
    pub fn poll(&self) -> Option<Result<Reply, SessionError>> {
        self.state.lock().expect("waiter lock").take()
    }

    /// Fills the slot and wakes every parked waiter.
    fn resolve(&self, result: Result<Reply, SessionError>) {
        let mut slot = self.state.lock().expect("waiter lock");
        if slot.is_none() {
            *slot = Some(result);
        }
        self.resolved.notify_all();
    }

    /// Parks the calling thread until the slot fills or `timeout` elapses.
    fn park(&self, timeout: Duration) {
        let slot = self.state.lock().expect("waiter lock");
        if slot.is_none() {
            let _ = self.resolved.wait_timeout(slot, timeout).expect("waiter lock");
        }
    }
}

#[derive(Debug, Default)]
struct CoreInner {
    waiters: HashMap<CommandId, Arc<Waiter>>,
    /// Per-replica command-id sequence allocator (used by [`Op`] submission).
    seqs: HashMap<NodeId, u64>,
    /// Set once the runtime behind this session is gone for good.
    closed: Option<String>,
}

/// The waiter table shared between a runtime and its client handles:
/// completions are routed by [`CommandId`], submissions are bounded by the
/// in-flight capacity.
#[derive(Debug)]
pub struct SessionCore {
    capacity: usize,
    inner: Mutex<CoreInner>,
}

impl SessionCore {
    /// Creates a core that allows at most `capacity` commands in flight.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self { capacity: capacity.max(1), inner: Mutex::new(CoreInner::default()) })
    }

    /// Number of submitted commands still awaiting their reply.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("session lock").waiters.len()
    }

    /// Pre-seeds the command-id sequence allocator for `node`, so a client
    /// that reconnects (or several independent clients of one replica) can
    /// keep its ids disjoint from earlier sessions.
    pub fn seed_sequence(&self, node: NodeId, next: u64) {
        let mut inner = self.inner.lock().expect("session lock");
        let seq = inner.seqs.entry(node).or_insert(0);
        *seq = (*seq).max(next);
    }

    /// The highest command sequence number allocated for `node` so far.
    #[must_use]
    pub fn current_sequence(&self, node: NodeId) -> u64 {
        self.inner.lock().expect("session lock").seqs.get(&node).copied().unwrap_or(0)
    }

    /// Allocates the next command id for a submission at `node`.
    #[must_use]
    pub fn next_id(&self, node: NodeId) -> CommandId {
        let mut inner = self.inner.lock().expect("session lock");
        let seq = inner.seqs.entry(node).or_insert(0);
        *seq += 1;
        CommandId::new(node, *seq)
    }

    /// Registers a waiter for `id`, enforcing the in-flight bound.
    pub fn register(&self, id: CommandId) -> Result<Arc<Waiter>, SessionError> {
        let mut inner = self.inner.lock().expect("session lock");
        if let Some(reason) = &inner.closed {
            return Err(SessionError::Disconnected(reason.clone()));
        }
        if inner.waiters.len() >= self.capacity {
            return Err(SessionError::Backpressure { in_flight: inner.waiters.len() });
        }
        if inner.waiters.contains_key(&id) {
            return Err(SessionError::Rejected(format!("command id {id} already in flight")));
        }
        let waiter = Arc::new(Waiter::default());
        inner.waiters.insert(id, Arc::clone(&waiter));
        Ok(waiter)
    }

    /// Routes a completion to its waiter, if one is registered (runtimes call
    /// this for every origin-side execution; unknown ids are ignored).
    pub fn complete(&self, reply: Reply) {
        let waiter = self.inner.lock().expect("session lock").waiters.remove(&reply.command);
        if let Some(waiter) = waiter {
            waiter.resolve(Ok(reply));
        }
    }

    /// Fails the waiter registered for `id`, if any.
    pub fn fail(&self, id: CommandId, error: SessionError) {
        let waiter = self.inner.lock().expect("session lock").waiters.remove(&id);
        if let Some(waiter) = waiter {
            waiter.resolve(Err(error));
        }
    }

    /// Fails every pending waiter whose command was submitted at `node`
    /// (commands carry their submission replica as the id origin). Used when
    /// a single replica — or the link to it — dies mid-run.
    pub fn fail_node(&self, node: NodeId, reason: &str) {
        let failed: Vec<(CommandId, Arc<Waiter>)> = {
            let mut inner = self.inner.lock().expect("session lock");
            let ids: Vec<CommandId> =
                inner.waiters.keys().copied().filter(|id| id.origin() == node).collect();
            ids.iter().map(|id| (*id, inner.waiters.remove(id).expect("present"))).collect()
        };
        for (_, waiter) in failed {
            waiter.resolve(Err(SessionError::Disconnected(reason.to_string())));
        }
    }

    /// Closes the session: every pending waiter fails with
    /// [`SessionError::Disconnected`] and future submissions are refused.
    pub fn close(&self, reason: &str) {
        let drained: Vec<Arc<Waiter>> = {
            let mut inner = self.inner.lock().expect("session lock");
            inner.closed = Some(reason.to_string());
            inner.waiters.drain().map(|(_, w)| w).collect()
        };
        for waiter in drained {
            waiter.resolve(Err(SessionError::Disconnected(reason.to_string())));
        }
    }

    /// Drops the waiter for `id` without resolving it (ticket timeout /
    /// failed submission), freeing its in-flight slot.
    pub fn abandon(&self, id: CommandId) {
        self.inner.lock().expect("session lock").waiters.remove(&id);
    }
}

/// How a [`Ticket`] makes progress while waiting.
///
/// Wall-clock runtimes resolve waiters from background threads, so their
/// tickets just park ([`ParkDrive`]). The discrete-event simulator has no
/// background threads: its drive implementation steps simulated time forward
/// until the waiter resolves.
pub trait Drive: Send + Sync {
    /// Advances the runtime toward resolving `command`, returning once the
    /// waiter resolved, `slice` elapsed, or no further progress is possible.
    fn drive(&self, command: CommandId, waiter: &Waiter, slice: Duration);
}

/// [`Drive`] for runtimes whose progress happens on background threads: the
/// ticket parks on the waiter's condition variable.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParkDrive;

impl Drive for ParkDrive {
    fn drive(&self, _command: CommandId, waiter: &Waiter, slice: Duration) {
        waiter.park(slice);
    }
}

/// How a [`ClientHandle`] hands a command to its runtime.
pub trait SubmitTransport: Send + Sync {
    /// Delivers `cmd` to replica `node` for ordering. `delay_us` is a
    /// submission delay honoured by simulated-time runtimes (wall-clock
    /// runtimes submit immediately).
    fn submit(&self, node: NodeId, cmd: Command, delay_us: u64) -> Result<(), SessionError>;
}

/// An outstanding submission: await it with [`Ticket::wait`].
#[derive(Clone)]
pub struct Ticket {
    command: CommandId,
    node: NodeId,
    core: Arc<SessionCore>,
    waiter: Arc<Waiter>,
    drive: Arc<dyn Drive>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("command", &self.command)
            .field("node", &self.node)
            .field("resolved", &self.waiter.is_resolved())
            .finish()
    }
}

impl Ticket {
    /// The id of the submitted command.
    #[must_use]
    pub fn command(&self) -> CommandId {
        self.command
    }

    /// The replica the command was submitted to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Non-blocking completion check; consumes the result if present.
    #[must_use]
    pub fn try_wait(&self) -> Option<Result<Reply, SessionError>> {
        self.waiter.poll()
    }

    /// Waits (with the [`DEFAULT_WAIT`] timeout) for the command to execute
    /// at the submitting replica.
    pub fn wait(&self) -> Result<Reply, SessionError> {
        self.wait_timeout(DEFAULT_WAIT)
    }

    /// Waits until the reply arrives, the session disconnects, or `timeout`
    /// elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Reply, SessionError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(result) = self.waiter.poll() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                self.core.abandon(self.command);
                return Err(SessionError::Timeout);
            }
            let slice = deadline.saturating_duration_since(now).min(MAX_PARK);
            self.drive.drive(self.command, &self.waiter, slice);
        }
    }
}

/// A client bound to one replica of a running cluster. Cheap to clone; all
/// clones share the cluster's waiter table.
#[derive(Clone)]
pub struct ClientHandle {
    node: NodeId,
    core: Arc<SessionCore>,
    transport: Arc<dyn SubmitTransport>,
    drive: Arc<dyn Drive>,
}

impl fmt::Debug for ClientHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientHandle")
            .field("node", &self.node)
            .field("in_flight", &self.core.in_flight())
            .finish()
    }
}

impl ClientHandle {
    /// Assembles a handle from a runtime's parts (runtimes call this from
    /// their [`ClusterHandle::client`] implementation).
    #[must_use]
    pub fn new(
        node: NodeId,
        core: Arc<SessionCore>,
        transport: Arc<dyn SubmitTransport>,
        drive: Arc<dyn Drive>,
    ) -> Self {
        Self { node, core, transport, drive }
    }

    /// The replica this handle submits to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The waiter table this handle routes completions through.
    #[must_use]
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// Submits `op`, assigning it the next command id of this replica.
    pub fn submit(&self, op: Op) -> Result<Ticket, SessionError> {
        self.submit_after(op, 0)
    }

    /// Like [`ClientHandle::submit`] with a submission delay in simulated
    /// microseconds (wall-clock runtimes submit immediately).
    pub fn submit_after(&self, op: Op, delay_us: u64) -> Result<Ticket, SessionError> {
        let id = self.core.next_id(self.node);
        self.submit_command_after(op.command(id), delay_us)
    }

    /// Submits a caller-built command. Its id origin must be this handle's
    /// replica, or the reply can never be routed back.
    pub fn submit_command(&self, cmd: Command) -> Result<Ticket, SessionError> {
        self.submit_command_after(cmd, 0)
    }

    /// Like [`ClientHandle::submit_command`] with a submission delay in
    /// simulated microseconds.
    pub fn submit_command_after(
        &self,
        cmd: Command,
        delay_us: u64,
    ) -> Result<Ticket, SessionError> {
        if cmd.id().origin() != self.node {
            return Err(SessionError::Rejected(format!(
                "command {} carries origin {}, but this handle submits to {}",
                cmd.id(),
                cmd.id().origin(),
                self.node
            )));
        }
        let id = cmd.id();
        let waiter = self.core.register(id)?;
        if let Err(err) = self.transport.submit(self.node, cmd, delay_us) {
            self.core.abandon(id);
            return Err(err);
        }
        Ok(Ticket {
            command: id,
            node: self.node,
            core: Arc::clone(&self.core),
            waiter,
            drive: Arc::clone(&self.drive),
        })
    }
}

/// A running cluster that clients can attach to: every runtime (simulator,
/// threads, TCP) implements this.
pub trait ClusterHandle {
    /// Number of replicas in the cluster.
    fn nodes(&self) -> usize;

    /// A client bound to replica `node`.
    fn client(&self, node: NodeId) -> ClientHandle;
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::{DecisionPath, LatencyBreakdown, Timestamp};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn reply(id: CommandId, node: NodeId, output: Option<u64>) -> Reply {
        Reply {
            command: id,
            node,
            output,
            decision: Decision {
                command: id,
                timestamp: Timestamp::ZERO,
                path: DecisionPath::Fast,
                proposed_at: 0,
                executed_at: 10,
                breakdown: LatencyBreakdown::default(),
            },
        }
    }

    /// A transport that records submissions and (optionally) completes them
    /// instantly against the shared core.
    struct LoopbackTransport {
        core: Arc<SessionCore>,
        submitted: AtomicU64,
        echo: bool,
    }

    impl SubmitTransport for LoopbackTransport {
        fn submit(&self, node: NodeId, cmd: Command, _delay_us: u64) -> Result<(), SessionError> {
            self.submitted.fetch_add(1, Ordering::Relaxed);
            if self.echo {
                self.core.complete(reply(cmd.id(), node, Some(cmd.value())));
            }
            Ok(())
        }
    }

    fn handle(capacity: usize, echo: bool) -> (ClientHandle, Arc<LoopbackTransport>) {
        let core = SessionCore::new(capacity);
        let transport =
            Arc::new(LoopbackTransport { core: Arc::clone(&core), submitted: 0.into(), echo });
        let h =
            ClientHandle::new(NodeId(0), core, Arc::clone(&transport) as _, Arc::new(ParkDrive));
        (h, transport)
    }

    #[test]
    fn submit_and_wait_round_trips_a_reply() {
        let (client, transport) = handle(8, true);
        let ticket = client.submit(Op::put(7, 42)).expect("submits");
        let reply = ticket.wait_timeout(Duration::from_secs(1)).expect("replies");
        assert_eq!(reply.command, ticket.command());
        assert_eq!(reply.output, Some(42));
        assert_eq!(transport.submitted.load(Ordering::Relaxed), 1);
        assert_eq!(client.core().in_flight(), 0);
    }

    #[test]
    fn command_ids_are_allocated_sequentially_per_node() {
        let (client, _) = handle(8, true);
        let a = client.submit(Op::noop()).expect("submits");
        let b = client.submit(Op::noop()).expect("submits");
        assert_eq!(a.command(), CommandId::new(NodeId(0), 1));
        assert_eq!(b.command(), CommandId::new(NodeId(0), 2));
    }

    #[test]
    fn backpressure_bounds_in_flight_commands() {
        let (client, _) = handle(2, false);
        let _a = client.submit(Op::noop()).expect("submits");
        let _b = client.submit(Op::noop()).expect("submits");
        match client.submit(Op::noop()) {
            Err(SessionError::Backpressure { in_flight }) => assert_eq!(in_flight, 2),
            other => panic!("expected backpressure, got {other:?}"),
        }
    }

    #[test]
    fn wait_times_out_and_frees_the_slot() {
        let (client, _) = handle(1, false);
        let ticket = client.submit(Op::noop()).expect("submits");
        assert_eq!(ticket.wait_timeout(Duration::from_millis(20)), Err(SessionError::Timeout));
        // The slot was abandoned, so a new submission fits again.
        assert_eq!(client.core().in_flight(), 0);
        client.submit(Op::noop()).expect("slot freed");
    }

    #[test]
    fn close_fails_pending_tickets_and_future_submissions() {
        let (client, _) = handle(8, false);
        let ticket = client.submit(Op::noop()).expect("submits");
        let core = Arc::clone(client.core());
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        core.close("runtime shut down");
        match waiter.join().expect("waiter thread") {
            Err(SessionError::Disconnected(reason)) => assert!(reason.contains("shut down")),
            other => panic!("expected disconnect, got {other:?}"),
        }
        match client.submit(Op::noop()) {
            Err(SessionError::Disconnected(_)) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn fail_node_only_fails_that_replicas_waiters() {
        let core = SessionCore::new(8);
        let w0 = core.register(CommandId::new(NodeId(0), 1)).expect("registers");
        let w1 = core.register(CommandId::new(NodeId(1), 1)).expect("registers");
        core.fail_node(NodeId(0), "link lost");
        assert!(w0.is_resolved());
        assert!(!w1.is_resolved());
        assert_eq!(core.in_flight(), 1);
    }

    #[test]
    fn mismatched_origin_is_rejected() {
        let (client, _) = handle(8, true);
        let cmd = Command::put(CommandId::new(NodeId(3), 1), 7, 1);
        match client.submit_command(cmd) {
            Err(SessionError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn seeded_sequences_keep_reconnected_clients_disjoint() {
        let core = SessionCore::new(8);
        core.seed_sequence(NodeId(2), 100);
        assert_eq!(core.next_id(NodeId(2)), CommandId::new(NodeId(2), 101));
        // Seeding never goes backwards.
        core.seed_sequence(NodeId(2), 5);
        assert_eq!(core.next_id(NodeId(2)), CommandId::new(NodeId(2), 102));
    }
}
