//! The pluggable application surface of the consensus stack.
//!
//! The protocols decide an *order* of commands; what that order drives is a
//! [`StateMachine`]. Every runtime (simulator, threads, TCP) owns one boxed
//! state machine per replica and applies decided commands to it in execution
//! order — the output of each apply is what flows back to the submitting
//! client inside a [`crate::session::Reply`].
//!
//! The trait is deliberately narrow and snapshot-centred:
//!
//! * [`StateMachine::apply`] — deterministic transition, one decided command
//!   at a time, in execution order;
//! * [`StateMachine::snapshot`] / [`StateMachine::restore`] — the whole
//!   state as opaque bytes, which is what makes crash recovery a *transfer*
//!   instead of a replay-from-genesis: a restarted replica installs a live
//!   peer's snapshot and only replays the decided suffix (see the `net`
//!   runtime's `SnapshotRequest`/`SnapshotChunk` frames);
//! * [`StateMachine::applied_through`] — the watermark of commands applied
//!   so far, carried alongside snapshots so a receiver knows where the
//!   suffix starts;
//! * [`StateMachine::fingerprint`] — a digest for cross-replica comparison
//!   (snapshot *bytes* may legitimately differ between replicas that hold
//!   identical state, e.g. hash-map iteration order).
//!
//! The `kvstore` crate's `KvStore` is the reference implementation (the
//! paper's benchmark state machine); [`EventLog`] here is a second, wholly
//! different one — an append-only command log — that the cross-runtime tests
//! drive through every `ClusterHandle` to prove the runtimes are generic
//! over the application.

use std::fmt;
use std::sync::Arc;

use consensus_types::{Command, NodeId};

/// Why a [`StateMachine::restore`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// Human-readable reason (decode failure, version mismatch, …).
    pub reason: String,
}

impl RestoreError {
    /// Creates an error from any displayable reason.
    #[must_use]
    pub fn new(reason: impl fmt::Display) -> Self {
        Self { reason: reason.to_string() }
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot restore failed: {}", self.reason)
    }
}

impl std::error::Error for RestoreError {}

/// A deterministic replicated state machine driven by decided commands.
///
/// Implementations must be deterministic: two instances that apply the same
/// command sequence hold identical state (equal [`fingerprint`] and
/// [`applied_through`] values), and `restore(snapshot())` must reproduce the
/// instance exactly. Runtimes hold implementations as `Box<dyn StateMachine>`
/// — one per replica — and never inspect the state beyond this trait.
///
/// [`fingerprint`]: StateMachine::fingerprint
/// [`applied_through`]: StateMachine::applied_through
pub trait StateMachine: Send {
    /// Applies one decided command, in execution order. The returned value
    /// is the command's client-visible output (routed into the
    /// [`crate::session::Reply`] at the submitting replica).
    fn apply(&mut self, cmd: &Command) -> Option<u64>;

    /// Serializes the complete state — including the
    /// [`StateMachine::applied_through`] watermark — as opaque bytes.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the entire state from bytes produced by
    /// [`StateMachine::snapshot`] on another instance of the same
    /// implementation.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError>;

    /// Number of commands applied so far (the snapshot watermark).
    fn applied_through(&self) -> u64;

    /// A digest of the current state for cross-replica comparison. Two
    /// instances holding equal state must report equal fingerprints even if
    /// their snapshot bytes differ (e.g. hash-map iteration order).
    fn fingerprint(&self) -> u64;

    /// A short human-readable name for logs and tables.
    fn kind(&self) -> &'static str {
        "state-machine"
    }

    /// Whether this machine's state can be partitioned by conflict key for
    /// sharded parallel execution (see `consensus_core::exec`). Requires an
    /// order-insensitive [`StateMachine::fingerprint`] that combines across
    /// disjoint key partitions by XOR, and working
    /// [`StateMachine::split_snapshot`] / [`StateMachine::merge_snapshot`]
    /// implementations. Machines whose identity depends on total order
    /// (e.g. [`EventLog`]) keep the default `false` and always execute
    /// serially.
    fn partitionable(&self) -> bool {
        false
    }

    /// Splits this machine's state into `shards` disjoint partitions — one
    /// snapshot per shard, entries routed by `consensus_core::exec::shard_of_key`
    /// — such that restoring partition `i` into a fresh machine yields the
    /// shard that will see exactly the commands routed to shard `i`.
    /// Returns `None` when the machine is not partitionable.
    fn split_snapshot(&self, shards: usize) -> Option<Vec<Vec<u8>>> {
        let _ = shards;
        None
    }

    /// Merges one shard's snapshot into this machine (the inverse of
    /// [`StateMachine::split_snapshot`]: merging every part into a fresh
    /// machine reassembles the canonical whole). Errs when the machine is
    /// not partitionable or the bytes do not decode.
    fn merge_snapshot(&mut self, part: &[u8]) -> Result<(), RestoreError> {
        let _ = part;
        Err(RestoreError::new("state machine is not partitionable"))
    }
}

/// How a runtime builds the state machine of each replica. Cheap to clone;
/// runtimes default to the `kvstore` reference implementation.
pub type StateMachineFactory = Arc<dyn Fn(NodeId) -> Box<dyn StateMachine> + Send + Sync>;

/// An append-only event log: the second [`StateMachine`] implementation.
///
/// Where `KvStore` interprets commands (reads observe writes), `EventLog`
/// merely *records* them: every applied command is appended verbatim and the
/// output is its 1-based log position. That makes replies observable and
/// strictly ordered — position `n` answers the `n`-th command the replica
/// executed — so the cross-runtime tests can assert that all three runtimes
/// drive an arbitrary state machine identically, not just the key-value
/// store they used to hard-code.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EventLog {
    entries: Vec<Command>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded commands, in execution order.
    #[must_use]
    pub fn entries(&self) -> &[Command] {
        &self.entries
    }
}

impl StateMachine for EventLog {
    fn apply(&mut self, cmd: &Command) -> Option<u64> {
        self.entries.push(cmd.clone());
        Some(self.entries.len() as u64)
    }

    fn snapshot(&self) -> Vec<u8> {
        bincode::serialize(self).expect("event log serializes")
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        *self = bincode::deserialize(snapshot).map_err(RestoreError::new)?;
        Ok(())
    }

    fn applied_through(&self) -> u64 {
        self.entries.len() as u64
    }

    fn fingerprint(&self) -> u64 {
        // Order-dependent chain: a log's identity *is* its order.
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for cmd in &self.entries {
            for word in [
                u64::from(cmd.id().origin().0),
                cmd.id().sequence(),
                cmd.key().map_or(u64::MAX, |k| k),
                cmd.value(),
            ] {
                acc ^= word;
                acc = acc.wrapping_mul(0x1000_0000_01b3);
            }
        }
        acc
    }

    fn kind(&self) -> &'static str {
        "event-log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::CommandId;

    fn put(seq: u64, key: u64, value: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), key, value)
    }

    #[test]
    fn event_log_outputs_are_log_positions() {
        let mut log = EventLog::new();
        assert_eq!(log.apply(&put(1, 7, 10)), Some(1));
        assert_eq!(log.apply(&put(2, 9, 20)), Some(2));
        assert_eq!(log.applied_through(), 2);
        assert_eq!(log.entries().len(), 2);
    }

    #[test]
    fn event_log_snapshot_restore_round_trips() {
        let mut log = EventLog::new();
        for i in 1..=5 {
            log.apply(&put(i, i, i * 10));
        }
        let snapshot = log.snapshot();
        let mut restored = EventLog::new();
        restored.restore(&snapshot).expect("snapshot restores");
        assert_eq!(restored, log);
        assert_eq!(restored.fingerprint(), log.fingerprint());
        assert_eq!(restored.applied_through(), 5);
        // Applies continue seamlessly after a restore.
        assert_eq!(restored.apply(&put(6, 1, 1)), Some(6));
    }

    #[test]
    fn event_log_fingerprint_is_order_dependent() {
        let a = put(1, 1, 10);
        let b = put(2, 2, 20);
        let mut one = EventLog::new();
        one.apply(&a);
        one.apply(&b);
        let mut two = EventLog::new();
        two.apply(&b);
        two.apply(&a);
        assert_ne!(one.fingerprint(), two.fingerprint());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut log = EventLog::new();
        assert!(log.restore(&[0xFF; 3]).is_err());
    }

    #[test]
    fn factories_build_independent_machines() {
        let factory: StateMachineFactory = Arc::new(|_| Box::new(EventLog::new()));
        let mut a = factory(NodeId(0));
        let b = factory(NodeId(1));
        a.apply(&put(1, 1, 1));
        assert_eq!(a.applied_through(), 1);
        assert_eq!(b.applied_through(), 0);
        assert_eq!(a.kind(), "event-log");
    }
}
