//! Proposer batching: coalescing queued client commands into one consensus
//! instance.
//!
//! `BENCH_net_clients.json` showed throughput going flat as client
//! concurrency grows because every client command was its own consensus
//! instance — one quorum round-trip, one set of wire frames and one WAL
//! fsync each. The [`Batcher`] amortizes all three: when a runtime's core
//! loop turns and finds several client commands queued, it folds them into a
//! single [`Command::batch`] unit whose conflict footprint is the union of
//! the inner commands' accesses ([`Command::accesses`]). The protocols order
//! the *unit*; the runtime unpacks it at apply time — applying, replying and
//! deduplicating **per inner command** — so client-visible semantics,
//! recovery and state transfer are unchanged.
//!
//! Batch ids live in the [`BATCH_LANE`] of the id space (`sequence` high bit
//! set), disjoint from every client session's densely allocated ids. A
//! restarted durable replica reseeds its lane counter from the recovered
//! unit-id summary ([`Batcher::reseed`]) so a new incarnation never reuses a
//! previous life's batch ids.
//!
//! Knobs ([`BatchConfig`]): `max_batch` bounds how many commands one unit
//! carries; `max_linger` optionally holds the first command back for a
//! window so more can join (the default of zero means *batch whatever is
//! already queued when the loop turns* — no added latency, batches emerge
//! exactly when load queues commands faster than consensus turns them
//! around). A single queued command passes through untouched: with
//! `max_batch = 1` (or idle traffic) the system behaves byte-for-byte as it
//! did before batching existed.

use std::time::Duration;

use consensus_types::{AppliedSummary, Command, CommandId, NodeId, BATCH_LANE};

/// Tuning knobs of the proposer batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum number of client commands folded into one consensus unit.
    /// `1` disables batching entirely (every command is its own instance).
    pub max_batch: usize,
    /// How long the core loop may hold the first queued command back to let
    /// more join its batch. Zero (the default) never waits: a batch is
    /// whatever was already queued when the loop turned.
    pub max_linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 64, max_linger: Duration::ZERO }
    }
}

impl BatchConfig {
    /// A config that disables batching (`max_batch = 1`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { max_batch: 1, max_linger: Duration::ZERO }
    }

    /// Whether batching is enabled at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

/// Allocates batch-lane ids and folds queued commands into consensus units.
///
/// One per replica core loop; the id lane is `(replica, BATCH_LANE | n)` for
/// the n-th batch, so batchers never coordinate.
#[derive(Debug)]
pub struct Batcher {
    node: NodeId,
    next: u64,
}

impl Batcher {
    /// Creates a batcher for `node`'s core loop, numbering batches from 1.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        Self { node, next: 0 }
    }

    /// Fast-forwards the lane counter past every batch id `ordered` (the
    /// recovered unit-id summary) records for this node, so a restarted
    /// replica never reuses a previous incarnation's batch ids.
    pub fn reseed(&mut self, ordered: &AppliedSummary) {
        if let Some(max) = ordered.max_sequence(self.node) {
            if max & BATCH_LANE != 0 {
                self.next = self.next.max(max & !BATCH_LANE);
            }
        }
    }

    /// Folds queued client commands into one proposable unit. A single
    /// command passes through unchanged (zero overhead, identical ids and
    /// wire bytes to the pre-batching system); two or more become a
    /// [`Command::batch`] with a fresh batch-lane id.
    ///
    /// # Panics
    ///
    /// Panics if `queued` is empty.
    #[must_use]
    pub fn coalesce(&mut self, mut queued: Vec<Command>) -> Command {
        assert!(!queued.is_empty(), "coalesce requires at least one command");
        if queued.len() == 1 {
            return queued.pop().expect("one queued command");
        }
        self.next += 1;
        Command::batch(CommandId::new(self.node, BATCH_LANE | self.next), queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn single_commands_pass_through_unchanged() {
        let mut batcher = Batcher::new(NodeId(0));
        let cmd = put(1, 7, 42);
        assert_eq!(batcher.coalesce(vec![cmd.clone()]), cmd);
    }

    #[test]
    fn multiple_commands_fold_into_a_batch_lane_unit() {
        let mut batcher = Batcher::new(NodeId(2));
        let unit = batcher.coalesce(vec![put(1, 1, 10), put(1, 2, 11)]);
        assert!(unit.is_batch());
        assert_eq!(unit.id(), CommandId::new(NodeId(2), BATCH_LANE | 1));
        assert_eq!(unit.leaves().len(), 2);
        let next = batcher.coalesce(vec![put(1, 3, 10), put(1, 4, 11)]);
        assert_eq!(next.id().sequence(), BATCH_LANE | 2);
    }

    #[test]
    fn reseed_skips_past_recovered_batch_ids() {
        let mut ordered = AppliedSummary::new();
        ordered.insert(CommandId::new(NodeId(0), 5)); // a plain unit id
        ordered.insert(CommandId::new(NodeId(0), BATCH_LANE | 9));
        let mut batcher = Batcher::new(NodeId(0));
        batcher.reseed(&ordered);
        let unit = batcher.coalesce(vec![put(1, 1, 1), put(1, 2, 2)]);
        assert_eq!(unit.id().sequence(), BATCH_LANE | 10);
    }

    #[test]
    fn reseed_ignores_plain_ids() {
        let ordered: AppliedSummary = (1..=40).map(|seq| CommandId::new(NodeId(1), seq)).collect();
        let mut batcher = Batcher::new(NodeId(1));
        batcher.reseed(&ordered);
        let unit = batcher.coalesce(vec![put(0, 1, 1), put(0, 2, 2)]);
        assert_eq!(unit.id().sequence(), BATCH_LANE | 1);
    }
}
