//! Sharded parallel execution of non-conflicting commands.
//!
//! Generalized consensus (CAESAR, EPaxos, M²Paxos) only orders *conflicting*
//! commands relative to each other — yet every runtime used to drain its
//! execution queue through one serial `StateMachine::apply` loop, giving
//! back the very parallelism the protocols fought to preserve. The
//! [`Executor`] recovers it: commands are routed to a fixed set of worker
//! shards by conflict key ([`shard_of_key`]), so two commands on different
//! keys apply concurrently while commands on the same key — the only ones
//! whose relative order the protocol guarantees — land on the same shard and
//! apply in delivery order.
//!
//! Correctness leans on one observation: the conflict relation is keyed, so
//! *any* deterministic key → shard map serializes exactly the pairs the
//! protocol serialized. Cross-shard order is unconstrained by the protocol
//! and therefore free to race. State machines opt in via
//! [`StateMachine::partitionable`]; a machine whose identity is its total
//! order (e.g. [`crate::state_machine::EventLog`]) keeps the default `false`
//! and the executor transparently falls back to one serial machine, as does
//! a `workers ≤ 1` configuration. Snapshots cross the shard boundary in
//! canonical form — [`Executor::snapshot`] merges the shards back into one
//! whole-machine image and [`Executor::restore`] splits one — so sharded and
//! serial replicas interoperate freely during state transfer, and the
//! fingerprint/watermark a sharded replica reports is bit-identical to a
//! serial replica that applied the same commands.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use consensus_types::{Command, NodeId};
use telemetry::{Counter, Registry};

use crate::state_machine::{RestoreError, StateMachine, StateMachineFactory};

/// Deterministic conflict-key → shard routing shared by the executor and by
/// partitionable state machines ([`StateMachine::split_snapshot`]).
/// Key-less commands (no-ops) ride shard 0; they conflict with nothing, so
/// their placement is arbitrary but must be stable.
#[must_use]
pub fn shard_of_key(key: Option<u64>, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let Some(key) = key else { return 0 };
    // splitmix64 finalizer: decorrelates sequential benchmark keys so hot
    // keyspaces spread over all shards instead of striding into a few.
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// One shard's slice of an apply round: leaf commands in delivery order,
/// tagged with their (unit, leaf) slot so the round can reassemble outputs.
struct Job {
    items: Vec<(usize, usize, Command)>,
    done: Sender<Vec<(usize, usize, Option<u64>)>>,
}

struct Worker {
    jobs: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

enum Inner {
    /// One machine, applied on the caller's thread — non-partitionable
    /// machines and `workers ≤ 1` configurations.
    Serial(Mutex<Box<dyn StateMachine>>),
    /// One machine per shard, each owned (via lock) by a persistent worker
    /// thread; rounds fan leaf commands out by [`shard_of_key`].
    Sharded { shards: Vec<Arc<Mutex<Box<dyn StateMachine>>>>, workers: Vec<Worker> },
}

/// Applies decided command units to replica state, in parallel where the
/// conflict relation allows it.
///
/// The runtime hands [`Executor::apply_round`] the units of one execution
/// flush (batches and plain commands alike, in delivery order) and receives
/// per-leaf outputs in matching shape. All other [`StateMachine`] surface —
/// snapshot, restore, watermark, fingerprint — is reproduced here with
/// identical semantics to a single serial machine, so runtimes swap a
/// `Box<dyn StateMachine>` for an `Executor` without touching recovery or
/// state-transfer logic.
pub struct Executor {
    inner: Inner,
    factory: StateMachineFactory,
    node: NodeId,
    kind: &'static str,
    rounds: Counter,
    parallel_rounds: Counter,
    leaves: Counter,
}

impl Executor {
    /// Builds an executor for `node`'s replica. Probes the factory machine:
    /// partitionable machines with `workers ≥ 2` run sharded, everything
    /// else runs serial on the caller's thread. Metrics land in `registry`
    /// under `exec.*`.
    #[must_use]
    pub fn new(
        factory: StateMachineFactory,
        node: NodeId,
        workers: usize,
        registry: &Registry,
    ) -> Self {
        let probe = factory(node);
        let kind = probe.kind();
        let sharded = workers >= 2 && probe.partitionable();
        registry.gauge("exec.workers").set(if sharded { workers as u64 } else { 1 });
        let inner = if sharded {
            let mut first = Some(probe);
            let shards: Vec<_> = (0..workers)
                .map(|_| {
                    let machine = first.take().unwrap_or_else(|| factory(node));
                    Arc::new(Mutex::new(machine))
                })
                .collect();
            let workers = shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    let shard = Arc::clone(shard);
                    let (tx, rx) = channel::<Job>();
                    let handle = std::thread::Builder::new()
                        .name(format!("exec-{}-shard-{i}", node.0))
                        .spawn(move || worker_loop(&shard, &rx))
                        .expect("spawn executor shard worker");
                    Worker { jobs: tx, handle: Some(handle) }
                })
                .collect();
            Inner::Sharded { shards, workers }
        } else {
            Inner::Serial(Mutex::new(probe))
        };
        Self {
            inner,
            factory,
            node,
            kind,
            rounds: registry.counter("exec.rounds"),
            parallel_rounds: registry.counter("exec.parallel_rounds"),
            leaves: registry.counter("exec.leaves"),
        }
    }

    /// Number of execution shards (`1` when running serially).
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.inner {
            Inner::Serial(_) => 1,
            Inner::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Applies one flush of decided units in delivery order and returns the
    /// per-leaf outputs, shaped `outputs[unit][leaf]`. Leaves on the same
    /// conflict key apply in delivery order on one shard; leaves on
    /// different keys apply concurrently across shards. The round is a
    /// barrier: every leaf has applied when this returns.
    pub fn apply_round(&self, units: &[Command]) -> Vec<Vec<Option<u64>>> {
        self.rounds.inc();
        self.leaves.add(units.iter().map(|u| u.leaves().len() as u64).sum());
        match &self.inner {
            Inner::Serial(machine) => {
                let mut machine = machine.lock().expect("executor machine lock");
                units
                    .iter()
                    .map(|unit| unit.leaves().iter().map(|leaf| machine.apply(leaf)).collect())
                    .collect()
            }
            Inner::Sharded { shards, workers } => {
                let mut buckets: Vec<Vec<(usize, usize, Command)>> = vec![Vec::new(); shards.len()];
                let mut outputs: Vec<Vec<Option<u64>>> =
                    units.iter().map(|u| vec![None; u.leaves().len()]).collect();
                for (u, unit) in units.iter().enumerate() {
                    for (l, leaf) in unit.leaves().iter().enumerate() {
                        buckets[shard_of_key(leaf.key(), shards.len())].push((u, l, leaf.clone()));
                    }
                }
                let busy: Vec<usize> =
                    (0..buckets.len()).filter(|&s| !buckets[s].is_empty()).collect();
                if busy.len() <= 1 {
                    // Everything landed on one shard: apply inline, skip the
                    // round-trip through the worker.
                    if let Some(&s) = busy.first() {
                        let mut machine = shards[s].lock().expect("shard lock");
                        for (u, l, leaf) in &buckets[s] {
                            outputs[*u][*l] = machine.apply(leaf);
                        }
                    }
                    return outputs;
                }
                self.parallel_rounds.inc();
                let (done_tx, done_rx) = channel();
                for &s in &busy {
                    let job = Job { items: std::mem::take(&mut buckets[s]), done: done_tx.clone() };
                    workers[s].jobs.send(job).expect("executor worker alive");
                }
                drop(done_tx);
                while let Ok(results) = done_rx.recv() {
                    for (u, l, out) in results {
                        outputs[u][l] = out;
                    }
                }
                outputs
            }
        }
    }

    /// Total commands applied so far — the sum over shards, equal to what a
    /// serial machine would report after the same rounds.
    #[must_use]
    pub fn applied_through(&self) -> u64 {
        match &self.inner {
            Inner::Serial(machine) => machine.lock().expect("lock").applied_through(),
            Inner::Sharded { shards, .. } => {
                shards.iter().map(|s| s.lock().expect("lock").applied_through()).sum()
            }
        }
    }

    /// State digest for cross-replica comparison — XOR over shards, which a
    /// partitionable machine guarantees equals the whole-state fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        match &self.inner {
            Inner::Serial(machine) => machine.lock().expect("lock").fingerprint(),
            Inner::Sharded { shards, .. } => {
                shards.iter().fold(0, |acc, s| acc ^ s.lock().expect("lock").fingerprint())
            }
        }
    }

    /// Serializes the complete state in *canonical* (whole-machine) form, so
    /// sharded and serial replicas exchange snapshots freely.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        match &self.inner {
            Inner::Serial(machine) => machine.lock().expect("lock").snapshot(),
            Inner::Sharded { shards, .. } => {
                let mut whole = (self.factory)(self.node);
                for shard in shards {
                    let part = shard.lock().expect("lock").snapshot();
                    whole.merge_snapshot(&part).expect("partitionable machine merges its shards");
                }
                whole.snapshot()
            }
        }
    }

    /// Replaces the entire state from a canonical snapshot (produced by any
    /// replica, sharded or serial), redistributing entries across shards.
    pub fn restore(&self, snapshot: &[u8]) -> Result<(), RestoreError> {
        match &self.inner {
            Inner::Serial(machine) => machine.lock().expect("lock").restore(snapshot),
            Inner::Sharded { shards, .. } => {
                let mut whole = (self.factory)(self.node);
                whole.restore(snapshot)?;
                let parts = whole
                    .split_snapshot(shards.len())
                    .ok_or_else(|| RestoreError::new("machine stopped being partitionable"))?;
                for (shard, part) in shards.iter().zip(&parts) {
                    let mut fresh = (self.factory)(self.node);
                    fresh.restore(part)?;
                    *shard.lock().expect("lock") = fresh;
                }
                Ok(())
            }
        }
    }

    /// The underlying state machine's short name for logs and tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// How this executor applies commands: `"sharded"` (conflict-keyed
    /// worker pool) or `"serial"` (caller's thread).
    #[must_use]
    pub fn mode(&self) -> &'static str {
        match &self.inner {
            Inner::Serial(_) => "serial",
            Inner::Sharded { .. } => "sharded",
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if let Inner::Sharded { workers, .. } = &mut self.inner {
            for worker in workers.iter_mut() {
                // Replace the sender with a dead channel so the worker's
                // `recv` errors out and its loop exits.
                let (dead, _) = channel();
                worker.jobs = dead;
            }
            for worker in workers.iter_mut() {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

fn worker_loop(shard: &Mutex<Box<dyn StateMachine>>, jobs: &Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        let outputs = {
            let mut machine = shard.lock().expect("shard lock");
            job.items.iter().map(|(u, l, leaf)| (*u, *l, machine.apply(leaf))).collect()
        };
        // A dropped round receiver just means the executor is shutting down.
        let _ = job.done.send(outputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::EventLog;
    use consensus_types::CommandId;

    fn put(seq: u64, key: u64, value: u64) -> Command {
        Command::put(CommandId::new(NodeId(0), seq), key, value)
    }

    fn log_factory() -> StateMachineFactory {
        Arc::new(|_| Box::new(EventLog::new()))
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        for shards in 1..=8 {
            assert_eq!(shard_of_key(None, shards), 0);
            for key in 0..256 {
                let s = shard_of_key(Some(key), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_key(Some(key), shards));
            }
        }
    }

    #[test]
    fn sequential_keys_spread_over_shards() {
        let shards = 4;
        let mut hits = vec![0usize; shards];
        for key in 0..1000 {
            hits[shard_of_key(Some(key), shards)] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(count > 100, "shard {shard} starved: {hits:?}");
        }
    }

    #[test]
    fn non_partitionable_machines_fall_back_to_serial() {
        let registry = Registry::new();
        let exec = Executor::new(log_factory(), NodeId(0), 8, &registry);
        assert_eq!(exec.shards(), 1);
        let outs = exec.apply_round(&[put(1, 1, 10), put(2, 2, 20)]);
        assert_eq!(outs, vec![vec![Some(1)], vec![Some(2)]]);
        assert_eq!(exec.applied_through(), 2);
        assert_eq!(registry.snapshot().counter("exec.leaves"), 2);
    }

    #[test]
    fn serial_executor_matches_machine_semantics_for_batches() {
        let registry = Registry::new();
        let exec = Executor::new(log_factory(), NodeId(0), 1, &registry);
        let unit =
            Command::batch(CommandId::new(NodeId(0), 1 << 63), vec![put(1, 1, 10), put(2, 2, 20)]);
        let outs = exec.apply_round(&[unit]);
        assert_eq!(outs, vec![vec![Some(1), Some(2)]]);
        assert_eq!(exec.kind(), "event-log");
    }
}
