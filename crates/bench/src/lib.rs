//! Helpers shared by the Criterion benchmark binaries.
//!
//! Each bench target in `benches/` regenerates one figure of the paper: it
//! first prints the figure's data as a text table (the reproduction
//! artifact), then registers a reduced-size Criterion benchmark so `cargo
//! bench` also reports stable timing numbers for the experiment pipeline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Scale factor for the full table printed once per bench run (kept small so
/// `cargo bench` completes in minutes; raise it to approach paper-scale
/// runs).
pub const TABLE_SCALE: f64 = 0.3;

/// Scale factor for the experiment executed inside the Criterion timing loop.
pub const TIMED_SCALE: f64 = 0.05;

/// Prints a banner followed by a rendered table, flushing immediately so the
/// output is visible even when Criterion captures stdout.
pub fn print_table(table: &harness::Table) {
    println!("\n{table}");
}
