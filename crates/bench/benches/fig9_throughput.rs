//! Figure 9 — total throughput vs conflict percentage, with batching disabled
//! (top) and enabled (bottom).

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig9_throughput, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let series = fig9_throughput(0.25, &[0.0, 2.0, 10.0, 30.0, 50.0, 100.0]);
    print_table(&series.to_table());

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("caesar_throughput_10pct", |b| {
        b.iter(|| {
            let config = RunConfig::throughput_defaults(ProtocolKind::Caesar, 10.0)
                .with_sim_seconds(5.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.bench_function("epaxos_throughput_10pct", |b| {
        b.iter(|| {
            let config = RunConfig::throughput_defaults(ProtocolKind::Epaxos, 10.0)
                .with_sim_seconds(5.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
