//! Proposer batching + parallel execution — the throughput experiment.
//!
//! A 3-node loopback `net` cluster serves 64, 512 and 4096 *virtual
//! clients* (concurrent in-flight commands through cloned session
//! handles), once with the proposer batcher disabled (the seed behaviour:
//! one consensus instance per command) and once with batching enabled
//! (`max_batch = 64`) plus a 4-way sharded executor. Per protocol and
//! point we record ops/s and client-observed avg/p99 latency.
//!
//! The headline the numbers must show: with batching, throughput *rises*
//! with concurrency (more co-queued commands → bigger batches → fewer
//! quorum round-trips per command), instead of flattening at the
//! per-instance consensus rate.
//!
//! A second section measures **group commit**: the 512-client run with a
//! write-ahead log under `FsyncPolicy::PerBatch`, batching off vs. on.
//! Batching coalesces co-queued commands into one WAL append + fsync, so
//! the recorded `fsyncs / command` ratio collapses — durability at a
//! fraction of the per-command fsync price.
//!
//! Writes `BENCH_batching.json` at the workspace root.

use std::time::{Duration, Instant};

use bench::print_table;
use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op, Ticket};
use consensus_types::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use epaxos::{EpaxosConfig, EpaxosReplica};
use harness::Table;
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use net::{FsyncPolicy, NetCluster, NetConfig};
use simnet::Process;
use wal::TempDir;

const NODES: usize = 3;
/// All submissions go to p0 — the Multi-Paxos leader, a valid proposer
/// everywhere else.
const AT: NodeId = NodeId(0);
const MAX_BATCH: usize = 64;
const CLIENT_POINTS: [usize; 3] = [64, 512, 4096];

#[derive(Clone)]
struct Point {
    protocol: &'static str,
    clients: usize,
    batching: bool,
    ops: usize,
    throughput: f64,
    avg_ms: f64,
    p99_ms: f64,
}

struct GroupCommitPoint {
    batching: bool,
    throughput: f64,
    p99_ms: f64,
    fsyncs: u64,
    commands: u64,
}

/// Ops per point, scaled so the 4096-client rounds still submit full
/// windows.
fn total_ops(clients: usize) -> usize {
    (2 * clients).max(1_024)
}

/// Batch cap per load point: an eighth of the offered concurrency,
/// floored at `MAX_BATCH`. A proposer sized for 64-deep queues starves at
/// 4096 virtual clients — the cap must scale with the load it is asked to
/// absorb, exactly like a production group-commit window.
fn batch_for(clients: usize) -> usize {
    (clients / 8).max(MAX_BATCH)
}

/// Drives `total_ops(clients)` distinct-key writes with `clients` commands
/// in flight at once (closed loop per slot: a reply immediately funds the
/// next submit), and returns ops/s plus client-observed latency.
fn drive<P>(cluster: &NetCluster<P>, clients: usize) -> (usize, f64, f64, f64)
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
{
    let client = cluster.client(AT);
    let total = total_ops(clients);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(total);
    let mut pending: Vec<(Instant, Ticket)> = Vec::with_capacity(clients);
    let mut submitted = 0usize;
    let started = Instant::now();
    let deadline = started + Duration::from_secs(180);
    while latencies_ms.len() < total {
        while submitted < total && pending.len() < clients {
            let key = 10_000 + submitted as u64;
            pending.push((
                Instant::now(),
                client.submit(Op::put(key, submitted as u64)).expect("submits"),
            ));
            submitted += 1;
        }
        pending.retain(|(at, ticket)| match ticket.try_wait() {
            Some(result) => {
                result.expect("reply");
                latencies_ms.push(at.elapsed().as_secs_f64() * 1_000.0);
                false
            }
            None => true,
        });
        assert!(Instant::now() < deadline, "replies stalled at {}", latencies_ms.len());
        if !pending.is_empty() && latencies_ms.len() < total {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let wall = started.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let ops = latencies_ms.len();
    let avg = latencies_ms.iter().sum::<f64>() / ops.max(1) as f64;
    let p99 = latencies_ms
        .get(((ops as f64 * 0.99) as usize).min(ops.saturating_sub(1)))
        .copied()
        .unwrap_or_default();
    (ops, ops as f64 / wall.as_secs_f64(), avg, p99)
}

fn measure<P, F>(protocol: &'static str, make: F, clients: usize, batching: bool) -> Point
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    let mut config = NetConfig::new(NODES).with_max_in_flight(2 * clients.max(64));
    if batching {
        config = config.with_batch(batch_for(clients)).with_exec_workers(4);
    }
    let cluster = NetCluster::start(config, make).expect("cluster starts");
    let (ops, throughput, avg_ms, p99_ms) = drive(&cluster, clients);
    cluster.shutdown();
    Point { protocol, clients, batching, ops, throughput, avg_ms, p99_ms }
}

/// The 512-client CAESAR run with a per-batch-fsync'd WAL: how many fsyncs
/// durability cost per command, batching off vs. on.
fn measure_group_commit(batching: bool) -> GroupCommitPoint {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let tmp = TempDir::new("bench-batching-wal").expect("tempdir");
    let mut config = NetConfig::new(NODES)
        .with_max_in_flight(2 * 512)
        .with_data_dir(tmp.path())
        .with_fsync(FsyncPolicy::PerBatch);
    if batching {
        config = config.with_batch(MAX_BATCH).with_exec_workers(4);
    }
    let cluster = NetCluster::start(config, move |id| CaesarReplica::new(id, caesar.clone()))
        .expect("cluster starts");
    let (ops, throughput, _avg, p99_ms) = drive(&cluster, 512);
    let fsyncs = cluster.replica_registry(AT).snapshot().counter("wal.fsyncs");
    cluster.shutdown();
    GroupCommitPoint { batching, throughput, p99_ms, fsyncs, commands: ops as u64 }
}

fn write_json(points: &[Point], group_commit: &[GroupCommitPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"protocol\": \"{}\", \"clients\": {}, \"batching\": {}, \"ops\": {}, \
                 \"throughput_ops_per_s\": {:.1}, \"avg_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                p.protocol, p.clients, p.batching, p.ops, p.throughput, p.avg_ms, p.p99_ms
            )
        })
        .collect();
    let gc_rows: Vec<String> = group_commit
        .iter()
        .map(|g| {
            format!(
                "    {{\"policy\": \"per-batch\", \"clients\": 512, \"batching\": {}, \
                 \"throughput_ops_per_s\": {:.1}, \"p99_ms\": {:.3}, \"fsyncs\": {}, \
                 \"commands\": {}, \"fsyncs_per_command\": {:.4}}}",
                g.batching,
                g.throughput,
                g.p99_ms,
                g.fsyncs,
                g.commands,
                g.fsyncs as f64 / g.commands.max(1) as f64
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"batching\",\n  \"runtime\": \"net (epoll reactor)\",\n  \
         \"nodes\": {NODES},\n  \"max_batch_policy\": \"max({MAX_BATCH}, clients/8)\",\n  \
         \"exec_workers\": 4,\n  \
         \"results\": [\n{}\n  ],\n  \"fsync_group_commit\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        gc_rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batching.json");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {err}", path.display());
    } else {
        println!("recorded {}", path.display());
    }
}

fn protocol_points<P, F>(protocol: &'static str, mut make: F) -> Vec<Point>
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnMut(NodeId) -> P,
{
    let mut points = Vec::new();
    for &clients in &CLIENT_POINTS {
        for batching in [false, true] {
            points.push(measure(protocol, &mut make, clients, batching));
        }
    }
    points
}

fn point<'a>(points: &'a [Point], protocol: &str, clients: usize, batching: bool) -> &'a Point {
    points
        .iter()
        .find(|p| p.protocol == protocol && p.clients == clients && p.batching == batching)
        .expect("point measured")
}

fn benchmark(c: &mut Criterion) {
    let mut points = Vec::new();
    {
        let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
        points.extend(protocol_points("caesar", move |id| CaesarReplica::new(id, config.clone())));
    }
    {
        let config = EpaxosConfig::new(NODES).with_recovery_timeout(None);
        points.extend(protocol_points("epaxos", move |id| EpaxosReplica::new(id, config.clone())));
    }
    {
        let config = MultiPaxosConfig::new(NODES, AT);
        points.extend(protocol_points("multipaxos", move |id| {
            MultiPaxosReplica::new(id, config.clone())
        }));
    }
    {
        let config = MenciusConfig::new(NODES);
        points
            .extend(protocol_points("mencius", move |id| MenciusReplica::new(id, config.clone())));
    }
    {
        let config = M2PaxosConfig::new(NODES);
        points
            .extend(protocol_points("m2paxos", move |id| M2PaxosReplica::new(id, config.clone())));
    }

    let mut table = Table::new(
        "Proposer batching: virtual clients vs. throughput (batch max(64, n/8), 4 exec workers)",
        &["protocol", "clients", "batching", "ops", "throughput (op/s)", "avg (ms)", "p99 (ms)"],
    );
    for p in &points {
        table.push_row(vec![
            p.protocol.to_string(),
            p.clients.to_string(),
            if p.batching { "on" } else { "off" }.to_string(),
            p.ops.to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.3}", p.avg_ms),
            format!("{:.3}", p.p99_ms),
        ]);
    }
    print_table(&table);

    // The acceptance gates: batched throughput grows monotonically with the
    // client count, and at 512 clients batching buys ≥1.5× over the
    // unbatched baseline — on the paper's protocol and the classical one.
    for protocol in ["caesar", "multipaxos"] {
        let batched: Vec<f64> =
            CLIENT_POINTS.iter().map(|&n| point(&points, protocol, n, true).throughput).collect();
        assert!(
            batched.windows(2).all(|w| w[1] >= w[0]),
            "[{protocol}] batched throughput must rise 64 -> 512 -> 4096 clients, got {batched:?}"
        );
        let baseline = point(&points, protocol, 512, false).throughput;
        let batched_512 = point(&points, protocol, 512, true).throughput;
        assert!(
            batched_512 >= 1.5 * baseline,
            "[{protocol}] batching at 512 clients: {batched_512:.0} op/s is under 1.5x the \
             unbatched {baseline:.0} op/s"
        );
    }

    let group_commit = vec![measure_group_commit(false), measure_group_commit(true)];
    let mut table = Table::new(
        "Group commit: 512 clients, CAESAR, WAL fsync per batch",
        &["batching", "throughput (op/s)", "p99 (ms)", "fsyncs", "commands", "fsyncs/cmd"],
    );
    for g in &group_commit {
        table.push_row(vec![
            if g.batching { "on" } else { "off" }.to_string(),
            format!("{:.0}", g.throughput),
            format!("{:.3}", g.p99_ms),
            g.fsyncs.to_string(),
            g.commands.to_string(),
            format!("{:.4}", g.fsyncs as f64 / g.commands.max(1) as f64),
        ]);
    }
    print_table(&table);
    write_json(&points, &group_commit);

    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    group.bench_function("caesar_512_clients_batched", |b| {
        let config = CaesarConfig::new(NODES).with_recovery_timeout(None);
        let net_config = NetConfig::new(NODES)
            .with_max_in_flight(1_024)
            .with_batch(MAX_BATCH)
            .with_exec_workers(4);
        let cluster =
            NetCluster::start(net_config, move |id| CaesarReplica::new(id, config.clone()))
                .expect("cluster starts");
        b.iter(|| drive(&cluster, 512));
        cluster.shutdown();
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
