//! Figure 7 — average latency per site for Multi-Paxos (leader in Ireland and
//! in Mumbai), Mencius and CAESAR at 0 % conflicts.

use bench::{print_table, TABLE_SCALE, TIMED_SCALE};
use consensus_types::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig7_single_leader, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let series = fig7_single_leader(TABLE_SCALE);
    print_table(&series.to_table("conflict %"));

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("multipaxos_ireland_leader", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::MultiPaxos(NodeId(3)), 0.0)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.bench_function("mencius", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::Mencius, 0.0)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
