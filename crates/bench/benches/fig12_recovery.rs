//! Figure 12 — throughput timeline when one node crashes, CAESAR vs EPaxos.

use bench::print_table;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig12_recovery, RecoveryTimeline};

fn benchmark(c: &mut Criterion) {
    // 40 clients per node, crash at t = 8 s, 20 simulated seconds (the paper
    // uses 500 clients per node, crash at 20 s, 40 s total).
    let timelines = fig12_recovery(40, 8, 20, 0x000F_1612);
    print_table(&RecoveryTimeline::to_table(&timelines));

    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("caesar_crash_recovery", |b| {
        b.iter(|| fig12_recovery(10, 2, 5, 7));
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
