//! Figure 6 — average latency per site vs conflict percentage, for CAESAR,
//! EPaxos and M²Paxos with batching disabled.

use bench::{print_table, TABLE_SCALE, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig6_latency_conflicts, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    // Regenerate the figure's data once and print it (the reproduction artifact).
    let series = fig6_latency_conflicts(TABLE_SCALE, &[0.0, 2.0, 10.0, 30.0, 50.0, 100.0]);
    print_table(&series.to_table("conflict %"));

    // Time a single representative point so `cargo bench` reports a stable number.
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("caesar_30pct_conflicts", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::Caesar, 30.0)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.bench_function("epaxos_30pct_conflicts", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::Epaxos, 30.0)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
