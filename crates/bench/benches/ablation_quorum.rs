//! Ablation — CAESAR's fast-quorum size: the paper's `⌈3N/4⌉ = 4` vs
//! requiring every node (`FQ = 5`), which trades latency for a cheaper
//! recovery.

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{ablation_fast_quorum_size, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let series = ablation_fast_quorum_size(0.3, &[0.0, 10.0, 30.0]);
    print_table(&series.to_table());

    let mut group = c.benchmark_group("ablation_quorum");
    group.sample_size(10);
    group.bench_function("caesar_full_fast_quorum", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::Caesar, 10.0)
                .with_caesar_fast_quorum(5)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
