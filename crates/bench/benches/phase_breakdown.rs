//! Live command-lifecycle phase breakdown on the socket runtime — the
//! telemetry-layer counterpart of the simulator's Fig. 11.
//!
//! For each protocol and client count, a 3-node loopback cluster serves a
//! closed-loop workload of external `ReplicaClient` connections, then every
//! replica is scraped **over the wire** (`WireMessage::StatsRequest` →
//! `Event::StatsReply`). The per-replica span rings are joined into
//! end-to-end traces and reduced to per-phase latency percentiles:
//!
//! | phase | interval |
//! |---|---|
//! | `propose` | submit → propose |
//! | `quorum` | propose → fast/classic quorum assembled |
//! | `commit` | quorum → commit |
//! | `execute` | commit → execution at the origin |
//! | `reply` | execute → reply frame queued |
//!
//! The run also cross-checks the scraped fast/slow decision counters
//! against each replica's in-process registry — the wire path must neither
//! add nor lose a decision — and writes `BENCH_phase_breakdown.json` at the
//! workspace root, including a note naming the phase whose p99 grows most
//! between 64 and 512 clients (the `BENCH_net_clients.json` p99 cliff).

use std::time::{Duration, Instant};

use bench::print_table;
use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::Op;
use consensus_types::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use epaxos::{EpaxosConfig, EpaxosReplica};
use harness::Table;
use m2paxos::{M2PaxosConfig, M2PaxosReplica};
use mencius::{MenciusConfig, MenciusReplica};
use multipaxos::{MultiPaxosConfig, MultiPaxosReplica};
use net::{scrape_stats, NetCluster, NetConfig, ReplicaClient};
use simnet::Process;
use telemetry::trace::{assemble, phase_breakdown};

const NODES: usize = 3;

/// `(clients, closed-loop rounds)` — one op in flight per client per round.
const LOAD_POINTS: [(usize, usize); 3] = [(1, 50), (64, 2), (512, 1)];

struct PhasePoint {
    name: &'static str,
    count: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
}

struct RunPoint {
    protocol: &'static str,
    clients: usize,
    ops: usize,
    throughput: f64,
    complete_traces: usize,
    incomplete_traces: usize,
    fast_decisions: u64,
    slow_decisions: u64,
    phases: Vec<PhasePoint>,
}

/// Serves `rounds` closed-loop rounds of one op per client, scrapes every
/// replica over TCP, and reduces the joined traces to phase percentiles.
fn measure<P, F>(protocol: &'static str, make: F, clients: usize, rounds: usize) -> RunPoint
where
    P: Process + Send + 'static,
    P::Message: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnMut(NodeId) -> P + Send + Sync + 'static,
{
    let cluster = NetCluster::start(NetConfig::new(NODES), make).expect("cluster starts");
    let addr = cluster.addr(NodeId(0));
    let handles: Vec<ReplicaClient> = (0..clients)
        .map(|i| {
            ReplicaClient::connect(addr, NodeId(0), (i as u64 + 1) * 1_000_000)
                .expect("client connects")
        })
        .collect();

    let started = Instant::now();
    let mut ops = 0usize;
    for round in 0..rounds {
        let mut pending: Vec<consensus_core::session::Ticket> = handles
            .iter()
            .enumerate()
            .map(|(i, client)| {
                let key = 1_000 + (i * rounds + round) as u64;
                client.submit(Op::put(key, round as u64)).expect("submits")
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(120);
        while !pending.is_empty() {
            pending.retain(|ticket| match ticket.try_wait() {
                Some(result) => {
                    result.expect("reply");
                    ops += 1;
                    false
                }
                None => true,
            });
            assert!(Instant::now() < deadline, "replies stalled");
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
    let wall = started.elapsed();
    for client in handles {
        client.shutdown();
    }

    // Scrape all replicas over the wire, then verify against the
    // in-process registries: traffic has stopped, so the decision counters
    // are quiescent and the two access paths must agree exactly.
    let scrapes: Vec<net::StatsScrape> = (0..NODES as u32)
        .map(|n| scrape_stats(cluster.addr(NodeId(n))).expect("scrape answers"))
        .collect();
    let (mut fast, mut slow) = (0u64, 0u64);
    for scrape in &scrapes {
        let offline = cluster.replica_registry(scrape.from).snapshot();
        for key in ["decisions.fast", "decisions.slow"] {
            assert_eq!(
                scrape.snapshot.counter(key),
                offline.counter(key),
                "{protocol}: scraped {key} of {} diverges from its registry",
                scrape.from
            );
        }
        fast += scrape.snapshot.counter("decisions.fast");
        slow += scrape.snapshot.counter("decisions.slow");
    }
    cluster.shutdown();

    let rings: Vec<telemetry::SpanRingSnapshot> =
        scrapes.into_iter().map(|scrape| scrape.spans).collect();
    let set = assemble(&rings);
    let complete = set.traces.len() - set.incomplete;
    let phases = phase_breakdown(&set)
        .into_iter()
        .map(|p| PhasePoint {
            name: p.name,
            count: p.count,
            p50_us: p.latency.percentile(0.5),
            p90_us: p.latency.percentile(0.9),
            p99_us: p.latency.percentile(0.99),
        })
        .collect();
    RunPoint {
        protocol,
        clients,
        ops,
        throughput: ops as f64 / wall.as_secs_f64(),
        complete_traces: complete,
        incomplete_traces: set.incomplete,
        fast_decisions: fast,
        slow_decisions: slow,
        phases,
    }
}

fn run_all() -> Vec<RunPoint> {
    let mut points = Vec::new();
    for (clients, rounds) in LOAD_POINTS {
        points.push(measure(
            "caesar",
            move |id| CaesarReplica::new(id, CaesarConfig::new(NODES).with_recovery_timeout(None)),
            clients,
            rounds,
        ));
        points.push(measure(
            "epaxos",
            move |id| EpaxosReplica::new(id, EpaxosConfig::new(NODES).with_recovery_timeout(None)),
            clients,
            rounds,
        ));
        points.push(measure(
            "multipaxos",
            move |id| MultiPaxosReplica::new(id, MultiPaxosConfig::new(NODES, NodeId(0))),
            clients,
            rounds,
        ));
        points.push(measure(
            "mencius",
            move |id| MenciusReplica::new(id, MenciusConfig::new(NODES)),
            clients,
            rounds,
        ));
        points.push(measure(
            "m2paxos",
            move |id| M2PaxosReplica::new(id, M2PaxosConfig::new(NODES)),
            clients,
            rounds,
        ));
    }
    points
}

/// Names the phase whose p99 grows most for CAESAR between 64 and 512
/// clients — where the `BENCH_net_clients.json` p99 cliff lives.
fn cliff_note(points: &[RunPoint]) -> String {
    let at =
        |clients: usize| points.iter().find(|p| p.protocol == "caesar" && p.clients == clients);
    let (Some(mid), Some(high)) = (at(64), at(512)) else {
        return "insufficient data".to_string();
    };
    let mut worst = ("none", 0u64, 0u64);
    for (a, b) in mid.phases.iter().zip(&high.phases) {
        let growth = b.p99_us.saturating_sub(a.p99_us);
        if growth > worst.1 {
            worst = (b.name, growth, b.p99_us);
        }
    }
    format!(
        "caesar 64->512 clients: p99 grows most in the `{}` phase (+{} us, to {} us) — \
         the client-count p99 cliff is queueing there, not in the consensus rounds",
        worst.0, worst.1, worst.2
    )
}

fn write_json(points: &[RunPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let phases: Vec<String> = p
                .phases
                .iter()
                .map(|ph| {
                    format!(
                        "        {{\"phase\": \"{}\", \"count\": {}, \"p50_us\": {}, \
                         \"p90_us\": {}, \"p99_us\": {}}}",
                        ph.name, ph.count, ph.p50_us, ph.p90_us, ph.p99_us
                    )
                })
                .collect();
            format!(
                "    {{\"protocol\": \"{}\", \"clients\": {}, \"ops\": {}, \
                 \"throughput_ops_per_s\": {:.1}, \"complete_traces\": {}, \
                 \"incomplete_traces\": {}, \"fast_decisions\": {}, \
                 \"slow_decisions\": {}, \"phases\": [\n{}\n      ]}}",
                p.protocol,
                p.clients,
                p.ops,
                p.throughput,
                p.complete_traces,
                p.incomplete_traces,
                p.fast_decisions,
                p.slow_decisions,
                phases.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"phase_breakdown\",\n  \"runtime\": \"net (epoll reactor)\",\n  \
         \"nodes\": {NODES},\n  \"note\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        cliff_note(points),
        rows.join(",\n")
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_phase_breakdown.json");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {err}", path.display());
    } else {
        println!("recorded {}", path.display());
    }
}

fn benchmark(c: &mut Criterion) {
    let _ = reactor::raise_nofile_limit(65_536);
    let points = run_all();
    let mut table = Table::new(
        "Lifecycle phase p99 (us) from live wire scrapes, 3-node net runtime",
        &["protocol", "clients", "ops", "propose", "quorum", "commit", "execute", "reply"],
    );
    for p in &points {
        let mut row = vec![p.protocol.to_string(), p.clients.to_string(), p.ops.to_string()];
        row.extend(p.phases.iter().map(|ph| ph.p99_us.to_string()));
        table.push_row(row);
    }
    print_table(&table);
    write_json(&points);

    let mut group = c.benchmark_group("phase_breakdown");
    group.sample_size(10);
    group.bench_function("caesar_64_clients_scrape", |b| {
        b.iter(|| {
            measure(
                "caesar",
                move |id| {
                    CaesarReplica::new(id, CaesarConfig::new(NODES).with_recovery_timeout(None))
                },
                64,
                1,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
