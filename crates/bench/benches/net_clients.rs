//! Socket-runtime client scaling — submit→reply latency and throughput vs.
//! concurrent external client count on the reactor-based `net` runtime.
//!
//! The seed transport ran one reader thread per accepted connection, so
//! "hundreds of clients" meant "hundreds of threads" before the first
//! command was proposed. The epoll event loop holds every connection on one
//! thread; this bench records what that buys: a 3-node loopback CAESAR
//! cluster serves 1, 64, and 512 concurrent `ReplicaClient` connections,
//! every client keeps one command in flight, and we report per-op client
//! round-trip latency (avg/p99) and total throughput.
//!
//! Besides the table, the run writes `BENCH_net_clients.json` at the
//! workspace root so the numbers are recorded alongside the figures.

use std::time::{Duration, Instant};

use bench::print_table;
use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::Op;
use consensus_types::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::Table;
use net::{NetCluster, NetConfig, ReplicaClient};

const NODES: usize = 3;

struct ScalePoint {
    clients: usize,
    ops: usize,
    throughput: f64,
    avg_ms: f64,
    p99_ms: f64,
}

/// Runs `rounds` closed-loop rounds of one op per client against a fresh
/// cluster and returns latency/throughput stats.
fn measure(client_count: usize, rounds: usize) -> ScalePoint {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let cluster =
        NetCluster::start(NetConfig::new(NODES), move |id| CaesarReplica::new(id, caesar.clone()))
            .expect("cluster starts");
    let addr = cluster.addr(NodeId(0));
    let clients: Vec<ReplicaClient> = (0..client_count)
        .map(|i| {
            ReplicaClient::connect(addr, NodeId(0), (i as u64 + 1) * 1_000_000)
                .expect("client connects")
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(client_count * rounds);
    let started = Instant::now();
    for round in 0..rounds {
        // One command in flight per client, all concurrent.
        let mut pending: Vec<(Instant, consensus_core::session::Ticket)> = clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                let key = 1_000 + (i * rounds + round) as u64;
                (Instant::now(), client.submit(Op::put(key, round as u64)).expect("submits"))
            })
            .collect();
        // Poll so each op's latency is stamped when *it* resolves, not when
        // its turn in a serial wait comes up.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !pending.is_empty() {
            pending.retain(|(submitted, ticket)| match ticket.try_wait() {
                Some(result) => {
                    result.expect("reply");
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1_000.0);
                    false
                }
                None => true,
            });
            assert!(Instant::now() < deadline, "replies stalled");
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
    let wall = started.elapsed();
    for client in clients {
        client.shutdown();
    }
    cluster.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let ops = latencies_ms.len();
    let avg_ms = latencies_ms.iter().sum::<f64>() / ops.max(1) as f64;
    let p99_ms = latencies_ms
        .get(((ops as f64 * 0.99) as usize).min(ops.saturating_sub(1)))
        .copied()
        .unwrap_or_default();
    ScalePoint {
        clients: client_count,
        ops,
        throughput: ops as f64 / wall.as_secs_f64(),
        avg_ms,
        p99_ms,
    }
}

fn write_json(points: &[ScalePoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"clients\": {}, \"ops\": {}, \"throughput_ops_per_s\": {:.1}, \
                 \"avg_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                p.clients, p.ops, p.throughput, p.avg_ms, p.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"net_clients\",\n  \"runtime\": \"net (epoll reactor)\",\n  \
         \"nodes\": {NODES},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // crates/bench → workspace root.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net_clients.json");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {err}", path.display());
    } else {
        println!("recorded {}", path.display());
    }
}

fn benchmark(c: &mut Criterion) {
    let points: Vec<ScalePoint> =
        [(1, 100), (64, 4), (512, 2)].map(|(clients, rounds)| measure(clients, rounds)).into();
    let mut table = Table::new(
        "Reactor net runtime: concurrent external clients on one replica",
        &["clients", "ops", "throughput (op/s)", "avg (ms)", "p99 (ms)"],
    );
    for p in &points {
        table.push_row(vec![
            p.clients.to_string(),
            p.ops.to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.3}", p.avg_ms),
            format!("{:.3}", p.p99_ms),
        ]);
    }
    print_table(&table);
    write_json(&points);

    let mut group = c.benchmark_group("net_clients");
    group.sample_size(10);
    group.bench_function("64_clients_round", |b| {
        b.iter(|| measure(64, 1));
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
