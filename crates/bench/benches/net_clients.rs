//! Socket-runtime client scaling — submit→reply latency and throughput vs.
//! concurrent external client count on the reactor-based `net` runtime.
//!
//! The seed transport ran one reader thread per accepted connection, so
//! "hundreds of clients" meant "hundreds of threads" before the first
//! command was proposed. The epoll event loop holds every connection on one
//! thread; this bench records what that buys: a 3-node loopback CAESAR
//! cluster serves 1, 64, and 512 concurrent `ReplicaClient` connections,
//! every client keeps one command in flight, and we report per-op client
//! round-trip latency (avg/p99) and total throughput.
//!
//! Besides the table, the run writes `BENCH_net_clients.json` at the
//! workspace root so the numbers are recorded alongside the figures.
//!
//! A second section measures **snapshot catch-up**: a replica is killed and
//! restarted after the cluster has applied a growing number of commands,
//! and we record the donated snapshot size against the wall-clock time from
//! restart to the restarted replica matching the survivors' watermark.
//!
//! Two durability sections complete the picture. **Disk vs. network
//! recovery** reruns the catch-up experiment with per-replica write-ahead
//! logs: the restarted replica replays its own log instead of waiting for a
//! donated snapshot, and we record log size, commands replayed, and the
//! wall-clock from restart to watermark parity — directly comparable with
//! the `catch_up` rows at the same prefill. **Fsync policy cost** reruns
//! the 64-client closed-loop throughput run with the WAL enabled under each
//! [`net::FsyncPolicy`], against the memory-only baseline: what durability
//! costs per fsync discipline on this hardware.

use std::time::{Duration, Instant};

use bench::print_table;
use caesar::{CaesarConfig, CaesarReplica};
use consensus_core::session::{ClusterHandle, Op};
use consensus_types::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::Table;
use net::{FsyncPolicy, NetCluster, NetConfig, ReplicaClient};
use wal::TempDir;

const NODES: usize = 3;

#[derive(Clone)]
struct ScalePoint {
    clients: usize,
    ops: usize,
    throughput: f64,
    avg_ms: f64,
    p99_ms: f64,
}

/// Runs `rounds` closed-loop rounds of one op per client against a fresh
/// cluster and returns latency/throughput stats. With a `durable` policy the
/// replicas write WALs (into a tempdir that lives for the run) under it;
/// `None` is the memory-only baseline.
fn measure_with(client_count: usize, rounds: usize, durable: Option<FsyncPolicy>) -> ScalePoint {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let _tmp;
    let mut net_config = NetConfig::new(NODES);
    if let Some(policy) = durable {
        let tmp = TempDir::new("bench-net-clients").expect("tempdir");
        net_config = net_config.with_data_dir(tmp.path()).with_fsync(policy);
        _tmp = tmp;
    }
    let cluster = NetCluster::start(net_config, move |id| CaesarReplica::new(id, caesar.clone()))
        .expect("cluster starts");
    let addr = cluster.addr(NodeId(0));
    let clients: Vec<ReplicaClient> = (0..client_count)
        .map(|i| {
            ReplicaClient::connect(addr, NodeId(0), (i as u64 + 1) * 1_000_000)
                .expect("client connects")
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(client_count * rounds);
    let started = Instant::now();
    for round in 0..rounds {
        // One command in flight per client, all concurrent.
        let mut pending: Vec<(Instant, consensus_core::session::Ticket)> = clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                let key = 1_000 + (i * rounds + round) as u64;
                (Instant::now(), client.submit(Op::put(key, round as u64)).expect("submits"))
            })
            .collect();
        // Poll so each op's latency is stamped when *it* resolves, not when
        // its turn in a serial wait comes up.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !pending.is_empty() {
            pending.retain(|(submitted, ticket)| match ticket.try_wait() {
                Some(result) => {
                    result.expect("reply");
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1_000.0);
                    false
                }
                None => true,
            });
            assert!(Instant::now() < deadline, "replies stalled");
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
    let wall = started.elapsed();
    for client in clients {
        client.shutdown();
    }
    cluster.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let ops = latencies_ms.len();
    let avg_ms = latencies_ms.iter().sum::<f64>() / ops.max(1) as f64;
    let p99_ms = latencies_ms
        .get(((ops as f64 * 0.99) as usize).min(ops.saturating_sub(1)))
        .copied()
        .unwrap_or_default();
    ScalePoint {
        clients: client_count,
        ops,
        throughput: ops as f64 / wall.as_secs_f64(),
        avg_ms,
        p99_ms,
    }
}

/// The memory-only baseline (no WAL), as the bench always measured.
fn measure(client_count: usize, rounds: usize) -> ScalePoint {
    measure_with(client_count, rounds, None)
}

struct CatchUpPoint {
    prefill: usize,
    snapshot_bytes: u64,
    replayed: u64,
    recovery_ms: f64,
}

/// Applies `prefill` distinct-key writes, kills replica 2, restarts it, and
/// times restart → watermark parity with the survivors.
fn measure_catch_up(prefill: usize) -> CatchUpPoint {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let make = {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    };
    let mut cluster = NetCluster::start(NetConfig::new(NODES).with_checkpoint_interval(256), make)
        .expect("cluster starts");
    let crash = NodeId(2);

    // Keep a window of writes in flight so prefill does not take one RTT
    // per command.
    let client = cluster.client(NodeId(0));
    let mut pending = std::collections::VecDeque::new();
    for i in 0..prefill as u64 {
        pending.push_back(client.submit(Op::put(10_000 + i, i)).expect("submits"));
        if pending.len() >= 64 {
            let ticket: consensus_core::session::Ticket =
                pending.pop_front().expect("ticket present");
            ticket.wait_timeout(Duration::from_secs(60)).expect("replies");
        }
    }
    for ticket in pending {
        ticket.wait_timeout(Duration::from_secs(60)).expect("replies");
    }
    let target = cluster.wait_for_applied(crash, prefill as u64, Duration::from_secs(60));
    assert_eq!(target, prefill as u64, "cluster must apply the prefill before the crash");

    cluster.stop_replica(crash);
    std::thread::sleep(Duration::from_millis(50));
    let donors_before: u64 = (0..NODES as u32)
        .filter(|&n| NodeId(n) != crash)
        .map(|n| cluster.replica_stats(NodeId(n)).snapshot_bytes_sent.get())
        .sum();

    let restarted_at = Instant::now();
    cluster
        .restart_replica(crash, CaesarReplica::new(crash, caesar.clone()))
        .expect("replica restarts");
    let caught_up = cluster.wait_for_applied(crash, prefill as u64, Duration::from_secs(120));
    let recovery_ms = restarted_at.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(caught_up, prefill as u64, "catch-up must reach the pre-crash watermark");

    let donors_after: u64 = (0..NODES as u32)
        .filter(|&n| NodeId(n) != crash)
        .map(|n| cluster.replica_stats(NodeId(n)).snapshot_bytes_sent.get())
        .sum();
    // Every live peer donates; a single transfer's size is the per-donor
    // average of what this restart added.
    let snapshot_bytes = (donors_after - donors_before) / (NODES as u64 - 1);
    let replayed = cluster.replica_stats(crash).catch_up_replayed.get();
    cluster.shutdown();
    CatchUpPoint { prefill, snapshot_bytes, replayed, recovery_ms }
}

struct DiskRecoveryPoint {
    prefill: usize,
    log_bytes: u64,
    replayed: u64,
    recovery_ms: f64,
}

/// Total size of the segment files under `dir`.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.filter_map(|e| e.ok()).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
        })
        .unwrap_or(0)
}

/// The catch-up experiment with a write-ahead log: same prefill, same
/// crash/restart, but the replica recovers from its own disk — the time to
/// watermark parity is the local-replay cost, not a network transfer.
fn measure_disk_recovery(prefill: usize) -> DiskRecoveryPoint {
    let caesar = CaesarConfig::new(NODES).with_recovery_timeout(None);
    let make = {
        let caesar = caesar.clone();
        move |id| CaesarReplica::new(id, caesar.clone())
    };
    let tmp = TempDir::new("bench-disk-recovery").expect("tempdir");
    let net_config = NetConfig::new(NODES)
        .with_checkpoint_interval(256)
        .with_data_dir(tmp.path())
        .with_fsync(FsyncPolicy::PerBatch);
    let crash = NodeId(2);
    let crash_dir = net_config.replica_data_dir(crash).expect("data dir configured");
    let mut cluster = NetCluster::start(net_config, make).expect("cluster starts");

    let client = cluster.client(NodeId(0));
    let mut pending = std::collections::VecDeque::new();
    for i in 0..prefill as u64 {
        pending.push_back(client.submit(Op::put(10_000 + i, i)).expect("submits"));
        if pending.len() >= 64 {
            let ticket: consensus_core::session::Ticket =
                pending.pop_front().expect("ticket present");
            ticket.wait_timeout(Duration::from_secs(60)).expect("replies");
        }
    }
    for ticket in pending {
        ticket.wait_timeout(Duration::from_secs(60)).expect("replies");
    }
    let target = cluster.wait_for_applied(crash, prefill as u64, Duration::from_secs(60));
    assert_eq!(target, prefill as u64, "cluster must apply the prefill before the crash");

    cluster.stop_replica(crash);
    std::thread::sleep(Duration::from_millis(50));
    let log_bytes = dir_bytes(&crash_dir);

    let restarted_at = Instant::now();
    cluster
        .restart_replica(crash, CaesarReplica::new(crash, caesar.clone()))
        .expect("replica restarts");
    let caught_up = cluster.wait_for_applied(crash, prefill as u64, Duration::from_secs(120));
    let recovery_ms = restarted_at.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(caught_up, prefill as u64, "disk recovery must reach the pre-crash watermark");

    let replayed = cluster.replica_registry(crash).snapshot().counter("wal.replayed");
    cluster.shutdown();
    DiskRecoveryPoint { prefill, log_bytes, replayed, recovery_ms }
}

struct FsyncPoint {
    policy: &'static str,
    point: ScalePoint,
}

fn write_json(
    points: &[ScalePoint],
    catch_up: &[CatchUpPoint],
    disk: &[DiskRecoveryPoint],
    fsync: &[FsyncPoint],
) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"clients\": {}, \"ops\": {}, \"throughput_ops_per_s\": {:.1}, \
                 \"avg_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                p.clients, p.ops, p.throughput, p.avg_ms, p.p99_ms
            )
        })
        .collect();
    let catch_up_rows: Vec<String> = catch_up
        .iter()
        .map(|p| {
            format!(
                "    {{\"prefill_commands\": {}, \"snapshot_bytes\": {}, \
                 \"suffix_replayed\": {}, \"recovery_ms\": {:.1}}}",
                p.prefill, p.snapshot_bytes, p.replayed, p.recovery_ms
            )
        })
        .collect();
    let disk_rows: Vec<String> = disk
        .iter()
        .map(|p| {
            format!(
                "    {{\"prefill_commands\": {}, \"wal_bytes\": {}, \
                 \"wal_replayed\": {}, \"recovery_ms\": {:.1}}}",
                p.prefill, p.log_bytes, p.replayed, p.recovery_ms
            )
        })
        .collect();
    let fsync_rows: Vec<String> = fsync
        .iter()
        .map(|f| {
            format!(
                "    {{\"fsync\": \"{}\", \"clients\": {}, \"throughput_ops_per_s\": {:.1}, \
                 \"avg_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                f.policy, f.point.clients, f.point.throughput, f.point.avg_ms, f.point.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"net_clients\",\n  \"runtime\": \"net (epoll reactor)\",\n  \
         \"nodes\": {NODES},\n  \"results\": [\n{}\n  ],\n  \
         \"catch_up\": [\n{}\n  ],\n  \
         \"disk_recovery\": [\n{}\n  ],\n  \
         \"fsync_throughput\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        catch_up_rows.join(",\n"),
        disk_rows.join(",\n"),
        fsync_rows.join(",\n")
    );
    // crates/bench → workspace root.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net_clients.json");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {err}", path.display());
    } else {
        println!("recorded {}", path.display());
    }
}

/// 64-client throughput recorded in `BENCH_net_clients.json` before the
/// telemetry layer existed (pre-telemetry seed of this bench).
const SEED_64_CLIENT_THROUGHPUT: f64 = 19_495.7;

fn benchmark(c: &mut Criterion) {
    let points: Vec<ScalePoint> =
        [(1, 100), (64, 4), (512, 2)].map(|(clients, rounds)| measure(clients, rounds)).into();

    // Telemetry overhead tripwire: every command now records six-plus span
    // events and a handful of counter increments, and that must stay in the
    // measurement noise. Loopback runs on shared CI hardware jitter a lot,
    // so the bound is deliberately loose — halving throughput means the
    // telemetry layer (or something else) broke, not that the machine was
    // busy.
    let mid = points.iter().find(|p| p.clients == 64).expect("64-client point measured");
    assert!(
        mid.throughput >= SEED_64_CLIENT_THROUGHPUT * 0.5,
        "64-client throughput {:.1} op/s fell below half the pre-telemetry seed ({:.1} op/s)",
        mid.throughput,
        SEED_64_CLIENT_THROUGHPUT
    );
    let mut table = Table::new(
        "Reactor net runtime: concurrent external clients on one replica",
        &["clients", "ops", "throughput (op/s)", "avg (ms)", "p99 (ms)"],
    );
    for p in &points {
        table.push_row(vec![
            p.clients.to_string(),
            p.ops.to_string(),
            format!("{:.0}", p.throughput),
            format!("{:.3}", p.avg_ms),
            format!("{:.3}", p.p99_ms),
        ]);
    }
    print_table(&table);

    let catch_up: Vec<CatchUpPoint> = [200, 1_000, 5_000].map(measure_catch_up).into();
    let mut table = Table::new(
        "Snapshot catch-up: restarted replica, snapshot size vs. recovery time",
        &["prefill cmds", "snapshot (bytes)", "suffix replayed", "recovery (ms)"],
    );
    for p in &catch_up {
        table.push_row(vec![
            p.prefill.to_string(),
            p.snapshot_bytes.to_string(),
            p.replayed.to_string(),
            format!("{:.1}", p.recovery_ms),
        ]);
    }
    print_table(&table);

    // Disk-first recovery at the same prefills: recovery from the local WAL
    // instead of a network snapshot transfer.
    let disk: Vec<DiskRecoveryPoint> = [200, 1_000, 5_000].map(measure_disk_recovery).into();
    let mut table = Table::new(
        "Disk recovery: restarted replica replaying its own write-ahead log",
        &["prefill cmds", "log (bytes)", "wal replayed", "recovery (ms)"],
    );
    for p in &disk {
        table.push_row(vec![
            p.prefill.to_string(),
            p.log_bytes.to_string(),
            p.replayed.to_string(),
            format!("{:.1}", p.recovery_ms),
        ]);
    }
    print_table(&table);

    // What durability costs: the 64-client run under each fsync policy.
    let fsync: Vec<FsyncPoint> = vec![
        FsyncPoint { policy: "none (memory only)", point: mid.clone() },
        FsyncPoint {
            policy: "per-record",
            point: measure_with(64, 4, Some(FsyncPolicy::PerRecord)),
        },
        FsyncPoint { policy: "per-batch", point: measure_with(64, 4, Some(FsyncPolicy::PerBatch)) },
        FsyncPoint {
            policy: "interval 5ms",
            point: measure_with(64, 4, Some(FsyncPolicy::Interval(Duration::from_millis(5)))),
        },
    ];
    let mut table = Table::new(
        "Fsync policy cost: 64 concurrent clients, WAL enabled",
        &["policy", "throughput (op/s)", "avg (ms)", "p99 (ms)"],
    );
    for f in &fsync {
        table.push_row(vec![
            f.policy.to_string(),
            format!("{:.0}", f.point.throughput),
            format!("{:.3}", f.point.avg_ms),
            format!("{:.3}", f.point.p99_ms),
        ]);
    }
    print_table(&table);
    write_json(&points, &catch_up, &disk, &fsync);

    let mut group = c.benchmark_group("net_clients");
    group.sample_size(10);
    group.bench_function("64_clients_round", |b| {
        b.iter(|| measure(64, 1));
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
