//! Figure 10 — percentage of commands decided through a slow decision vs
//! conflict percentage, CAESAR vs EPaxos.

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig10_slow_paths, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let series = fig10_slow_paths(0.3, &[0.0, 2.0, 10.0, 30.0, 50.0, 100.0]);
    print_table(&series.to_table());

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("caesar_slow_paths_30pct", |b| {
        b.iter(|| {
            let config = RunConfig::throughput_defaults(ProtocolKind::Caesar, 30.0)
                .with_clients_per_node(50)
                .with_sim_seconds(5.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
