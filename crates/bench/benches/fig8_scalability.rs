//! Figure 8 — per-site latency while varying the number of connected clients
//! (5–2000 in the paper), at 10 % conflicts.

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig8_scalability, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    // A reduced client sweep keeps the bench run in minutes; raise the list
    // towards the paper's 2000 clients for a full-scale run.
    let series = fig8_scalability(0.2, &[5, 50, 250, 500, 1000]);
    print_table(&series.to_table("clients"));

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("caesar_500_clients", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::Caesar, 10.0)
                .with_clients_per_node(100)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
