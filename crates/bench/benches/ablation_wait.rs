//! Ablation — CAESAR's wait condition (Section IV-A) on vs off.
//!
//! With the wait condition disabled, an acceptor immediately rejects any
//! command whose timestamp arrives out of order, which is the strawman the
//! paper argues against: more NACKs, more retries, more slow decisions.

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{ablation_wait_condition, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let series = ablation_wait_condition(0.3, &[2.0, 10.0, 30.0, 50.0]);
    print_table(&series.to_table());

    let mut group = c.benchmark_group("ablation_wait");
    group.sample_size(10);
    group.bench_function("caesar_no_wait_30pct", |b| {
        b.iter(|| {
            let config = RunConfig::latency_defaults(ProtocolKind::CaesarNoWait, 30.0)
                .with_sim_seconds(10.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
