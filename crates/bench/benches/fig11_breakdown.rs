//! Figure 11 — CAESAR's latency breakdown per ordering phase (11a) and the
//! average wait-condition time per site (11b).

use bench::{print_table, TIMED_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{fig11_breakdown, ProtocolKind, RunConfig};

fn benchmark(c: &mut Criterion) {
    let (breakdown, wait) = fig11_breakdown(0.3, &[0.0, 2.0, 10.0, 30.0, 50.0, 100.0]);
    print_table(&breakdown.to_table());
    print_table(&wait.to_table());

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("caesar_breakdown_30pct", |b| {
        b.iter(|| {
            let config = RunConfig::throughput_defaults(ProtocolKind::Caesar, 30.0)
                .with_clients_per_node(50)
                .with_sim_seconds(5.0 * TIMED_SCALE);
            harness::run_closed_loop(&config)
        });
    });
    group.finish();
}

criterion_group!(benches, benchmark);
criterion_main!(benches);
