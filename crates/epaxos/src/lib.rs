//! EPaxos baseline — Egalitarian Paxos (Moraru et al., SOSP 2013).
//!
//! EPaxos is the closest competitor in the CAESAR evaluation: a multi-leader
//! Generalized Consensus protocol that tracks **dependencies** (interfering
//! commands) instead of timestamps. The command leader sends `PreAccept` with
//! its locally computed dependency set and sequence number; if a fast quorum
//! replies with *identical* attributes, the command commits after two
//! communication delays. Any disagreement forces the Paxos-Accept slow path
//! (four delays). Committed commands execute by analysing the dependency
//! graph: strongly connected components are executed in reverse topological
//! order, ordered by sequence number inside a component.
//!
//! The implementation mirrors the structure used for the CAESAR crate so the
//! harness can swap protocols behind the same [`simnet::Process`] interface.
//!
//! # Quorums, conflicts and recovery
//!
//! * **Quorums.** Fast path: one `PreAccept` round over the optimized
//!   egalitarian fast quorum of `F + ⌊(F+1)/2⌋` replicas *including the
//!   leader* (3 of 5), two delays — but only if every reply carries
//!   identical dependencies and sequence number. Slow path: a Paxos-Accept
//!   round over a classic quorum of `⌊N/2⌋+1` (3 of 5), four delays.
//! * **Conflict condition.** Two commands interfere when they access the
//!   same key and at least one writes; only interfering commands appear in
//!   each other's dependency sets.
//! * **Recovery semantics (restart catch-up).** Execution is gated on the
//!   dependency graph, so the resume point is the *set of applied command
//!   ids*: `Process::on_state_transfer` absorbs the transferred,
//!   floor-compacted `consensus_types::AppliedSummary` into the execution
//!   graph as a baseline — dependency closures treat covered ids as
//!   executed without materializing them — marks covered instances
//!   `Executed`, and re-tries the committed roots that were blocked on
//!   them. No slot cursor is needed (`Process::execution_cursor` stays
//!   `Ids`).
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use epaxos::{EpaxosConfig, EpaxosReplica};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! let config = EpaxosConfig::new(5);
//! let mut sim = Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), |id| {
//!     EpaxosReplica::new(id, config.clone())
//! });
//! sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod exec;
mod replica;

pub use exec::ExecutionGraph;
pub use replica::{EpaxosConfig, EpaxosMessage, EpaxosMetrics, EpaxosReplica, InstanceStatus};
