//! EPaxos baseline — Egalitarian Paxos (Moraru et al., SOSP 2013).
//!
//! EPaxos is the closest competitor in the CAESAR evaluation: a multi-leader
//! Generalized Consensus protocol that tracks **dependencies** (interfering
//! commands) instead of timestamps. The command leader sends `PreAccept` with
//! its locally computed dependency set and sequence number; if a fast quorum
//! replies with *identical* attributes, the command commits after two
//! communication delays. Any disagreement forces the Paxos-Accept slow path
//! (four delays). Committed commands execute by analysing the dependency
//! graph: strongly connected components are executed in reverse topological
//! order, ordered by sequence number inside a component.
//!
//! The implementation mirrors the structure used for the CAESAR crate so the
//! harness can swap protocols behind the same [`simnet::Process`] interface.
//!
//! # Example
//!
//! ```
//! use consensus_types::{Command, CommandId, NodeId};
//! use epaxos::{EpaxosConfig, EpaxosReplica};
//! use simnet::{LatencyMatrix, SimConfig, Simulator};
//!
//! let config = EpaxosConfig::new(5);
//! let mut sim = Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), |id| {
//!     EpaxosReplica::new(id, config.clone())
//! });
//! sim.schedule_command(0, NodeId(0), Command::put(CommandId::new(NodeId(0), 1), 7, 1));
//! sim.run();
//! assert_eq!(sim.decisions(NodeId(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod exec;
mod replica;

pub use exec::ExecutionGraph;
pub use replica::{EpaxosConfig, EpaxosMessage, EpaxosMetrics, EpaxosReplica, InstanceStatus};
