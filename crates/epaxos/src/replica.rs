//! The EPaxos replica: pre-accept / accept / commit plus explicit-prepare
//! recovery.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use consensus_types::{
    Ballot, Command, CommandId, Decision, DecisionPath, LatencyBreakdown, NodeId, QuorumSpec,
    SimTime, StateTransfer, Timestamp,
};
use serde::{Deserialize, Serialize};
use simnet::{Context, Process};
use telemetry::{Counter, Registry, TracePhase};

use crate::exec::ExecutionGraph;

type Deps = BTreeSet<CommandId>;

/// Local knowledge about an instance shipped in a `PrepareReply`:
/// (command, seq, deps, status).
type PrepareInfo = (Command, u64, Deps, InstanceStatus);

/// Configuration of an EPaxos replica.
#[derive(Debug, Clone)]
pub struct EpaxosConfig {
    /// Classic quorum specification (`⌊N/2⌋+1`).
    pub quorums: QuorumSpec,
    /// Size of the EPaxos fast quorum *including the leader*:
    /// `F + ⌊(F+1)/2⌋` (3 for N = 5), the optimized egalitarian quorum.
    pub fast_quorum: usize,
    /// Takeover timeout after which a replica runs explicit prepare for a
    /// command whose leader appears to have failed (`None` disables it).
    pub recovery_timeout: Option<SimTime>,
    /// Base CPU cost per protocol message (microseconds).
    pub message_cost_us: SimTime,
    /// Extra CPU cost per dependency-graph node visited at execution time,
    /// in nanoseconds — this is what makes EPaxos's delivery cost grow with
    /// the conflict rate (Section VI of the CAESAR paper).
    pub per_graph_node_cost_ns: u64,
}

impl EpaxosConfig {
    /// Default configuration for a cluster of `nodes` replicas.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        let quorums = QuorumSpec::new(nodes);
        let f = quorums.max_failures();
        Self {
            quorums,
            fast_quorum: f + f.div_ceil(2),
            recovery_timeout: Some(2_000_000),
            message_cost_us: 12,
            per_graph_node_cost_ns: 400,
        }
    }

    /// Sets the per-message CPU cost.
    #[must_use]
    pub fn with_message_cost_us(mut self, cost: SimTime) -> Self {
        self.message_cost_us = cost;
        self
    }

    /// Sets the recovery timeout.
    #[must_use]
    pub fn with_recovery_timeout(mut self, timeout: Option<SimTime>) -> Self {
        self.recovery_timeout = timeout;
        self
    }
}

/// Status of an instance in the replica's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Pre-accepted (fast-path attempt in progress).
    PreAccepted,
    /// Accepted (slow path in progress).
    Accepted,
    /// Committed (waiting for dependencies to execute).
    Committed,
    /// Executed locally.
    Executed,
}

/// Messages of the EPaxos protocol (timeouts are self-messages).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EpaxosMessage {
    /// Leader → replicas: propose `cmd` with the leader's attributes.
    PreAccept {
        /// Command leader's ballot.
        ballot: Ballot,
        /// The command.
        cmd: Command,
        /// Leader-computed sequence number.
        seq: u64,
        /// Leader-computed dependencies.
        deps: Deps,
    },
    /// Replica → leader: possibly updated attributes.
    PreAcceptReply {
        /// Ballot echoed back.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
        /// Updated sequence number.
        seq: u64,
        /// Updated dependencies.
        deps: Deps,
        /// Whether the attributes are unchanged from the leader's.
        unchanged: bool,
    },
    /// Leader → replicas: Paxos-Accept with the union attributes.
    Accept {
        /// Command leader's ballot.
        ballot: Ballot,
        /// The command.
        cmd: Command,
        /// Final sequence number.
        seq: u64,
        /// Final dependency set.
        deps: Deps,
    },
    /// Replica → leader: accept acknowledgement.
    AcceptReply {
        /// Ballot echoed back.
        ballot: Ballot,
        /// The command the reply refers to.
        cmd_id: CommandId,
    },
    /// Leader → replicas: the instance is committed.
    Commit {
        /// The command.
        cmd: Command,
        /// Final sequence number.
        seq: u64,
        /// Final dependency set.
        deps: Deps,
    },
    /// Recovery: ask replicas for their view of an instance.
    Prepare {
        /// The (higher) ballot of the recovering replica.
        ballot: Ballot,
        /// The instance being recovered.
        cmd_id: CommandId,
    },
    /// Recovery reply with the local view.
    PrepareReply {
        /// Ballot echoed back.
        ballot: Ballot,
        /// The instance.
        cmd_id: CommandId,
        /// Local knowledge, if any: (command, seq, deps, status).
        info: Option<(Command, u64, Deps, InstanceStatus)>,
    },
    /// Self-timeout to detect a failed command leader.
    RecoveryTimeout {
        /// The instance whose leader is suspected.
        cmd_id: CommandId,
    },
}

/// A point-in-time copy of the counters kept by an EPaxos replica.
///
/// The live values are registry metrics (`decisions.fast`,
/// `decisions.slow`, `commands.executed`, `recoveries.started`,
/// `epaxos.graph_nodes_visited`), reachable through
/// [`simnet::Process::telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpaxosMetrics {
    /// Commands this replica led that committed on the fast path.
    pub fast_path: u64,
    /// Commands this replica led that needed the Accept phase.
    pub slow_path: u64,
    /// Recoveries (explicit prepares) started.
    pub recoveries_started: u64,
    /// Commands executed locally.
    pub commands_executed: u64,
    /// Total dependency-graph nodes visited while executing.
    pub graph_nodes_visited: u64,
}

impl EpaxosMetrics {
    /// Fraction of led commands that took the slow path.
    #[must_use]
    pub fn slow_path_ratio(&self) -> f64 {
        let total = self.fast_path + self.slow_path;
        if total == 0 {
            0.0
        } else {
            self.slow_path as f64 / total as f64
        }
    }
}

/// The registry handles behind [`EpaxosMetrics`].
#[derive(Debug)]
struct EpaxosCounters {
    fast_path: Counter,
    slow_path: Counter,
    recoveries_started: Counter,
    commands_executed: Counter,
    graph_nodes_visited: Counter,
}

impl EpaxosCounters {
    fn register(registry: &Registry) -> Self {
        Self {
            fast_path: registry.counter("decisions.fast"),
            slow_path: registry.counter("decisions.slow"),
            recoveries_started: registry.counter("recoveries.started"),
            commands_executed: registry.counter("commands.executed"),
            graph_nodes_visited: registry.counter("epaxos.graph_nodes_visited"),
        }
    }

    fn snapshot(&self) -> EpaxosMetrics {
        EpaxosMetrics {
            fast_path: self.fast_path.get(),
            slow_path: self.slow_path.get(),
            recoveries_started: self.recoveries_started.get(),
            commands_executed: self.commands_executed.get(),
            graph_nodes_visited: self.graph_nodes_visited.get(),
        }
    }
}

#[derive(Debug)]
struct Instance {
    cmd: Command,
    seq: u64,
    deps: Deps,
    status: InstanceStatus,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaderPhase {
    PreAccept,
    Accept,
    Done,
}

#[derive(Debug)]
struct LeaderState {
    cmd: Command,
    ballot: Ballot,
    seq: u64,
    deps: Deps,
    phase: LeaderPhase,
    replies: usize,
    unchanged_replies: usize,
    accept_replies: usize,
    proposed_at: SimTime,
    from_recovery: bool,
}

/// An EPaxos replica implementing [`simnet::Process`].
#[derive(Debug)]
pub struct EpaxosReplica {
    id: NodeId,
    config: EpaxosConfig,
    instances: HashMap<CommandId, Instance>,
    /// Per conflict key: the most recent interfering instance and the highest
    /// sequence number seen.
    conflicts: HashMap<u64, (CommandId, u64)>,
    leading: HashMap<CommandId, LeaderState>,
    led: HashMap<CommandId, (SimTime, DecisionPath)>,
    exec: ExecutionGraph,
    ballots: HashMap<CommandId, Ballot>,
    recovering: HashMap<CommandId, (Ballot, Vec<Option<PrepareInfo>>)>,
    recovery_timer_set: HashSet<CommandId>,
    registry: Arc<Registry>,
    metrics: EpaxosCounters,
}

impl EpaxosReplica {
    /// Creates a replica with the given id and configuration.
    #[must_use]
    pub fn new(id: NodeId, config: EpaxosConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = EpaxosCounters::register(&registry);
        Self {
            id,
            config,
            instances: HashMap::new(),
            conflicts: HashMap::new(),
            leading: HashMap::new(),
            led: HashMap::new(),
            exec: ExecutionGraph::new(),
            ballots: HashMap::new(),
            recovering: HashMap::new(),
            recovery_timer_set: HashSet::new(),
            registry,
            metrics,
        }
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A snapshot of the protocol counters.
    #[must_use]
    pub fn metrics(&self) -> EpaxosMetrics {
        self.metrics.snapshot()
    }

    /// Number of commands executed locally.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.exec.executed_count()
    }

    /// Computes the attributes (seq, deps) of `cmd` from the local conflict
    /// table, as the original EPaxos does with its per-key "latest
    /// interfering instance" map. Batch units contribute (and collect) a
    /// dependency per key of their merged footprint.
    fn attributes(&self, cmd: &Command) -> (u64, Deps) {
        let mut deps = Deps::new();
        let mut seq = 1;
        for (key, _) in cmd.accesses() {
            if let Some(&(last, last_seq)) = self.conflicts.get(&key) {
                if last != cmd.id() {
                    deps.insert(last);
                    seq = seq.max(last_seq + 1);
                }
            }
        }
        (seq, deps)
    }

    fn record_conflict(&mut self, cmd: &Command, seq: u64) {
        for (key, _) in cmd.accesses() {
            let entry = self.conflicts.entry(key).or_insert((cmd.id(), seq));
            if seq >= entry.1 {
                *entry = (cmd.id(), seq);
            }
        }
    }

    fn admit_ballot(&mut self, cmd_id: CommandId, ballot: Ballot) -> bool {
        match self.ballots.get(&cmd_id) {
            Some(b) if ballot < *b => false,
            _ => {
                self.ballots.insert(cmd_id, ballot);
                true
            }
        }
    }

    fn maybe_schedule_recovery(
        &mut self,
        cmd_id: CommandId,
        leader: NodeId,
        ctx: &mut Context<'_, EpaxosMessage>,
    ) {
        let Some(timeout) = self.config.recovery_timeout else { return };
        if leader == self.id || self.recovery_timer_set.contains(&cmd_id) {
            return;
        }
        self.recovery_timer_set.insert(cmd_id);
        let stagger = (self.id.index() as SimTime) * (timeout / 10).max(10_000);
        ctx.schedule_self(timeout + stagger, EpaxosMessage::RecoveryTimeout { cmd_id });
    }

    fn commit(&mut self, cmd: Command, seq: u64, deps: Deps, ctx: &mut Context<'_, EpaxosMessage>) {
        let cmd_id = cmd.id();
        let already_committed = matches!(
            self.instances.get(&cmd_id).map(|i| i.status),
            Some(InstanceStatus::Committed | InstanceStatus::Executed)
        );
        if !already_committed {
            ctx.trace(TracePhase::Commit, cmd_id);
        }
        self.record_conflict(&cmd, seq);
        self.instances.insert(
            cmd_id,
            Instance {
                cmd: cmd.clone(),
                seq,
                deps: deps.clone(),
                status: InstanceStatus::Committed,
            },
        );
        self.exec.commit(cmd_id, seq, deps);
        let executed = self.exec.try_execute(cmd_id);
        self.metrics.graph_nodes_visited.add(self.exec.last_visited() as u64);
        self.apply_executions(executed, ctx);
        // Committing one instance may unblock others whose closure now
        // resolves; try the still-pending ones that depend on it.
        let pending: Vec<CommandId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.status == InstanceStatus::Committed)
            .map(|(id, _)| *id)
            .collect();
        for id in pending {
            if !self.exec.is_executed(id) {
                let executed = self.exec.try_execute(id);
                self.metrics.graph_nodes_visited.add(self.exec.last_visited() as u64);
                self.apply_executions(executed, ctx);
            }
        }
    }

    fn apply_executions(&mut self, executed: Vec<CommandId>, ctx: &mut Context<'_, EpaxosMessage>) {
        let now = ctx.now();
        for id in executed {
            let cmd = match self.instances.get_mut(&id) {
                Some(instance) => {
                    instance.status = InstanceStatus::Executed;
                    instance.cmd.clone()
                }
                None => continue,
            };
            self.metrics.commands_executed.inc();
            let (proposed_at, path) =
                self.led.get(&id).copied().unwrap_or((now, DecisionPath::Ordered));
            let decision = Decision {
                command: id,
                timestamp: Timestamp::ZERO,
                path,
                proposed_at,
                executed_at: now,
                breakdown: LatencyBreakdown::default(),
            };
            ctx.deliver(cmd, decision);
        }
    }
}

impl Process for EpaxosReplica {
    type Message = EpaxosMessage;

    fn on_client_command(&mut self, cmd: Command, ctx: &mut Context<'_, EpaxosMessage>) {
        let cmd_id = cmd.id();
        let ballot = Ballot::initial(self.id);
        self.ballots.insert(cmd_id, ballot);
        let (seq, deps) = self.attributes(&cmd);
        // The leader pre-accepts locally and counts itself in the quorum.
        self.instances.insert(
            cmd_id,
            Instance {
                cmd: cmd.clone(),
                seq,
                deps: deps.clone(),
                status: InstanceStatus::PreAccepted,
            },
        );
        self.record_conflict(&cmd, seq);
        self.leading.insert(
            cmd_id,
            LeaderState {
                cmd: cmd.clone(),
                ballot,
                seq,
                deps: deps.clone(),
                phase: LeaderPhase::PreAccept,
                replies: 1,
                unchanged_replies: 1,
                accept_replies: 0,
                proposed_at: ctx.now(),
                from_recovery: false,
            },
        );
        ctx.trace(TracePhase::Propose, cmd_id);
        ctx.broadcast_others(EpaxosMessage::PreAccept { ballot, cmd, seq, deps });
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: EpaxosMessage,
        ctx: &mut Context<'_, EpaxosMessage>,
    ) {
        match msg {
            EpaxosMessage::PreAccept { ballot, cmd, seq, deps } => {
                let cmd_id = cmd.id();
                if !self.admit_ballot(cmd_id, ballot) {
                    return;
                }
                if matches!(
                    self.instances.get(&cmd_id).map(|i| i.status),
                    Some(InstanceStatus::Committed | InstanceStatus::Executed)
                ) {
                    return;
                }
                let (local_seq, local_deps) = self.attributes(&cmd);
                let merged_seq = seq.max(local_seq);
                let mut merged_deps = deps.clone();
                merged_deps.extend(local_deps);
                merged_deps.remove(&cmd_id);
                let unchanged = merged_seq == seq && merged_deps == deps;
                self.instances.insert(
                    cmd_id,
                    Instance {
                        cmd: cmd.clone(),
                        seq: merged_seq,
                        deps: merged_deps.clone(),
                        status: InstanceStatus::PreAccepted,
                    },
                );
                self.record_conflict(&cmd, merged_seq);
                self.maybe_schedule_recovery(cmd_id, from, ctx);
                ctx.send(
                    from,
                    EpaxosMessage::PreAcceptReply {
                        ballot,
                        cmd_id,
                        seq: merged_seq,
                        deps: merged_deps,
                        unchanged,
                    },
                );
            }
            EpaxosMessage::PreAcceptReply { ballot, cmd_id, seq, deps, unchanged } => {
                let fast_quorum = self.config.fast_quorum;
                let classic = self.config.quorums.classic();
                let Some(state) = self.leading.get_mut(&cmd_id) else { return };
                if state.ballot != ballot || state.phase != LeaderPhase::PreAccept {
                    return;
                }
                state.replies += 1;
                if unchanged {
                    state.unchanged_replies += 1;
                }
                state.seq = state.seq.max(seq);
                state.deps.extend(deps);
                if state.unchanged_replies >= fast_quorum {
                    // Fast path: attributes agreed by a fast quorum.
                    state.phase = LeaderPhase::Done;
                    let cmd = state.cmd.clone();
                    let (seq, deps) = (state.seq, state.deps.clone());
                    let proposed_at = state.proposed_at;
                    let path = if state.from_recovery {
                        DecisionPath::Recovery
                    } else {
                        DecisionPath::Fast
                    };
                    self.metrics.fast_path.inc();
                    ctx.trace(TracePhase::QuorumReached, cmd_id);
                    self.led.insert(cmd_id, (proposed_at, path));
                    ctx.broadcast_others(EpaxosMessage::Commit {
                        cmd: cmd.clone(),
                        seq,
                        deps: deps.clone(),
                    });
                    self.commit(cmd, seq, deps, ctx);
                } else if state.replies >= classic
                    && (state.replies >= fast_quorum
                        || state.replies >= self.config.quorums.nodes())
                {
                    // Disagreement within the fast quorum: take the slow path.
                    state.phase = LeaderPhase::Accept;
                    state.accept_replies = 1; // the leader accepts locally
                    let msg = EpaxosMessage::Accept {
                        ballot: state.ballot,
                        cmd: state.cmd.clone(),
                        seq: state.seq,
                        deps: state.deps.clone(),
                    };
                    ctx.broadcast_others(msg);
                }
            }
            EpaxosMessage::Accept { ballot, cmd, seq, deps } => {
                let cmd_id = cmd.id();
                if !self.admit_ballot(cmd_id, ballot) {
                    return;
                }
                self.instances.insert(
                    cmd_id,
                    Instance {
                        cmd: cmd.clone(),
                        seq,
                        deps: deps.clone(),
                        status: InstanceStatus::Accepted,
                    },
                );
                self.record_conflict(&cmd, seq);
                self.maybe_schedule_recovery(cmd_id, from, ctx);
                ctx.send(from, EpaxosMessage::AcceptReply { ballot, cmd_id });
            }
            EpaxosMessage::AcceptReply { ballot, cmd_id } => {
                let classic = self.config.quorums.classic();
                let Some(state) = self.leading.get_mut(&cmd_id) else { return };
                if state.ballot != ballot || state.phase != LeaderPhase::Accept {
                    return;
                }
                state.accept_replies += 1;
                if state.accept_replies >= classic {
                    state.phase = LeaderPhase::Done;
                    let cmd = state.cmd.clone();
                    let (seq, deps) = (state.seq, state.deps.clone());
                    let proposed_at = state.proposed_at;
                    let path = if state.from_recovery {
                        DecisionPath::Recovery
                    } else {
                        DecisionPath::SlowRetry
                    };
                    self.metrics.slow_path.inc();
                    ctx.trace(TracePhase::QuorumReached, cmd_id);
                    self.led.insert(cmd_id, (proposed_at, path));
                    ctx.broadcast_others(EpaxosMessage::Commit {
                        cmd: cmd.clone(),
                        seq,
                        deps: deps.clone(),
                    });
                    self.commit(cmd, seq, deps, ctx);
                }
            }
            EpaxosMessage::Commit { cmd, seq, deps } => {
                self.commit(cmd, seq, deps, ctx);
            }
            EpaxosMessage::Prepare { ballot, cmd_id } => {
                if let Some(current) = self.ballots.get(&cmd_id) {
                    if ballot <= *current {
                        return;
                    }
                }
                self.ballots.insert(cmd_id, ballot);
                let info = self
                    .instances
                    .get(&cmd_id)
                    .map(|i| (i.cmd.clone(), i.seq, i.deps.clone(), i.status));
                ctx.send(from, EpaxosMessage::PrepareReply { ballot, cmd_id, info });
            }
            EpaxosMessage::PrepareReply { ballot, cmd_id, info } => {
                let classic = self.config.quorums.classic();
                let Some((b, replies)) = self.recovering.get_mut(&cmd_id) else { return };
                if *b != ballot {
                    return;
                }
                replies.push(info);
                if replies.len() < classic {
                    return;
                }
                let (ballot, replies) = self.recovering.remove(&cmd_id).expect("present");
                // Pick the most advanced state seen.
                let mut best: Option<(Command, u64, Deps, InstanceStatus)> = None;
                for info in replies.into_iter().flatten() {
                    let rank = |s: InstanceStatus| match s {
                        InstanceStatus::Executed | InstanceStatus::Committed => 3,
                        InstanceStatus::Accepted => 2,
                        InstanceStatus::PreAccepted => 1,
                    };
                    best = match best {
                        Some(ref b) if rank(b.3) >= rank(info.3) => best,
                        _ => Some(info),
                    };
                }
                let local = self
                    .instances
                    .get(&cmd_id)
                    .map(|i| (i.cmd.clone(), i.seq, i.deps.clone(), i.status));
                let best = match (best, local) {
                    (Some(b), _) => Some(b),
                    (None, l) => l,
                };
                let Some((cmd, seq, deps, status)) = best else { return };
                match status {
                    InstanceStatus::Committed | InstanceStatus::Executed => {
                        ctx.broadcast_others(EpaxosMessage::Commit {
                            cmd: cmd.clone(),
                            seq,
                            deps: deps.clone(),
                        });
                        self.commit(cmd, seq, deps, ctx);
                    }
                    _ => {
                        // Re-run the Accept phase with the best attributes seen.
                        self.leading.insert(
                            cmd_id,
                            LeaderState {
                                cmd: cmd.clone(),
                                ballot,
                                seq,
                                deps: deps.clone(),
                                phase: LeaderPhase::Accept,
                                replies: 1,
                                unchanged_replies: 1,
                                accept_replies: 1,
                                proposed_at: ctx.now(),
                                from_recovery: true,
                            },
                        );
                        ctx.broadcast_others(EpaxosMessage::Accept { ballot, cmd, seq, deps });
                    }
                }
            }
            EpaxosMessage::RecoveryTimeout { cmd_id } => {
                let Some(timeout) = self.config.recovery_timeout else { return };
                let status = self.instances.get(&cmd_id).map(|i| i.status);
                if matches!(
                    status,
                    Some(InstanceStatus::Committed | InstanceStatus::Executed) | None
                ) {
                    return;
                }
                self.metrics.recoveries_started.inc();
                ctx.trace(TracePhase::Recovery, cmd_id);
                let ballot = self
                    .ballots
                    .get(&cmd_id)
                    .copied()
                    .unwrap_or_else(|| Ballot::initial(cmd_id.origin()))
                    .next_for(self.id);
                self.ballots.insert(cmd_id, ballot);
                self.recovering.insert(cmd_id, (ballot, Vec::new()));
                ctx.broadcast_others(EpaxosMessage::Prepare { ballot, cmd_id });
                ctx.schedule_self(timeout, EpaxosMessage::RecoveryTimeout { cmd_id });
            }
        }
    }

    fn on_state_transfer(
        &mut self,
        transfer: &StateTransfer,
        ctx: &mut Context<'_, EpaxosMessage>,
    ) {
        // Commands covered by an installed snapshot count as executed, so
        // dependency closures stop waiting for them; committed instances
        // blocked only on transferred dependencies execute now. The graph
        // absorbs the run-compacted summary, so the O(history) id set is
        // never materialized here. Instances and dependencies name consensus
        // *units* — batch ids included — hence the unit-level view rather
        // than the per-leaf `applied` summary.
        for (id, instance) in self.instances.iter_mut() {
            if transfer.covers_unit(*id) {
                instance.status = InstanceStatus::Executed;
            }
        }
        self.exec.absorb_transfer(&transfer.unit_summary());
        let pending: Vec<CommandId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.status == InstanceStatus::Committed)
            .map(|(id, _)| *id)
            .collect();
        for id in pending {
            if !self.exec.is_executed(id) {
                let executed = self.exec.try_execute(id);
                self.metrics.graph_nodes_visited.add(self.exec.last_visited() as u64);
                self.apply_executions(executed, ctx);
            }
        }
    }

    fn processing_cost(&self, msg: &EpaxosMessage) -> SimTime {
        let base = self.config.message_cost_us;
        match msg {
            EpaxosMessage::PreAccept { .. } | EpaxosMessage::Accept { .. } => base,
            EpaxosMessage::Commit { deps, .. } => {
                base + (deps.len() as u64 * self.config.per_graph_node_cost_ns) / 1_000
            }
            EpaxosMessage::PreAcceptReply { .. }
            | EpaxosMessage::AcceptReply { .. }
            | EpaxosMessage::PrepareReply { .. }
            | EpaxosMessage::Prepare { .. } => base / 2 + 1,
            EpaxosMessage::RecoveryTimeout { .. } => 1,
        }
    }

    fn client_processing_cost(&self, _cmd: &Command) -> SimTime {
        self.config.message_cost_us
    }

    fn telemetry(&self) -> Option<Arc<Registry>> {
        Some(self.registry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LatencyMatrix, SimConfig, Simulator};

    fn sim(config: EpaxosConfig) -> Simulator<EpaxosReplica> {
        Simulator::new(SimConfig::new(LatencyMatrix::ec2_five_sites()), move |id| {
            EpaxosReplica::new(id, config.clone())
        })
    }

    fn put(node: u32, seq: u64, key: u64) -> Command {
        Command::put(CommandId::new(NodeId(node), seq), key, seq)
    }

    #[test]
    fn fast_quorum_size_matches_epaxos_for_five_nodes() {
        let c = EpaxosConfig::new(5);
        assert_eq!(c.fast_quorum, 3);
        assert_eq!(c.quorums.classic(), 3);
    }

    #[test]
    fn non_conflicting_command_commits_on_the_fast_path() {
        let mut s = sim(EpaxosConfig::new(5));
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.run();
        for node in NodeId::all(5) {
            assert_eq!(s.decisions(node).len(), 1);
        }
        assert_eq!(s.process(NodeId(0)).metrics().fast_path, 1);
        assert_eq!(s.process(NodeId(0)).metrics().slow_path, 0);
        assert_eq!(s.decisions(NodeId(0))[0].path, DecisionPath::Fast);
    }

    #[test]
    fn concurrent_conflicting_commands_take_the_slow_path() {
        let mut s = sim(EpaxosConfig::new(5));
        // Proposed far apart in the topology at the same time: the dependency
        // sets collected by the two fast quorums differ, forcing Accept.
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.schedule_command(0, NodeId(4), put(4, 1, 7));
        s.run();
        let slow: u64 = NodeId::all(5).map(|n| s.process(n).metrics().slow_path).sum();
        assert!(slow >= 1, "at least one of the two conflicting commands must go slow");
        // All replicas execute both commands in the same order.
        let reference: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 2);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = s.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference, "order must match at {node}");
        }
    }

    #[test]
    fn sequential_conflicting_commands_stay_on_the_fast_path() {
        let mut s = sim(EpaxosConfig::new(5));
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        s.schedule_command(400_000, NodeId(1), put(1, 1, 7));
        s.run();
        let fast: u64 = NodeId::all(5).map(|n| s.process(n).metrics().fast_path).sum();
        assert_eq!(fast, 2, "well-separated conflicting commands need no slow path");
    }

    #[test]
    fn leader_crash_is_recovered_via_explicit_prepare() {
        let config = EpaxosConfig::new(5).with_recovery_timeout(Some(1_000_000));
        let mut s = sim(config);
        s.schedule_command(0, NodeId(0), put(0, 1, 7));
        // Crash the leader right after it sends PreAccept.
        s.schedule_crash(1_000, NodeId(0));
        // A later conflicting command from another node depends on the orphan.
        s.schedule_command(200_000, NodeId(1), put(1, 1, 7));
        s.run();
        for node in NodeId::all(5).skip(1) {
            assert_eq!(s.decisions(node).len(), 2, "{node} must execute both commands");
        }
        let recoveries: u64 =
            NodeId::all(5).skip(1).map(|n| s.process(n).metrics().recoveries_started).sum();
        assert!(recoveries >= 1);
    }

    #[test]
    fn executions_follow_dependency_order_across_replicas() {
        let mut s = sim(EpaxosConfig::new(5));
        for i in 0..10u64 {
            s.schedule_command(i * 250_000, NodeId((i % 5) as u32), put((i % 5) as u32, i, 7));
        }
        s.run();
        let reference: Vec<CommandId> = s.decisions(NodeId(0)).iter().map(|d| d.command).collect();
        assert_eq!(reference.len(), 10);
        for node in NodeId::all(5) {
            let order: Vec<CommandId> = s.decisions(node).iter().map(|d| d.command).collect();
            assert_eq!(order, reference);
        }
    }
}
