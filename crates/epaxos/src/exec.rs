//! EPaxos execution: dependency-graph analysis (Tarjan SCC + topological
//! order, sequence numbers inside a component).

use std::collections::{BTreeSet, HashMap, HashSet};

use consensus_types::{AppliedSummary, CommandId};

/// A committed instance waiting to execute.
#[derive(Debug, Clone)]
struct Node {
    seq: u64,
    deps: BTreeSet<CommandId>,
}

/// The dependency graph over committed-but-unexecuted EPaxos instances.
///
/// `try_execute` reproduces EPaxos's execution algorithm: starting from a
/// committed command, it explores its dependency closure; if any reachable
/// dependency is not yet committed the command must wait. Otherwise the
/// strongly connected components of the closure are executed in reverse
/// topological order, commands within a component ordered by sequence number
/// (ties broken by command id).
#[derive(Debug, Default)]
pub struct ExecutionGraph {
    committed: HashMap<CommandId, Node>,
    /// Every command whose effect is reflected locally — executed here or
    /// absorbed through snapshot-based state transfer. Run-length compacted
    /// (sessions allocate ids densely), so the memory footprint is a few
    /// `(start, end)` runs per origin instead of one set entry per command
    /// in the history.
    executed: AppliedSummary,
    /// Commands executed locally by this graph (excludes ids that only
    /// arrived through a transfer), for progress accounting.
    executed_count: u64,
    /// Number of graph nodes visited by the last `try_execute` call — the
    /// harness uses it to model the CPU cost of dependency analysis.
    last_visited: usize,
}

impl ExecutionGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` has already been executed (locally, or through a
    /// transferred snapshot that covers it).
    #[must_use]
    pub fn is_executed(&self, id: CommandId) -> bool {
        self.executed.contains(id)
    }

    /// Absorbs a snapshot-based state transfer: every id in `applied`
    /// counts as executed for all future dependency analysis, consulted
    /// through the run-compacted summary instead of being enumerated.
    /// Committed instances the transfer covers are dropped from the graph.
    /// The caller re-tries its pending roots afterwards.
    pub fn absorb_transfer(&mut self, applied: &AppliedSummary) {
        self.executed.merge(applied);
        let executed = &self.executed;
        self.committed.retain(|id, _| !executed.contains(*id));
    }

    /// Number of commands executed locally so far.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.executed_count as usize
    }

    /// Number of `(start, end)` runs backing the executed-id summary — the
    /// actual memory footprint of the execution history.
    #[must_use]
    pub fn executed_runs(&self) -> usize {
        self.executed.run_count()
    }

    /// Number of committed commands still waiting to execute.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.committed.len()
    }

    /// Number of graph nodes visited by the most recent `try_execute` call.
    #[must_use]
    pub fn last_visited(&self) -> usize {
        self.last_visited
    }

    /// Registers a committed instance.
    pub fn commit(&mut self, id: CommandId, seq: u64, deps: BTreeSet<CommandId>) {
        if self.is_executed(id) {
            return;
        }
        self.committed.entry(id).or_insert(Node { seq, deps });
    }

    /// Attempts to execute `root` (and everything it transitively depends
    /// on). Returns the commands that became executable, in execution order;
    /// returns an empty vector if some dependency is not yet committed.
    pub fn try_execute(&mut self, root: CommandId) -> Vec<CommandId> {
        self.last_visited = 0;
        if self.is_executed(root) || !self.committed.contains_key(&root) {
            return Vec::new();
        }
        // Check that the dependency closure is fully committed.
        let mut stack = vec![root];
        let mut seen = HashSet::new();
        seen.insert(root);
        while let Some(id) = stack.pop() {
            self.last_visited += 1;
            let Some(node) = self.committed.get(&id) else {
                // A reachable dependency is not committed yet: cannot execute.
                return Vec::new();
            };
            for &d in &node.deps {
                if !self.executed.contains(d) && seen.insert(d) {
                    stack.push(d);
                }
            }
        }

        // Tarjan's algorithm over the closure, executing SCCs in reverse
        // topological order (Tarjan emits them in that order already).
        let mut state = Tarjan {
            graph: &self.committed,
            executed: &self.executed,
            index: 0,
            indices: HashMap::new(),
            lowlink: HashMap::new(),
            on_stack: HashSet::new(),
            stack: Vec::new(),
            order: Vec::new(),
        };
        state.visit(root);
        let order = state.order;

        let mut out = Vec::new();
        for component in order {
            let mut component = component;
            component.sort_by_key(|id| (self.committed[id].seq, *id));
            for id in component {
                if self.executed.insert(id) {
                    self.executed_count += 1;
                    self.committed.remove(&id);
                    out.push(id);
                }
            }
        }
        out
    }
}

struct Tarjan<'a> {
    graph: &'a HashMap<CommandId, Node>,
    executed: &'a AppliedSummary,
    index: u64,
    indices: HashMap<CommandId, u64>,
    lowlink: HashMap<CommandId, u64>,
    on_stack: HashSet<CommandId>,
    stack: Vec<CommandId>,
    order: Vec<Vec<CommandId>>,
}

impl Tarjan<'_> {
    fn visit(&mut self, v: CommandId) {
        self.indices.insert(v, self.index);
        self.lowlink.insert(v, self.index);
        self.index += 1;
        self.stack.push(v);
        self.on_stack.insert(v);

        let deps: Vec<CommandId> =
            self.graph.get(&v).map(|n| n.deps.iter().copied().collect()).unwrap_or_default();
        for w in deps {
            if self.executed.contains(w) || !self.graph.contains_key(&w) {
                continue;
            }
            if !self.indices.contains_key(&w) {
                self.visit(w);
                let low = self.lowlink[&v].min(self.lowlink[&w]);
                self.lowlink.insert(v, low);
            } else if self.on_stack.contains(&w) {
                let low = self.lowlink[&v].min(self.indices[&w]);
                self.lowlink.insert(v, low);
            }
        }

        if self.lowlink[&v] == self.indices[&v] {
            let mut component = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack.remove(&w);
                component.push(w);
                if w == v {
                    break;
                }
            }
            self.order.push(component);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_types::NodeId;

    fn id(node: u32, seq: u64) -> CommandId {
        CommandId::new(NodeId(node), seq)
    }

    fn deps(ids: &[CommandId]) -> BTreeSet<CommandId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn independent_command_executes_immediately() {
        let mut g = ExecutionGraph::new();
        let a = id(0, 1);
        g.commit(a, 1, deps(&[]));
        assert_eq!(g.try_execute(a), vec![a]);
        assert!(g.is_executed(a));
        assert_eq!(g.executed_count(), 1);
    }

    #[test]
    fn command_waits_for_uncommitted_dependency() {
        let mut g = ExecutionGraph::new();
        let a = id(0, 1);
        let b = id(1, 1);
        g.commit(b, 2, deps(&[a]));
        assert!(g.try_execute(b).is_empty(), "a is not committed yet");
        g.commit(a, 1, deps(&[]));
        assert_eq!(g.try_execute(b), vec![a, b]);
    }

    #[test]
    fn cycle_is_executed_by_sequence_number() {
        let mut g = ExecutionGraph::new();
        let a = id(0, 1);
        let b = id(1, 1);
        g.commit(a, 5, deps(&[b]));
        g.commit(b, 3, deps(&[a]));
        let order = g.try_execute(a);
        assert_eq!(order, vec![b, a], "lower sequence number executes first inside an SCC");
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        let mut g = ExecutionGraph::new();
        let ids: Vec<_> = (0..5).map(|i| id(0, i)).collect();
        g.commit(ids[0], 0, deps(&[]));
        for i in 1..5 {
            g.commit(ids[i], i as u64, deps(&[ids[i - 1]]));
        }
        let order = g.try_execute(ids[4]);
        assert_eq!(order, ids);
    }

    #[test]
    fn executed_dependencies_are_ignored() {
        let mut g = ExecutionGraph::new();
        let a = id(0, 1);
        let b = id(1, 1);
        g.commit(a, 1, deps(&[]));
        assert_eq!(g.try_execute(a), vec![a]);
        g.commit(b, 2, deps(&[a]));
        assert_eq!(g.try_execute(b), vec![b]);
        assert_eq!(g.pending_count(), 0);
    }

    #[test]
    fn visited_counter_reflects_graph_size() {
        let mut g = ExecutionGraph::new();
        let ids: Vec<_> = (0..10).map(|i| id(0, i)).collect();
        g.commit(ids[0], 0, deps(&[]));
        for i in 1..10 {
            g.commit(ids[i], i as u64, deps(&[ids[i - 1]]));
        }
        g.try_execute(ids[9]);
        assert!(g.last_visited() >= 10);
    }

    #[test]
    fn duplicate_commit_is_ignored_after_execution() {
        let mut g = ExecutionGraph::new();
        let a = id(0, 1);
        g.commit(a, 1, deps(&[]));
        assert_eq!(g.try_execute(a), vec![a]);
        g.commit(a, 1, deps(&[]));
        assert!(g.try_execute(a).is_empty());
        assert_eq!(g.executed_count(), 1);
    }

    #[test]
    fn executed_history_compacts_to_a_few_runs() {
        let mut g = ExecutionGraph::new();
        for seq in 1..=500u64 {
            for node in 0..2 {
                let c = id(node, seq);
                g.commit(c, seq, deps(&[]));
                g.try_execute(c);
            }
        }
        assert_eq!(g.executed_count(), 1000);
        assert!(
            g.executed_runs() <= 2,
            "dense history must collapse to one run per origin, got {}",
            g.executed_runs()
        );
    }
}
