//! Seeded corruption property test for write-ahead-log recovery.
//!
//! The recovery contract is exact: after a torn or bit-flipped tail, a scan
//! must land on the longest contiguous prefix of valid records — no panic, no
//! silent divergence past the damage, and the repaired log must accept new
//! appends. A deterministic ChaCha12 generator stands in for `proptest`
//! (unavailable offline): every case derives from a fixed seed, so failures
//! reproduce byte-for-byte.

use std::fs::{self, OpenOptions};
use std::path::Path;

use consensus_types::{Command, CommandId, ExecutionCursor, NodeId};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use telemetry::Registry;
use wal::{decode_record, DecodeOutcome, TempDir, Wal, WalConfig, SEGMENT_MAGIC};

const COMMANDS: u64 = 40;
const CASES: u64 = 60;

fn cmd(seq: u64) -> Command {
    Command::put(CommandId::new(NodeId(1), seq), seq % 8, seq * 3 + 1)
}

/// Writes a single-segment log of `COMMANDS` commands with periodic cursor
/// marks and returns the segment's bytes.
fn build_log(dir: &Path) -> Vec<u8> {
    let registry = Registry::new();
    let (mut wal, recovery) =
        Wal::open(WalConfig::new(dir.to_path_buf()), &registry).expect("open");
    assert!(recovery.is_empty());
    for seq in 0..COMMANDS {
        wal.append_command(&cmd(seq)).expect("append");
        if seq % 5 == 4 {
            wal.append_cursor(&ExecutionCursor::Log {
                next_execute: seq + 1,
                next_free: seq + 1,
                backlog: Vec::new(),
            })
            .expect("cursor");
        }
        wal.commit().expect("commit");
    }
    drop(wal);
    let segment = segment_file(dir);
    fs::read(segment).expect("read segment")
}

fn segment_file(dir: &Path) -> std::path::PathBuf {
    let mut segments: Vec<_> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "test log fits one segment");
    segments.remove(0)
}

/// Record boundaries in `bytes`: for each valid record, the offset one past
/// its end, paired with the number of commands seen up to and including it.
fn record_ends(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut ends = Vec::new();
    let mut offset = SEGMENT_MAGIC.len();
    let mut commands = 0usize;
    while offset < bytes.len() {
        match decode_record(&bytes[offset..]) {
            DecodeOutcome::Record(record, consumed) => {
                offset += consumed;
                if matches!(record, wal::WalRecord::Command(_)) {
                    commands += 1;
                }
                ends.push((offset, commands));
            }
            _ => panic!("pristine log must parse to the end"),
        }
    }
    assert_eq!(offset, bytes.len());
    ends
}

/// Commands surviving in the longest valid prefix that ends at or before
/// `cut`: every record fully contained in `bytes[..cut]`.
fn expected_commands(ends: &[(usize, usize)], cut: usize) -> usize {
    ends.iter().take_while(|&&(end, _)| end <= cut).last().map_or(0, |&(_, commands)| commands)
}

#[test]
fn recovery_lands_on_last_valid_record_under_seeded_corruption() {
    let pristine_dir = TempDir::new("wal-corrupt-pristine").expect("tempdir");
    let pristine = build_log(pristine_dir.path());
    let ends = record_ends(&pristine);
    let body_start = SEGMENT_MAGIC.len();

    let mut rng = ChaCha12Rng::seed_from_u64(0xD15C_FA11);
    for case in 0..CASES {
        let tmp = TempDir::new("wal-corrupt-case").expect("tempdir");
        let segment = tmp.path().join("wal-00000001.seg");

        // Corrupt somewhere in the record area (past the magic preamble).
        let offset = rng.gen_range(body_start..pristine.len());
        let truncate = rng.gen_bool(0.5);
        let mut damaged = pristine.clone();
        // The record containing the damaged byte is the first casualty;
        // recovery stops there even if later records are intact. One
        // exception: a truncation landing exactly on a record boundary
        // leaves a shorter but perfectly clean log.
        let expected = expected_commands(&ends, offset);
        let clean_cut = truncate && ends.iter().any(|&(end, _)| end == offset);
        if truncate {
            damaged.truncate(offset);
        } else {
            let bit = 1u8 << rng.gen_range(0u32..8) as u8;
            damaged[offset] ^= bit;
        }
        fs::write(&segment, &damaged).expect("write damaged log");

        let registry = Registry::new();
        let (mut wal, recovery) = Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry)
            .expect("recovery must not fail");
        assert_eq!(
            recovery.suffix.len(),
            expected,
            "case {case}: offset {offset} {}",
            if truncate { "truncate" } else { "bit-flip" }
        );
        for (index, recovered) in recovery.suffix.iter().enumerate() {
            assert_eq!(recovered, &cmd(index as u64), "case {case}: no divergence");
        }
        assert_eq!(recovery.truncated, !clean_cut, "case {case}: damage must be reported");
        assert_eq!(registry.snapshot().counter("wal.torn_truncations"), u64::from(!clean_cut));

        // The repaired log accepts appends and recovers them on reopen.
        wal.append_command(&cmd(1000 + case)).expect("append after repair");
        wal.commit().expect("commit after repair");
        drop(wal);
        let (_wal, reopened) =
            Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry).expect("reopen");
        assert_eq!(reopened.suffix.len(), expected + 1, "case {case}: repaired log reusable");
        assert_eq!(reopened.suffix.last(), Some(&cmd(1000 + case)));
        assert!(!reopened.truncated, "case {case}: repair is clean");
    }
}

#[test]
fn damaged_magic_preamble_empties_the_segment() {
    let tmp = TempDir::new("wal-corrupt-magic").expect("tempdir");
    build_log(tmp.path());
    let segment = segment_file(tmp.path());
    let mut bytes = fs::read(&segment).expect("read");
    bytes[0] ^= 0xFF;
    fs::write(&segment, &bytes).expect("write");

    let registry = Registry::new();
    let (_wal, recovery) =
        Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry).expect("open");
    assert!(recovery.is_empty(), "unrecognizable segment yields no state");
    assert!(recovery.truncated);
}

#[test]
fn truncation_mid_checkpoint_falls_back_to_prior_records() {
    // A checkpoint torn mid-write must not poison recovery: the records
    // logged before it stand.
    let tmp = TempDir::new("wal-corrupt-ckpt").expect("tempdir");
    let registry = Registry::new();
    {
        let (mut wal, _) =
            Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry).expect("open");
        for seq in 0..6 {
            wal.append_command(&cmd(seq)).expect("append");
        }
        wal.commit().expect("commit");
        wal.append_checkpoint(6, &vec![0xAB; 4096]).expect("checkpoint");
    }
    // The checkpoint compacted into segment 2; tear its record in half. The
    // compaction already deleted segment 1, so nothing older remains — the
    // torn checkpoint leaves an empty (but valid) log.
    let segment = segment_file(tmp.path());
    let len = fs::metadata(&segment).expect("meta").len();
    OpenOptions::new()
        .write(true)
        .open(&segment)
        .expect("open segment")
        .set_len(len - 2048)
        .expect("truncate");

    let (_wal, recovery) =
        Wal::open(WalConfig::new(tmp.path().to_path_buf()), &registry).expect("recover");
    assert!(recovery.truncated);
    assert!(recovery.checkpoint.is_none(), "torn checkpoint discarded");
    assert!(recovery.suffix.is_empty());
}
