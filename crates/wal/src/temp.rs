//! A minimal scoped temporary directory for tests and benches.
//!
//! The workspace vendors no `tempfile` crate, and durability tests must not
//! leave stray segment files behind, so this helper creates a uniquely named
//! directory under the system temp root and removes it recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{env, fs, io};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, deleted (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"<tmp>/<prefix>-<pid>-<counter>-<nanos>"`.
    pub fn new(prefix: &str) -> io::Result<Self> {
        let nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir()
            .join(format!("{prefix}-{pid}-{unique}-{nanos}", pid = std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::TempDir;

    #[test]
    fn creates_and_removes() {
        let path = {
            let tmp = TempDir::new("wal-tempdir-test").unwrap();
            assert!(tmp.path().is_dir());
            std::fs::write(tmp.path().join("file"), b"x").unwrap();
            tmp.path().to_path_buf()
        };
        assert!(!path.exists(), "dropped TempDir removes its tree");
    }
}
