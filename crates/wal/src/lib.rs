//! Per-replica durable write-ahead log for the CAESAR reproduction.
//!
//! Every decided command a replica executes lives only in memory without this
//! crate: a restarted replica can catch up solely from live donors, and a
//! full-cluster power cycle loses everything. The WAL is the disk layer that
//! closes that gap — an append-only store of numbered segment files whose
//! records are framed exactly like wire frames (`u32` length, `u32` CRC-32,
//! payload — the checksum path is shared via [`consensus_types::crc32`]):
//!
//! * [`WalRecord::Command`] — a decided command, appended *before* it is
//!   applied to the state machine;
//! * [`WalRecord::Cursor`] — the protocol's [`ExecutionCursor`] after each
//!   apply batch, so a slot-based protocol resumes exactly where it left off;
//! * [`WalRecord::Checkpoint`] — the serialized `(snapshot, applied
//!   AppliedSummary, ordered AppliedSummary, ExecutionCursor)` payload the
//!   replica also donates over the wire; cutting
//!   one rotates to a fresh segment and compacts every older file away.
//!
//! [`FsyncPolicy`] picks the durability/throughput point: per-record,
//! per-batch (the default — client replies never outrun the platter), or
//! interval. On restart, [`Wal::open`] scans the segments into a
//! [`Recovery`] — latest checkpoint, the command suffix after it, the last
//! cursor mark — truncating a torn tail at the first CRC mismatch so a crash
//! mid-write never poisons the log. The `net` runtime replays that recovery
//! first and falls back to snapshot transfer from live donors only for
//! whatever disk could not provide; see `docs/DURABILITY.md` for the full
//! format and the recovery decision tree.
//!
//! Progress is observable through `wal.*` metrics ([`WalStats`]) registered
//! in the replica's telemetry [`Registry`](telemetry::Registry): appends,
//! fsyncs and their latency, rotations, compactions, torn-tail truncations,
//! and commands replayed from disk.
//!
//! [`ExecutionCursor`]: consensus_types::ExecutionCursor
//!
//! # Example
//!
//! ```
//! use telemetry::Registry;
//! use wal::{TempDir, Wal, WalConfig};
//! use consensus_types::{Command, CommandId, NodeId};
//!
//! let tmp = TempDir::new("wal-doc").unwrap();
//! let registry = Registry::new();
//! let config = WalConfig::new(tmp.path().to_path_buf());
//! let (mut wal, recovery) = Wal::open(config.clone(), &registry).unwrap();
//! assert!(recovery.is_empty());
//!
//! wal.append_command(&Command::put(CommandId::new(NodeId(0), 1), 7, 42)).unwrap();
//! wal.commit().unwrap();
//! drop(wal);
//!
//! let (_wal, recovery) = Wal::open(config, &registry).unwrap();
//! assert_eq!(recovery.suffix.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod record;
mod store;
mod temp;

pub use record::{
    decode_record, encode_checkpoint, encode_command, encode_cursor, DecodeOutcome, WalRecord,
    MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
pub use store::{CheckpointImage, FsyncPolicy, Recovery, Wal, WalConfig, WalStats, SEGMENT_MAGIC};
pub use temp::TempDir;
